"""Counters and histograms for the cluster tier, following the
``session.*`` / ``host.*`` conventions of :mod:`repro.host.metrics`:
int-only ``as_dict`` (namespaced ``cluster.*``), distributions exported
separately via ``histograms()`` so benchmark drivers can fold them into
``BENCH_results.json`` unchanged.
"""

from __future__ import annotations

from typing import Any

from repro.obs.histogram import Histogram

__all__ = ["ClusterMetrics"]


class ClusterMetrics:
    """Front-side counters and distributions for a
    :class:`~repro.cluster.cluster.Cluster`."""

    _COUNTERS = (
        "submits",
        "completed",
        "failed",
        "saturations",
        "cancellations",
        "snapshots",
        "restores",
        "migrations",
        "recoveries",
        "respawns",
        "evictions",
    )

    __slots__ = _COUNTERS + ("snapshot_bytes", "snapshot_us", "restore_us", "request_us")

    def __init__(self) -> None:
        self.submits = 0  # requests accepted by the front
        self.completed = 0  # requests that returned ok
        self.failed = 0  # requests that returned an evaluation error
        self.saturations = 0  # submits refused by the bounded front queue
        self.cancellations = 0  # queued requests cancelled (or dropped at close)
        self.snapshots = 0  # blobs persisted to the store
        self.restores = 0  # sessions rehydrated onto a shard
        self.migrations = 0  # explicit session moves between shards
        self.recoveries = 0  # requests replayed after a shard death
        self.respawns = 0  # worker processes restarted
        self.evictions = 0  # sessions snapshotted out of shard memory
        self.snapshot_bytes = Histogram()  # blob size per snapshot
        self.snapshot_us = Histogram()  # encode latency (measured on the shard)
        self.restore_us = Histogram()  # decode latency (measured on the shard)
        self.request_us = Histogram()  # front-side submit round-trip

    def as_dict(self, prefix: str = "cluster") -> dict[str, int]:
        return {f"{prefix}.{name}": getattr(self, name) for name in self._COUNTERS}

    def histograms(self, prefix: str = "cluster") -> dict[str, Any]:
        """The distribution summaries, JSON-ready."""
        return {
            f"{prefix}.snapshot_bytes": self.snapshot_bytes.as_dict(),
            f"{prefix}.snapshot_us": self.snapshot_us.as_dict(),
            f"{prefix}.restore_us": self.restore_us.as_dict(),
            f"{prefix}.request_us": self.request_us.as_dict(),
        }
