"""Snapshot stores: where the cluster keeps each session's last blob.

The cluster's durability model is *snapshot-on-idle*: after every
completed request a shard ships the session's fresh snapshot back to
the front, which persists it here.  A store therefore always holds the
state as of the last completed request — enough to rehydrate the
session on any shard, and the replay point when a shard dies.

Two implementations:

* :class:`MemoryStore` — a dict in the front process.  Fast, survives
  shard deaths (the blobs live in the front, not the shards), gone when
  the front exits.
* :class:`DirectoryStore` — one ``<session-id>.rsnp`` file per session,
  written via temp-file + :func:`os.replace` so readers never observe a
  torn blob.  Survives the front itself; a new cluster pointed at the
  same directory picks up every session.
"""

from __future__ import annotations

import os
import tempfile

__all__ = ["DirectoryStore", "MemoryStore", "SnapshotStore"]


class SnapshotStore:
    """Interface: a mapping from session id to its latest snapshot."""

    def put(self, session_id: str, blob: bytes) -> None:
        raise NotImplementedError

    def get(self, session_id: str) -> bytes | None:
        raise NotImplementedError

    def delete(self, session_id: str) -> None:
        raise NotImplementedError

    def ids(self) -> list[str]:
        raise NotImplementedError


class MemoryStore(SnapshotStore):
    """Snapshots held in the front process's memory."""

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}

    def put(self, session_id: str, blob: bytes) -> None:
        self._blobs[session_id] = blob

    def get(self, session_id: str) -> bytes | None:
        return self._blobs.get(session_id)

    def delete(self, session_id: str) -> None:
        self._blobs.pop(session_id, None)

    def ids(self) -> list[str]:
        return sorted(self._blobs)

    def __len__(self) -> int:
        return len(self._blobs)

    def __repr__(self) -> str:
        total = sum(len(b) for b in self._blobs.values())
        return f"#<memory-store {len(self._blobs)} snapshots {total} bytes>"


class DirectoryStore(SnapshotStore):
    """Snapshots as files under a directory, one per session.

    Writes are atomic (temp file in the same directory, then
    :func:`os.replace`), so a concurrent reader — or a front restarted
    mid-write — sees either the previous complete blob or the new one,
    never a prefix.
    """

    #: File suffix, after the snapshot magic.
    SUFFIX = ".rsnp"

    def __init__(self, path: str):
        self.path = path
        os.makedirs(path, exist_ok=True)

    def _file(self, session_id: str) -> str:
        # Session ids may contain path-hostile characters; escape to a
        # flat, reversible filename.
        escaped = session_id.replace("%", "%25").replace("/", "%2F").replace(os.sep, "%5C")
        return os.path.join(self.path, escaped + self.SUFFIX)

    def put(self, session_id: str, blob: bytes) -> None:
        target = self._file(session_id)
        fd, tmp = tempfile.mkstemp(dir=self.path, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def get(self, session_id: str) -> bytes | None:
        try:
            with open(self._file(session_id), "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            return None

    def delete(self, session_id: str) -> None:
        try:
            os.unlink(self._file(session_id))
        except FileNotFoundError:
            pass

    def ids(self) -> list[str]:
        out = []
        for entry in os.listdir(self.path):
            if entry.endswith(self.SUFFIX):
                name = entry[: -len(self.SUFFIX)]
                out.append(
                    name.replace("%5C", os.sep).replace("%2F", "/").replace("%25", "%")
                )
        return sorted(out)

    def __repr__(self) -> str:
        return f"#<directory-store {self.path!r}>"
