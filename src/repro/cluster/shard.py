"""Shard workers: one :class:`~repro.host.host.Host` per OS process.

A shard is deliberately dumb.  It holds live sessions, evaluates
requests against them, and after every completed request hands the
front a fresh snapshot of the session it touched.  All placement,
persistence and recovery intelligence lives in the front
(:mod:`repro.cluster.cluster`); a shard can be SIGKILLed at any moment
and the cluster loses at most the requests in flight on it — everything
else rehydrates from the front's snapshot store.

The same request-handling logic (:class:`ShardRuntime`) backs both the
worker process loop (:func:`shard_main`) and the cluster's in-process
``workers=0`` mode, so inline tests exercise exactly the code the
processes run.

Everything crossing the queues is picklable by construction: command
tuples of scalars/bytes, and reply dicts of scalars/bytes.  Evaluated
values cross as their printed representation — live machine values
(closures, continuations, placeholders) never leave the shard except
inside a snapshot blob.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any

from repro.errors import ReproError
from repro.host.host import Host
from repro.host.session import Session

__all__ = ["ShardRuntime", "shard_main"]


class ShardRuntime:
    """The shard-side request handler: a Host plus the snapshot
    choreography around each evaluation."""

    def __init__(self, index: int):
        self.index = index
        self.host = Host(name=f"shard-{index}")

    # -- operations ------------------------------------------------------

    def handle(self, op: str, payload: dict[str, Any]) -> dict[str, Any]:
        """Execute one command; returns a picklable reply dict.
        Evaluation failures are reported in-band (``status: "error"``);
        only infrastructure bugs raise."""
        if op == "submit":
            return self._submit(payload)
        if op == "evict":
            return self._evict(payload)
        if op == "snapshot":
            return self._snapshot_op(payload)
        if op == "ping":
            return {"sessions": sorted(s.name for s in self.host)}
        if op == "stats":
            return {
                "host": self.host.stats,
                "sessions": self.host.session_stats(),
            }
        raise ValueError(f"shard {self.index}: unknown op {op!r}")

    def _session_for(self, payload: dict[str, Any]) -> tuple[Session, dict[str, Any]]:
        """The resident session for this request, rehydrating from the
        provided blob or creating it fresh; second element carries
        restore timing for the front's histograms."""
        session_id = payload["session_id"]
        info: dict[str, Any] = {"restored": False, "restore_us": 0.0}
        try:
            return self.host[session_id], info
        except KeyError:
            pass
        blob = payload.get("blob")
        if blob is not None:
            t0 = perf_counter()
            session = Session.restore(blob, name=session_id)
            info["restored"] = True
            info["restore_us"] = (perf_counter() - t0) * 1e6
        else:
            kwargs = payload.get("session_kwargs") or {}
            session = Session(name=session_id, **kwargs)
        self.host.add_session(session)
        return session, info

    def _submit(self, payload: dict[str, Any]) -> dict[str, Any]:
        session, info = self._session_for(payload)
        output_before = len(session.output.parts)
        reply: dict[str, Any] = {
            "session_id": session.name,
            "shard": self.index,
            "restored": info["restored"],
            "restore_us": info["restore_us"],
        }
        try:
            handle = self.host.submit(
                session,
                payload["source"],
                max_steps=payload.get("max_steps"),
                deadline=payload.get("deadline"),
            )
            while not handle.done():
                self.host.tick()
            reply["steps"] = handle.steps
            if handle.exception() is not None:
                exc = handle.exception()
                reply["status"] = "error"
                reply["error_type"] = type(exc).__name__
                reply["error"] = str(exc)
            else:
                reply["status"] = "ok"
                from repro.datum.printer import scheme_repr

                values = handle.values
                reply["value"] = scheme_repr(values[-1]) if values else None
        except ReproError as exc:
            # Session-fatal faults (lifetime budget, snapshot problems):
            # still in-band — the shard itself is healthy.
            reply["status"] = "error"
            reply["error_type"] = type(exc).__name__
            reply["error"] = str(exc)
            reply.setdefault("steps", 0)
        reply["output"] = "".join(session.output.parts[output_before:])
        self._attach_snapshot(reply, session)
        return reply

    def _attach_snapshot(self, reply: dict[str, Any], session: Session) -> None:
        """Snapshot-on-idle: every reply carries the session's fresh
        blob so the front's store is never more than one request
        stale."""
        try:
            t0 = perf_counter()
            blob = session.snapshot()
            reply["snapshot"] = blob
            reply["snapshot_us"] = (perf_counter() - t0) * 1e6
        except ReproError as exc:  # pragma: no cover - defensive
            reply["snapshot"] = None
            reply["snapshot_error"] = str(exc)

    def _evict(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Snapshot a session and drop it from shard memory (the front
        persists the blob; a later submit rehydrates anywhere)."""
        session_id = payload["session_id"]
        try:
            session = self.host[session_id]
        except KeyError:
            return {"session_id": session_id, "resident": False, "snapshot": None}
        reply: dict[str, Any] = {"session_id": session_id, "resident": True}
        self._attach_snapshot(reply, session)
        self.host.remove_session(session)
        return reply

    def _snapshot_op(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Snapshot a resident session without evicting it."""
        session_id = payload["session_id"]
        try:
            session = self.host[session_id]
        except KeyError:
            return {"session_id": session_id, "resident": False, "snapshot": None}
        reply = {"session_id": session_id, "resident": True}
        self._attach_snapshot(reply, session)
        return reply


def shard_main(index: int, cmd_queue: Any, result_queue: Any) -> None:
    """Worker-process entry point: serve commands until ``shutdown``.

    Wire protocol: commands are ``(request_id, op, payload)``; replies
    are ``(request_id, "ok", reply_dict)`` or ``(request_id, "err",
    repr(exception))``.  Only infrastructure failures take the ``err``
    shape — evaluation errors ride inside an ``ok`` reply's
    ``status`` field.
    """
    runtime = ShardRuntime(index)
    while True:
        request_id, op, payload = cmd_queue.get()
        if op == "shutdown":
            result_queue.put((request_id, "ok", None))
            return
        try:
            reply = runtime.handle(op, payload)
        except BaseException as exc:  # noqa: BLE001 - must not kill the loop
            result_queue.put((request_id, "err", f"{type(exc).__name__}: {exc}"))
        else:
            result_queue.put((request_id, "ok", reply))
