"""The :class:`ClusterHandle`: one cluster request, as a value.

``Cluster.submit_async`` returns one of these instead of blocking.  It
moves through the *same* state machine as the host tier's
:class:`~repro.host.handle.EvalHandle` (literally the same
:class:`~repro.host.handle.HandleState` enum)::

    PENDING ──▶ RUNNING ──▶ DONE
        │          └──────▶ FAILED      (eval error / infra failure)
        └──────────────────▶ CANCELLED  (cancelled while queued)

so code written against the handle-state machine — the gateway, the
shared submit-contract test — drives host and cluster backends
identically.  The differences are inherent to the tier: a cluster
request is executed *blocking* on the front's dispatcher thread (the
shard protocol is synchronous), so ``cancel`` succeeds only while the
request is still queued — once the shard holds it, it runs to
completion — and ``result`` waits on an event rather than pumping.

Evaluation errors come back from shards in-band (``status="error"``):
the handle records them as a FAILED state whose :meth:`exception` is a
:class:`~repro.errors.ClusterEvalError`, while :meth:`cluster_result`
still hands back the raw in-band :class:`ClusterResult` for callers of
the classic blocking API.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

from repro.counters import SerialCounter
from repro.errors import ClusterEvalError
from repro.host.handle import HandleState

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster, ClusterResult

__all__ = ["ClusterHandle"]

_handle_ids = SerialCounter()

_TERMINAL = (HandleState.DONE, HandleState.FAILED, HandleState.CANCELLED)


class ClusterHandle:
    """A submitted cluster request; resolved by the front's dispatcher
    thread.  Thread-safe: any thread may poll, wait or cancel."""

    __slots__ = (
        "uid",
        "cluster",
        "session_id",
        "source",
        "max_steps",
        "deadline_at",
        "tenant",
        "submitted_at",
        "state",
        "steps",
        "_result",
        "_exception",
        "_done",
        "_resolve_lock",
    )

    def __init__(
        self,
        cluster: "Cluster",
        session_id: str,
        source: str,
        *,
        max_steps: int | None = None,
        deadline: float | None = None,
        tenant: str | None = None,
    ):
        self.uid = next(_handle_ids)
        self.cluster = cluster
        self.session_id = session_id
        self.source = source
        self.max_steps = max_steps
        # The deadline clock starts at submit, exactly like the host
        # tier: time spent queued on the front counts against it.  The
        # clock is the cluster's injected monotonic clock, so deadline
        # math is immune to wall-clock skew and testable by hand.
        now = cluster._clock()
        self.deadline_at = None if deadline is None else now + deadline
        self.tenant = tenant
        self.submitted_at = now
        self.state = HandleState.PENDING
        self.steps = 0
        self._result: "ClusterResult | None" = None
        self._exception: BaseException | None = None
        self._done = threading.Event()
        self._resolve_lock = threading.Lock()

    # -- inspection ------------------------------------------------------

    def done(self) -> bool:
        """True once the handle is in a terminal state."""
        return self.state in _TERMINAL

    def exception(self) -> BaseException | None:
        """The failure that ended this request, or None (never blocks).

        Infrastructure failures (:class:`~repro.errors.ShardDied`, a
        closed cluster) appear as themselves; shard-side evaluation
        errors as :class:`~repro.errors.ClusterEvalError`.
        """
        return self._exception

    def wait(self, timeout: float | None = None) -> bool:
        """Block until terminal (or ``timeout`` seconds); returns
        :meth:`done`."""
        self._done.wait(timeout)
        return self.done()

    def result(self, timeout: float | None = None) -> Any:
        """Block for the outcome; the EvalHandle-parity accessor.

        Returns the printed (``write``-style) representation of the
        last form's value; raises the recorded failure for
        FAILED/CANCELLED handles (in-band evaluation errors raise
        :class:`~repro.errors.ClusterEvalError`).  Raises
        :class:`TimeoutError` if ``timeout`` elapses first.
        """
        result = self.cluster_result(timeout)
        if self._exception is not None:
            raise self._exception
        return result.value

    def cluster_result(self, timeout: float | None = None) -> "ClusterResult":
        """Block for the raw in-band :class:`ClusterResult` (the
        classic ``Cluster.submit`` return shape: evaluation errors ride
        inside it, ``status="error"``).  Infrastructure failures —
        shard death with no snapshot, cancellation, a closed cluster —
        still raise."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"cluster request {self.uid} ({self.session_id!r}) still "
                f"{self.state.value} after {timeout}s"
            )
        if self._result is None:
            assert self._exception is not None
            raise self._exception
        return self._result

    # -- control ---------------------------------------------------------

    def cancel(self) -> bool:
        """Cancel this request if it is still queued on the front;
        returns True on success.  A request already running on a shard
        cannot be interrupted (the shard protocol is synchronous) and a
        terminal one is immutable — both return False."""
        return self.cluster._cancel_async(self)

    # -- internal (dispatcher-thread side) -------------------------------

    def _resolve(
        self,
        result: "ClusterResult | None" = None,
        exc: BaseException | None = None,
        state: HandleState | None = None,
    ) -> None:
        """Record the outcome and wake waiters.  Exactly one of
        ``result``/``exc`` is set; in-band error results also surface
        as a :class:`ClusterEvalError` so the parity path raises.

        Idempotent — the *first* resolution wins and later ones are
        no-ops.  This is what lets :meth:`Cluster.close` force an
        abandoned in-flight handle to a terminal state without racing
        the dispatcher thread, which may still resolve it for real if
        the shard round-trip eventually returns.
        """
        with self._resolve_lock:
            if self._done.is_set():
                return
            if result is not None:
                self._result = result
                self.steps = result.steps
                if result.ok:
                    self.state = HandleState.DONE
                else:
                    self.state = HandleState.FAILED
                    self._exception = ClusterEvalError(
                        f"session {self.session_id!r}: {result.error}",
                        error_type=result.error_type,
                    )
            else:
                assert exc is not None
                self._exception = exc
                self.state = state if state is not None else HandleState.FAILED
            self._done.set()

    def __repr__(self) -> str:
        return (
            f"#<cluster-handle {self.uid} {self.session_id!r} "
            f"{self.state.value} {self.steps} steps>"
        )
