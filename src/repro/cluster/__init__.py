"""A sharded multi-process cluster tier over the host runtime.

:class:`~repro.cluster.cluster.Cluster` routes session ids to shard
worker processes (one :class:`~repro.host.host.Host` per OS process),
persists every session's latest snapshot (:mod:`repro.snapshot`) to a
pluggable :class:`~repro.cluster.store.SnapshotStore`, and uses those
snapshots to make sessions mobile: evict them from shard memory,
migrate them between shards, and replay them onto a respawned worker
when a shard process dies.  See ``docs/CLUSTER.md``.
"""

from repro.cluster.cluster import Cluster, ClusterResult
from repro.cluster.handle import ClusterHandle
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.shard import ShardRuntime, shard_main
from repro.cluster.store import DirectoryStore, MemoryStore, SnapshotStore

__all__ = [
    "Cluster",
    "ClusterHandle",
    "ClusterMetrics",
    "ClusterResult",
    "DirectoryStore",
    "MemoryStore",
    "ShardRuntime",
    "SnapshotStore",
    "shard_main",
]
