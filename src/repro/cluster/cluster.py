"""The cluster front: sharded, snapshot-backed session serving.

A :class:`Cluster` owns N shard worker processes (one
:class:`~repro.host.host.Host` each, see :mod:`repro.cluster.shard`)
and routes each session id to a shard by stable hash.  Sessions are
*mobile*: every completed request ships a fresh snapshot back to the
front's :class:`~repro.cluster.store.SnapshotStore`, so any session can
be evicted from shard memory, rehydrated on a different shard
(:meth:`Cluster.migrate`), or — when a worker is SIGKILLed mid-service
— replayed from its last snapshot on a respawned worker without the
other shards noticing.

``workers=0`` runs the same :class:`~repro.cluster.shard.ShardRuntime`
logic inline in the calling process (no ``multiprocessing``): handy for
tests, debugging, and platforms where fork is unavailable.

The shard protocol is synchronous, but the front offers both request
shapes of the shared submit contract (``docs/API.md``):
:meth:`Cluster.submit_async` queues the request on a bounded front-side
queue and returns a :class:`~repro.cluster.handle.ClusterHandle`
immediately (poll/result/cancel parity with the host tier's
``EvalHandle`` — same :class:`~repro.host.handle.HandleState` state
machine, same :class:`~repro.errors.HostSaturated` refusal when the
queue is full), while the classic blocking :meth:`Cluster.submit` is a
thin wrapper that waits on the handle.  A single dispatcher thread
drains the queue and performs the blocking shard round-trips, so the
machinery below it stays synchronous.

Shard-side evaluation failures come back in-band as ``status="error"``
results; a dead worker raises :class:`~repro.errors.ShardDied` only
when the affected session has no snapshot to replay — otherwise the
front respawns the worker, counts a recovery, and retries the request
transparently.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue as queue_mod
import threading
import zlib
from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable

from repro.clock import MONOTONIC
from repro.cluster.handle import ClusterHandle
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.shard import ShardRuntime, shard_main
from repro.cluster.store import MemoryStore, SnapshotStore
from repro.errors import (
    ClusterError,
    DeadlineExceeded,
    HostSaturated,
    SessionCancelled,
    ShardDied,
)
from repro.host.handle import HandleState

__all__ = ["Cluster", "ClusterResult"]

_cluster_ids = itertools.count()

#: Seconds between liveness checks while waiting on a shard reply.
_POLL_INTERVAL = 0.05

#: Default seconds :meth:`Cluster.close` waits for the dispatcher
#: thread to finish its in-flight shard round-trip before abandoning
#: the request (the handle is then force-resolved CANCELLED, so no
#: caller is ever left holding a non-terminal handle).
_CLOSE_JOIN_TIMEOUT = 5.0


@dataclass(frozen=True)
class ClusterResult:
    """The picklable outcome of one cluster request.

    ``value`` is the printed (``write``-style) representation of the
    last form's value — live machine objects never leave their shard.
    ``output`` is the ``display`` output this request produced (the
    delta, not the session's lifetime buffer).
    """

    session_id: str
    shard: int
    status: str  # "ok" | "error"
    value: str | None
    output: str
    steps: int
    error: str | None = None
    error_type: str | None = None
    recovered: bool = False  # replayed from a snapshot after a shard death

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class _InlineShard:
    """``workers=0``: the shard runtime in the front process."""

    def __init__(self, index: int):
        self.runtime = ShardRuntime(index)

    def request(self, op: str, payload: dict[str, Any]) -> dict[str, Any]:
        return self.runtime.handle(op, payload)

    def alive(self) -> bool:
        return True

    def shutdown(self) -> None:
        pass


class _ProcessShard:
    """A shard worker process plus its command/result queues."""

    def __init__(self, index: int, ctx: Any):
        self.index = index
        self.ctx = ctx
        self._request_ids = itertools.count()
        self._spawn()

    def _spawn(self) -> None:
        self.cmd_queue = self.ctx.Queue()
        self.result_queue = self.ctx.Queue()
        self.process = self.ctx.Process(
            target=shard_main,
            args=(self.index, self.cmd_queue, self.result_queue),
            daemon=True,
            name=f"repro-shard-{self.index}",
        )
        self.process.start()

    def alive(self) -> bool:
        return self.process.is_alive()

    def respawn(self) -> None:
        """Fresh process, fresh queues (the old queue may hold replies
        from the dead worker's past life).

        The old queues' pipe FDs and the old process's sentinel are
        closed *explicitly* before the new ones are created: a wedged
        worker that survives the 1s ``join`` would otherwise orphan
        four pipe ends per respawn and leak the front out of file
        descriptors under repeated worker churn (gated by the
        50-respawn FD test in ``tests/cluster``).
        """
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=1.0)
        if self.process.is_alive():  # pragma: no cover - wedged worker
            self.process.kill()
            self.process.join(timeout=1.0)
        self._release_resources()
        self._spawn()

    def _release_resources(self) -> None:
        """Close both pipe ends of both queues plus the process
        sentinel — every front-side FD the dead worker's plumbing
        held."""
        for q in (self.cmd_queue, self.result_queue):
            try:
                q.close()
                q.join_thread()
            except (OSError, ValueError):  # pragma: no cover - defensive
                pass
            # close() only closes the reader; the writer is closed by
            # the feeder thread, which never ran for a queue this
            # process only read from.  Close both ends regardless
            # (Connection.close is idempotent).
            for conn in (getattr(q, "_reader", None), getattr(q, "_writer", None)):
                try:
                    if conn is not None:
                        conn.close()
                except OSError:  # pragma: no cover - defensive
                    pass
        try:
            self.process.close()  # releases the sentinel FD
        except ValueError:  # pragma: no cover - still alive; GC reclaims
            pass

    def request(self, op: str, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one command and wait for its reply, polling worker
        liveness; raises :class:`ShardDied` if the process exits (or is
        killed) before replying."""
        request_id = next(self._request_ids)
        self.cmd_queue.put((request_id, op, payload))
        while True:
            try:
                got_id, status, reply = self.result_queue.get(timeout=_POLL_INTERVAL)
            except queue_mod.Empty:
                if not self.process.is_alive():
                    raise ShardDied(
                        f"shard {self.index} (pid {self.process.pid}) died "
                        f"while serving {op!r}"
                    ) from None
                continue
            if got_id != request_id:
                # A reply from a previous life of this shard index;
                # drop it (queues are replaced on respawn, so this is
                # belt-and-braces).
                continue
            if status == "err":
                raise ClusterError(f"shard {self.index}: {reply}")
            return reply

    def shutdown(self) -> None:
        try:
            alive = self.process.is_alive()
        except ValueError:  # pragma: no cover - already shut down
            return
        if alive:
            try:
                self.cmd_queue.put((next(self._request_ids), "shutdown", {}))
                self.process.join(timeout=2.0)
            finally:
                if self.process.is_alive():  # pragma: no cover - stuck worker
                    self.process.terminate()
                    self.process.join(timeout=1.0)
        self._release_resources()


class Cluster:
    """A sharded pool of interpreter hosts behind one submit interface.

    Parameters
    ----------
    workers:
        Shard worker processes.  ``0`` runs a single inline shard in
        this process (no ``multiprocessing``).
    store:
        Where last-known-good snapshots live; defaults to a
        :class:`~repro.cluster.store.MemoryStore`.  Point a
        :class:`~repro.cluster.store.DirectoryStore` at a directory to
        survive front restarts.
    session_defaults:
        Constructor kwargs for sessions the cluster creates on first
        submit (``engine=``, ``quantum=``, ...).
    record:
        Optional :class:`~repro.obs.recorder.Recorder` (or ``True``)
        for front-side spans: every submit/migrate/recovery is
        bracketed on the ``cluster`` track.
    max_pending:
        Bound on front-side queued + in-flight requests;
        :meth:`submit_async` beyond it raises
        :class:`~repro.errors.HostSaturated` — the same backpressure
        contract as the host tier's bounded queues.
    clock:
        The monotonic clock every deadline computation reads
        (:mod:`repro.clock`); injectable so tests can drive queued-
        request expiry deterministically and so wall-clock skew can
        never fire or suppress a deadline.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        store: SnapshotStore | None = None,
        session_defaults: dict[str, Any] | None = None,
        record: Any = None,
        name: str | None = None,
        max_pending: int = 256,
        clock: Callable[[], float] = MONOTONIC,
    ):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.name = name if name is not None else f"cluster-{next(_cluster_ids)}"
        self._clock = clock
        self.store = store if store is not None else MemoryStore()
        self.session_defaults = dict(session_defaults or {})
        self.max_pending = max(1, max_pending)
        self.metrics = ClusterMetrics()
        # The dispatcher thread serializes shard round-trips; the op
        # lock additionally serializes them against mobility calls
        # (evict/migrate/snapshot_now) from the caller's thread, so
        # store/_resident bookkeeping stays single-writer-at-a-time.
        self._cv = threading.Condition()
        self._op_lock = threading.RLock()
        self._queue: deque[ClusterHandle] = deque()
        self._inflight: ClusterHandle | None = None
        self._dispatcher: threading.Thread | None = None
        if record is True:
            from repro.obs.recorder import Recorder

            self.recorder = Recorder()
        elif record is False:
            self.recorder = None
        else:
            self.recorder = record
        #: session id -> shard index where the session is live in RAM.
        self._resident: dict[str, int] = {}
        #: session id -> pinned shard (set by migrate); else hashed.
        self._placement: dict[str, int] = {}
        self._closed = False
        if workers == 0:
            self.shards: list[Any] = [_InlineShard(0)]
            self._nshards = 1
        else:
            # fork shares the parent's loaded modules (fast start); fall
            # back to spawn where fork does not exist.
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            self.shards = [_ProcessShard(i, ctx) for i in range(workers)]
            self._nshards = workers

    # -- placement -------------------------------------------------------

    def shard_for(self, session_id: str) -> int:
        """The shard this session routes to: its pinned placement if
        migrated, else a stable hash of the id (crc32 — identical
        across processes and runs, unlike ``hash``)."""
        pinned = self._placement.get(session_id)
        if pinned is not None:
            return pinned
        return zlib.crc32(session_id.encode("utf-8")) % self._nshards

    def sessions(self) -> list[str]:
        """Every session id the cluster knows: resident or stored."""
        with self._op_lock:
            return sorted(set(self._resident) | set(self.store.ids()))

    # -- the request path ------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Front-side queued plus in-flight requests."""
        with self._cv:
            return len(self._queue) + (1 if self._inflight is not None else 0)

    @property
    def idle(self) -> bool:
        """True when no request is queued or in flight on the front."""
        return self.queue_depth == 0

    def submit(
        self,
        session_id: str,
        source: str,
        *,
        max_steps: int | None = None,
        deadline: float | None = None,
        tenant: str | None = None,
    ) -> ClusterResult:
        """Evaluate ``source`` on ``session_id``'s session, creating or
        rehydrating it on its shard as needed; blocks for the result.
        A thin wrapper over :meth:`submit_async` — the keyword surface
        is the shared submit contract (``docs/API.md``).

        Survives one shard death per call: if the worker dies
        mid-request and the session has a stored snapshot, the worker
        is respawned and the request replays against the last
        snapshot (``result.recovered`` is set).  With no snapshot —
        the session's very first request — :class:`ShardDied`
        propagates.  Evaluation errors come back in-band
        (``status="error"``) and never raise here.
        """
        handle = self.submit_async(
            session_id, source, max_steps=max_steps, deadline=deadline, tenant=tenant
        )
        return handle.cluster_result()

    def submit_async(
        self,
        session_id: str,
        source: str,
        *,
        max_steps: int | None = None,
        deadline: float | None = None,
        tenant: str | None = None,
    ) -> ClusterHandle:
        """Queue ``source`` for evaluation on ``session_id``'s session
        and return a :class:`~repro.cluster.handle.ClusterHandle`
        immediately — poll/result/cancel parity with the host tier's
        ``EvalHandle`` (same state machine, same refusal types).

        The front-side queue is bounded (``max_pending``); beyond it
        this raises :class:`~repro.errors.HostSaturated` —
        backpressure, not buffering.  The ``deadline`` clock starts
        now: a request still queued at expiry fails with
        :class:`~repro.errors.DeadlineExceeded` without touching a
        shard.
        """
        self._check_open()
        handle = ClusterHandle(
            self,
            session_id,
            source,
            max_steps=max_steps,
            deadline=deadline,
            tenant=tenant,
        )
        with self._cv:
            depth = len(self._queue) + (1 if self._inflight is not None else 0)
            if depth >= self.max_pending:
                self.metrics.saturations += 1
                raise HostSaturated(
                    f"cluster {self.name}: submit queue full "
                    f"({depth}/{self.max_pending})"
                )
            self.metrics.submits += 1
            self._queue.append(handle)
            if self._dispatcher is None:
                self._dispatcher = threading.Thread(
                    target=self._dispatch_loop,
                    name=f"{self.name}-dispatch",
                    daemon=True,
                )
                self._dispatcher.start()
            self._cv.notify()
        return handle

    def _cancel_async(self, handle: ClusterHandle) -> bool:
        """Cancel ``handle`` if still queued (running/terminal requests
        return False); the :meth:`ClusterHandle.cancel` backend."""
        with self._cv:
            if handle.state is not HandleState.PENDING:
                return False
            try:
                self._queue.remove(handle)
            except ValueError:  # pragma: no cover - defensive
                return False
            self.metrics.cancellations += 1
            handle._resolve(
                exc=SessionCancelled(
                    f"cluster {self.name}: request {handle.uid} cancelled while queued"
                ),
                state=HandleState.CANCELLED,
            )
            return True

    def _dispatch_loop(self) -> None:
        """The dispatcher thread: drain the front queue, performing one
        blocking shard round-trip at a time."""
        while True:
            with self._cv:
                while not self._queue and not self._closed:
                    self._cv.wait()
                if not self._queue:  # closed and drained
                    return
                handle = self._queue.popleft()
                if handle.done():  # pragma: no cover - cancel raced the pop
                    continue
                handle.state = HandleState.RUNNING
                self._inflight = handle
            try:
                self._execute(handle)
            finally:
                with self._cv:
                    self._inflight = None

    def _execute(self, handle: ClusterHandle) -> None:
        """One request, start to terminal state (dispatcher thread)."""
        t0 = perf_counter()
        deadline: float | None = None
        if handle.deadline_at is not None:
            deadline = handle.deadline_at - self._clock()
            if deadline <= 0:
                self.metrics.failed += 1
                handle._resolve(
                    exc=DeadlineExceeded(
                        f"cluster {self.name}: request {handle.uid} missed its "
                        "wall-clock deadline while queued",
                        steps=0,
                    )
                )
                return
        rec = self.recorder
        try:
            with self._op_lock:
                if rec is not None and rec.enabled:
                    with rec.span("cluster.submit", handle.session_id, track="cluster"):
                        result = self._submit_once(
                            handle.session_id, handle.source, handle.max_steps, deadline
                        )
                else:
                    result = self._submit_once(
                        handle.session_id, handle.source, handle.max_steps, deadline
                    )
        except BaseException as exc:  # noqa: BLE001 - resolve, never kill the loop
            self.metrics.failed += 1
            handle._resolve(exc=exc)
            return
        self.metrics.request_us.observe((perf_counter() - t0) * 1e6)
        if result.ok:
            self.metrics.completed += 1
        else:
            self.metrics.failed += 1
        handle._resolve(result=result)

    def _submit_once(
        self,
        session_id: str,
        source: str,
        max_steps: float | None,
        deadline: float | None,
    ) -> ClusterResult:
        index = self.shard_for(session_id)
        payload: dict[str, Any] = {
            "session_id": session_id,
            "source": source,
            "max_steps": max_steps,
            "deadline": deadline,
        }
        if self._resident.get(session_id) != index:
            # Not live on the target shard: ship the last snapshot, or
            # creation kwargs for a brand-new session.
            blob = self.store.get(session_id)
            if blob is not None:
                payload["blob"] = blob
            else:
                payload["session_kwargs"] = self.session_defaults
        recovered = False
        try:
            reply = self.shards[index].request("submit", payload)
        except ShardDied:
            reply = self._recover(index, session_id, payload)
            recovered = True
        return self._finish(reply, recovered=recovered)

    def _recover(
        self, index: int, session_id: str, payload: dict[str, Any]
    ) -> dict[str, Any]:
        """A worker died under this request: respawn it, invalidate its
        residents, and replay against the last snapshot."""
        shard = self.shards[index]
        self.metrics.respawns += 1
        shard.respawn()
        # Every session that was live on that worker is gone from RAM;
        # they all rehydrate from the store on next touch.
        for sid, at in list(self._resident.items()):
            if at == index:
                del self._resident[sid]
        blob = self.store.get(session_id)
        if blob is None:
            raise ShardDied(
                f"shard {index} died and session {session_id!r} has no "
                "snapshot to replay"
            )
        payload = dict(payload)
        payload["blob"] = blob
        payload.pop("session_kwargs", None)
        rec = self.recorder
        if rec is not None and rec.enabled:
            rec.emit("cluster.recover", session_id)
        reply = self.shards[index].request("submit", payload)
        self.metrics.recoveries += 1
        return reply

    def _finish(self, reply: dict[str, Any], *, recovered: bool) -> ClusterResult:
        """Persist the piggybacked snapshot and fold shard-side timings
        into the front's metrics."""
        session_id = reply["session_id"]
        self._resident[session_id] = reply["shard"]
        if reply.get("restored"):
            self.metrics.restores += 1
            self.metrics.restore_us.observe(reply.get("restore_us", 0.0))
        blob = reply.get("snapshot")
        if blob is not None:
            self.store.put(session_id, blob)
            self.metrics.snapshots += 1
            self.metrics.snapshot_bytes.observe(len(blob))
            self.metrics.snapshot_us.observe(reply.get("snapshot_us", 0.0))
        return ClusterResult(
            session_id=session_id,
            shard=reply["shard"],
            status=reply["status"],
            value=reply.get("value"),
            output=reply.get("output", ""),
            steps=reply.get("steps", 0),
            error=reply.get("error"),
            error_type=reply.get("error_type"),
            recovered=recovered,
        )

    # -- session mobility ------------------------------------------------

    def evict(self, session_id: str) -> bool:
        """Snapshot a session to the store and release its shard
        memory; returns True if it was resident.  The session stays
        fully usable — the next submit rehydrates it."""
        self._check_open()
        with self._op_lock:
            index = self._resident.get(session_id)
            if index is None:
                return False
            reply = self.shards[index].request("evict", {"session_id": session_id})
            del self._resident[session_id]
            blob = reply.get("snapshot")
            if blob is not None:
                self.store.put(session_id, blob)
                self.metrics.snapshots += 1
                self.metrics.snapshot_bytes.observe(len(blob))
                self.metrics.snapshot_us.observe(reply.get("snapshot_us", 0.0))
            self.metrics.evictions += 1
            return bool(reply.get("resident"))

    def migrate(self, session_id: str, to_shard: int) -> int:
        """Move a session to ``to_shard`` (pinning it there): snapshot
        out of its current shard now; the next submit rehydrates on the
        target.  Returns the target shard index."""
        self._check_open()
        if not 0 <= to_shard < self._nshards:
            raise ValueError(
                f"shard index {to_shard} out of range (cluster has "
                f"{self._nshards} shards)"
            )
        rec = self.recorder
        if rec is not None and rec.enabled:
            rec.emit("cluster.migrate", f"{session_id} -> shard {to_shard}")
        with self._op_lock:
            if self._resident.get(session_id) is not None:
                self.evict(session_id)
            self._placement[session_id] = to_shard
            self.metrics.migrations += 1
        return to_shard

    def snapshot_now(self, session_id: str) -> bytes | None:
        """Force a fresh snapshot of a resident session into the store
        (idle sessions are already stored as of their last request);
        returns the blob, or the stored one if not resident."""
        self._check_open()
        with self._op_lock:
            index = self._resident.get(session_id)
            if index is None:
                return self.store.get(session_id)
            reply = self.shards[index].request("snapshot", {"session_id": session_id})
            blob = reply.get("snapshot")
            if blob is not None:
                self.store.put(session_id, blob)
                self.metrics.snapshots += 1
                self.metrics.snapshot_bytes.observe(len(blob))
                self.metrics.snapshot_us.observe(reply.get("snapshot_us", 0.0))
            return blob

    # -- introspection / lifecycle ---------------------------------------

    @property
    def stats(self) -> dict[str, int]:
        """Front counters (``cluster.*``) plus topology."""
        out = self.metrics.as_dict()
        out["cluster.shards"] = self._nshards
        out["cluster.queue_depth"] = self.queue_depth
        out["cluster.resident_sessions"] = len(self._resident)
        out["cluster.stored_sessions"] = len(self.store.ids())
        return out

    def histograms(self) -> dict[str, Any]:
        """Distribution summaries, JSON-ready (snapshot sizes and
        encode/decode/request latencies)."""
        return self.metrics.histograms()

    def _check_open(self) -> None:
        if self._closed:
            raise ClusterError(f"cluster {self.name} is closed")

    def close(self, *, join_timeout: float = _CLOSE_JOIN_TIMEOUT) -> None:
        """Shut the front down (idempotent): still-queued requests
        resolve CANCELLED immediately, the in-flight request gets up to
        ``join_timeout`` seconds to finish its shard round-trip and is
        then abandoned — force-resolved CANCELLED, so **every**
        outstanding :class:`ClusterHandle` reaches a terminal state
        before this returns — the dispatcher thread exits, and every
        worker is shut down.  Stored snapshots are untouched — a new
        cluster over the same store resumes them."""
        with self._cv:
            if self._closed:
                return
            self._closed = True
            while self._queue:
                handle = self._queue.popleft()
                self.metrics.cancellations += 1
                handle._resolve(
                    exc=SessionCancelled(
                        f"cluster {self.name}: request {handle.uid} abandoned "
                        "at close"
                    ),
                    state=HandleState.CANCELLED,
                )
            self._cv.notify_all()
            dispatcher = self._dispatcher
        if dispatcher is not None:
            dispatcher.join(timeout=join_timeout)
        # A wedged shard can hold the dispatcher past the join timeout;
        # the caller still gets the terminal-state guarantee.  Handle
        # resolution is idempotent (first wins), so if the round-trip
        # does eventually return, the dispatcher's resolve is a no-op.
        with self._cv:
            inflight = self._inflight
        if inflight is not None and not inflight.done():
            self.metrics.cancellations += 1
            inflight._resolve(
                exc=SessionCancelled(
                    f"cluster {self.name}: request {inflight.uid} abandoned "
                    "in flight at close"
                ),
                state=HandleState.CANCELLED,
            )
        for shard in self.shards:
            shard.shutdown()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"#<cluster {self.name} {self._nshards} shards "
            f"{len(self._resident)} resident {state}>"
        )
