"""One-command experiment reproduction: ``python -m repro.experiments``.

Re-runs the deterministic core of every experiment in EXPERIMENTS.md —
the machine-step series whose *shapes* reproduce the paper's claims —
and prints them as a single report.  (Wall-clock microbenchmarks live in
``pytest benchmarks/ --benchmark-only``; this runner sticks to exact,
machine-independent counts plus a few order-of-magnitude timings.)

Exit code 0 means every shape assertion held.
"""

from __future__ import annotations

import sys
import time
from typing import Callable

from repro import Interpreter
from repro.control.spawn import ProcessContinuation
from repro.machine.ablation import clone_capture_copying
from repro.machine.tree import clone_capture

__all__ = ["main", "run_all"]


def _steps(interp: Interpreter, source: str) -> int:
    before = interp.machine.steps_total
    interp.eval(source)
    return interp.machine.steps_total - before


def _sl(values) -> str:
    return "(" + " ".join(str(v) for v in values) + ")"


class Report:
    def __init__(self) -> None:
        self.failures: list[str] = []

    def section(self, title: str) -> None:
        print(f"\n=== {title} ===")

    def row(self, text: str) -> None:
        print(f"  {text}")

    def check(self, condition: bool, claim: str) -> None:
        status = "ok " if condition else "FAIL"
        print(f"  [{status}] {claim}")
        if not condition:
            self.failures.append(claim)


def e1(report: Report) -> None:
    report.section("E1  §3 product: early exit via call/cc")
    length = 400

    def steps_for(zero_at):
        interp = Interpreter()
        interp.load_paper_example("product-callcc")
        values = [2] * length
        if zero_at is not None:
            values[zero_at] = 0
        return _steps(interp, f"(product '{_sl(values)})")

    front, middle, none = steps_for(0), steps_for(length // 2), steps_for(None)
    report.row(f"zero@0={front}  zero@n/2={middle}  no-zero={none} steps")
    report.check(front < middle < none, "cost tracks zero position")
    report.check(front * 10 < none, "front zero skips ~everything")


def e2(report: Report) -> None:
    report.section("E2  §3 whole-tree call/cc captures every sibling")
    from repro.datum import to_pylist

    def size(kind, siblings):
        interp = Interpreter(quantum=2)
        interp.run("(define (spin n) (if (= n 0) 0 (spin (- n 1))))")
        body = (
            "(call/cc (lambda (k) k))"
            if kind == "callcc"
            else "(spawn (lambda (c) (c (lambda (k) k))))"
        )
        branches = " ".join("(spin 400)" for _ in range(siblings))
        result = interp.eval(f"(pcall list {body} {branches})")
        return to_pylist(result)[0].capture.task_count()

    cc = [size("callcc", n) for n in (1, 4, 8)]
    sp = [size("spawn", n) for n in (1, 4, 8)]
    report.row(f"call/cc snapshot tasks for 1/4/8 siblings: {cc}")
    report.row(f"spawn   capture  tasks for 1/4/8 siblings: {sp}")
    report.check(cc[0] < cc[1] < cc[2], "whole-tree snapshot grows with siblings")
    report.check(sp == [1, 1, 1], "controller capture constant in siblings")


def e3(report: Report) -> None:
    report.section("E3  §4 controller validity (paper examples)")
    from repro.errors import DeadControllerError
    from repro.lib import paper_examples

    interp = Interpreter()
    for name, source in [
        ("invalid after return", paper_examples.INVALID_AFTER_RETURN),
        ("invalid after use", paper_examples.INVALID_AFTER_USE),
    ]:
        try:
            interp.eval(source)
            report.check(False, f"{name} rejected")
        except DeadControllerError:
            report.check(True, f"{name} rejected")
    value = interp.eval(f"({paper_examples.VALID_AFTER_REINSTATEMENT.strip()} 'w)")
    report.check(getattr(value, "name", None) == "w",
                 "triple-controller example is the identity procedure")


def e4_e5(report: Report) -> None:
    report.section("E4/E5  §5 branch-local exits and subtree aborts")
    length = 300
    ones, zfront = [1] * length, [0] + [1] * (length - 1)

    def sum_steps(a, b):
        interp = Interpreter()
        interp.load_paper_example("sum-of-products")
        return _steps(interp, f"(sum-of-products '{_sl(a)} '{_sl(b)})")

    def prod_steps(a, b):
        interp = Interpreter(quantum=4)
        interp.load_paper_example("product-of-products-spawn")
        return _steps(interp, f"(product-of-products/spawn '{_sl(a)} '{_sl(b)})")

    clean, one_zero = sum_steps(ones, ones), sum_steps(zfront, ones)
    report.row(f"E4 sum-of-products: clean={clean}  one-zero={one_zero}")
    report.check(one_zero < 0.75 * clean, "one zero kills ~one branch only")
    p_clean, p_zero = prod_steps(ones, ones), prod_steps(zfront, ones)
    report.row(f"E5 product-of-products: clean={p_clean}  zero={p_zero}")
    report.check(p_zero < 0.25 * p_clean, "one zero aborts BOTH branches")
    flat = [prod_steps([0], [1] * n) for n in (50, 150, 300)]
    report.row(f"E5 abort steps vs sibling length 50/150/300: {flat}")
    report.check(max(flat) - min(flat) <= max(flat) * 0.5,
                 "abort cost flat in sibling size")


def e6(report: Report) -> None:
    report.section("E6  §5 parallel-or: winner ≈ min, loser abandoned")

    def steps_for(expr):
        interp = Interpreter(quantum=4)
        interp.load_paper_example("parallel-or")
        interp.run("(define (work n v) (if (= n 0) v (work (- n 1) v)))")
        return _steps(interp, expr)

    fast = steps_for("(parallel-or (work 20 'yes) (work 2000 'also))")
    slow_alone = steps_for("(work 2000 'x)")
    both_false = steps_for("(parallel-or (work 2000 #f) (work 2000 #f))")
    report.row(f"fast-wins={fast}  slow-alone={slow_alone}  both-false={both_false}")
    report.check(fast < 0.5 * slow_alone, "winner ≈ min(branches)")
    report.check(both_false > 1.5 * slow_alone, "no winner ⇒ pay for both")


def e7(report: Report) -> None:
    report.section("E7  §5 parallel-search / search-all")

    def balanced(lo, hi):
        if lo > hi:
            return []
        mid = (lo + hi) // 2
        return [mid] + balanced(lo, mid - 1) + balanced(mid + 1, hi)

    def fresh():
        interp = Interpreter(quantum=4)
        interp.load_paper_example("search-all")
        interp.run(f"(define t (list->tree '{_sl(balanced(1, 127))}))")
        return interp

    hit = _steps(fresh(), "(parallel-search t even?)")
    miss = _steps(fresh(), "(parallel-search t (lambda (x) (> x 999)))")
    report.row(f"first-hit={hit}  exhaustive-miss={miss} steps")
    report.check(hit < 0.7 * miss, "suspend-on-hit beats full scan")
    interp = fresh()
    found = interp.eval("(length (search-all t even?))")
    report.check(found == 63, "search-all complete (63 evens in 1..127)")


def e8(report: Report) -> None:
    report.section("E8  §6 semantics ≡ machine (differential)")
    from repro.semantics import run_both, values_agree

    programs = [
        "(spawn (lambda (c) 42))",
        "(spawn (lambda (c) (+ 1 (c (lambda (k) 5)))))",
        "(spawn (lambda (c) (+ 1 (c (lambda (k) (k (k 10)))))))",
        "((spawn (lambda (c) (c (c (lambda (k) (k (lambda (k) "
        "(k (lambda (k) k))))))))) 9)",
    ]
    agreed = 0
    for source in programs:
        rr, mv = run_both(source)
        if values_agree(rr.value, mv):
            agreed += 1
    report.row(f"{agreed}/{len(programs)} curated programs agree")
    report.check(agreed == len(programs), "rewriting system matches machine")


def e9(report: Report) -> None:
    report.section("E9  §7 cost: flat in size, linear in control points")

    def continuation_with_depth(depth):
        interp = Interpreter()
        interp.run(
            "(define (deep n thunk) (if (= n 0) (thunk) (+ 1 (deep (- n 1) thunk))))"
        )
        k = interp.eval(
            f"(spawn (lambda (c) (deep {depth} (lambda () (c (lambda (kk) kk))))))"
        )
        assert isinstance(k, ProcessContinuation)
        return k

    def timed(fn, repeats=200):
        fn()
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        return (time.perf_counter() - start) / repeats * 1e6

    rows = []
    for depth in (50, 800, 3200):
        k = continuation_with_depth(depth)
        share = timed(lambda: clone_capture(k.capture))
        copy = timed(lambda: clone_capture_copying(k.capture))
        rows.append((depth, share, copy))
        report.row(f"depth {depth:5d}: sharing {share:7.2f}μs  copying {copy:8.2f}μs")
    report.check(rows[-1][1] < rows[0][1] * 3 + 5, "sharing clone flat in depth")
    report.check(rows[-1][2] > rows[0][2] * 10, "copying ablation linear in depth")


def e10(report: Report) -> None:
    report.section("E10  §8 engines / coroutines / futures")
    from repro.runtime import Call, Coroutine
    from repro.runtime.engines import make_engine

    def worker():
        total = 0
        for i in range(500):
            total += i
            yield Call(lambda: None)
        return total

    outcome = make_engine(worker).run(50)
    slices = 1
    while not outcome.done:
        outcome = outcome.engine.run(50)
        slices += 1
    report.row(f"engine: {slices} slices of 50 fuel; value {outcome.value}")
    report.check(outcome.value == sum(range(500)), "sliced engine = unsliced answer")

    def numbers(suspend):
        for i in range(3):
            yield suspend(i)
        return "end"

    co = Coroutine(numbers)
    values = [co.resume().value for _ in range(3)]
    report.check(values == [0, 1, 2], "coroutine yields in order")

    interp = Interpreter()
    interp.run("(define ph (future (lambda () (* 6 7))))")
    report.check(interp.eval("(touch ph)") == 42, "machine futures resolve")


RUNNERS: list[Callable[[Report], None]] = [e1, e2, e3, e4_e5, e6, e7, e8, e9, e10]


def run_all() -> Report:
    report = Report()
    print("repro — experiment reproduction run (see EXPERIMENTS.md)")
    for runner in RUNNERS:
        runner(report)
    print()
    if report.failures:
        print(f"{len(report.failures)} shape assertion(s) FAILED:")
        for failure in report.failures:
            print(f"  - {failure}")
    else:
        print("all shape assertions held.")
    return report


def main() -> int:
    return 1 if run_all().failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
