"""Differential bridge: run the same program on the Section 6 rewriting
system and on the abstract machine, then compare answers.

The bridge covers the sequential fragment: constants, variables,
(multi-parameter, rest-free) lambdas, applications, ``if``, ``begin``,
the binary numeric primitives, and ``spawn``/controllers/process
continuations.  ``pcall``, ``set!`` and traditional ``call/cc`` are out
of scope — the formal semantics of Section 6 is sequential and
store-free by design.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.datum import UNSPECIFIED, Symbol
from repro.errors import SemanticsError
from repro.expander import ExpandEnv, expand_program
from repro.ir import App as IrApp
from repro.ir import Const as IrConst
from repro.ir import If as IrIf
from repro.ir import Lambda as IrLambda
from repro.ir import Node
from repro.ir import Seq as IrSeq
from repro.ir import Var as IrVar
from repro.reader import read_all
from repro.semantics.rewrite import RunResult, run as rewrite_run
from repro.semantics.terms import (
    App,
    Const,
    If,
    Lam,
    PrimOp,
    SPAWN,
    Term,
    Var,
    fresh_var,
)

__all__ = ["compile_ir", "compile_source", "run_both", "values_agree", "SEM_PRIMS"]

_UNIT = Const("unit")


def _prim(name: str, arity: int, fn: Callable[..., Any]) -> PrimOp:
    return PrimOp(name, arity, fn)


def _num(name: str, fn: Callable[..., Any]) -> Callable[..., Any]:
    """δ is undefined on non-numbers: raise StuckTermError, mirroring
    the machine's WrongTypeError on the same programs."""

    def checked(*args: Any) -> Any:
        for arg in args:
            if isinstance(arg, bool) or not isinstance(arg, (int, float)):
                raise SemanticsError(f"δ({name}): not a number: {arg!r}")
        return fn(*args)

    return checked


#: Primitives available in the semantics world (all fixed-arity).
SEM_PRIMS: dict[str, PrimOp] = {
    "+": _prim("+", 2, _num("+", lambda a, b: a + b)),
    "-": _prim("-", 2, _num("-", lambda a, b: a - b)),
    "*": _prim("*", 2, _num("*", lambda a, b: a * b)),
    "=": _prim("=", 2, _num("=", lambda a, b: a == b)),
    "<": _prim("<", 2, _num("<", lambda a, b: a < b)),
    ">": _prim(">", 2, _num(">", lambda a, b: a > b)),
    "<=": _prim("<=", 2, _num("<=", lambda a, b: a <= b)),
    ">=": _prim(">=", 2, _num(">=", lambda a, b: a >= b)),
    "zero?": _prim("zero?", 1, _num("zero?", lambda a: a == 0)),
    "not": _prim("not", 1, lambda a: a is False),
    "add1": _prim("add1", 1, _num("add1", lambda a: a + 1)),
    "sub1": _prim("sub1", 1, _num("sub1", lambda a: a - 1)),
}


def compile_ir(node: Node) -> Term:
    """Translate the sequential IR fragment into a Section 6 term."""
    if isinstance(node, IrConst):
        value = node.value
        if value is UNSPECIFIED:
            return _UNIT
        if isinstance(value, (bool, int, float, str)):
            return Const(value)
        if isinstance(value, Symbol):
            return Const(value.name)
        raise SemanticsError(f"constant not expressible in the semantics: {value!r}")
    if isinstance(node, IrVar):
        name = node.name.name
        if name == "spawn":
            return SPAWN
        if name in SEM_PRIMS:
            return SEM_PRIMS[name]
        return Var(name)
    if isinstance(node, IrLambda):
        if node.rest is not None:
            raise SemanticsError("rest parameters are not in the semantics fragment")
        body = compile_ir(node.body)
        if not node.params:
            return Lam(fresh_var("unit"), body)
        term = body
        for param in reversed(node.params):
            term = Lam(param.name, term)
        return term
    if isinstance(node, IrApp):
        fn = compile_ir(node.fn)
        if not node.args:
            return App(fn, _UNIT)
        term = fn
        for arg in node.args:
            term = App(term, compile_ir(arg))
        return term
    if isinstance(node, IrIf):
        return If(compile_ir(node.test), compile_ir(node.then), compile_ir(node.els))
    if isinstance(node, IrSeq):
        term = compile_ir(node.exprs[-1])
        for expr in reversed(node.exprs[:-1]):
            ignored = fresh_var("seq")
            term = App(Lam(ignored, term), compile_ir(expr))
        return term
    raise SemanticsError(
        f"IR node outside the sequential semantics fragment: {type(node).__name__}"
    )


def compile_source(source: str) -> Term:
    """Read + expand a single expression and compile it to a term.

    A top-level ``begin`` splices into several nodes; they are sequenced
    back together (the value is the last node's).
    """
    forms = read_all(source)
    nodes = expand_program(forms, ExpandEnv())
    if not nodes:
        raise SemanticsError("compile_source expects an expression")
    term = compile_ir(nodes[-1])
    for node in reversed(nodes[:-1]):
        term = App(Lam(fresh_var("top"), term), compile_ir(node))
    return term


def run_both(
    source: str, max_steps: int = 200_000
) -> tuple[RunResult, Any]:
    """Run ``source`` through the rewriting system and through a fresh
    serial-policy machine; return ``(rewrite_result, machine_value)``."""
    from repro.api import Interpreter

    term = compile_source(source)
    rewrite_result = rewrite_run(term, max_steps=max_steps)
    interp = Interpreter(policy="serial", prelude=False, max_steps=max_steps)
    machine_value = interp.eval(source)
    return rewrite_result, machine_value


def values_agree(term_value: Term, machine_value: Any) -> bool:
    """Do a semantics value and a machine value denote the same answer?

    Ground constants compare by value; procedures (λ-abstractions vs
    closures/continuations) agree with any applicable machine value —
    the systems represent them differently by construction.
    """
    if isinstance(term_value, Const):
        if term_value is _UNIT:
            return machine_value is UNSPECIFIED
        value = term_value.value
        if isinstance(machine_value, Symbol):
            # Symbols compile to their names (the semantics world has
            # only opaque constants).
            return value == machine_value.name
        if isinstance(value, bool) or isinstance(machine_value, bool):
            return value is machine_value
        return value == machine_value
    if isinstance(term_value, (Lam, PrimOp)):
        from repro.machine.values import Closure, ControlPrimitive, Primitive

        return isinstance(machine_value, (Closure, Primitive, ControlPrimitive)) or hasattr(
            machine_value, "machine_apply"
        )
    return False
