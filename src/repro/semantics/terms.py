"""Terms of the Section 6 language, with capture-avoiding substitution.

Terms are immutable.  Variables are plain strings; labels are plain
integers (the paper only requires a countable set).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable

__all__ = [
    "Term",
    "Const",
    "Var",
    "Lam",
    "App",
    "If",
    "Labeled",
    "Control",
    "Spawn",
    "SPAWN",
    "PrimOp",
    "is_value",
    "labels_of",
    "free_vars",
    "substitute",
    "fresh_var",
    "term_to_str",
    "term_size",
]


@dataclass(frozen=True)
class Term:
    __slots__ = ()


@dataclass(frozen=True)
class Const(Term):
    """A constant: numbers, booleans, or any opaque Python value."""

    value: Any


@dataclass(frozen=True)
class Var(Term):
    name: str


@dataclass(frozen=True)
class Lam(Term):
    param: str
    body: Term


@dataclass(frozen=True)
class App(Term):
    fn: Term
    arg: Term


@dataclass(frozen=True)
class If(Term):
    """Call-by-value conditional (standard extension)."""

    test: Term
    then: Term
    els: Term


@dataclass(frozen=True)
class Labeled(Term):
    """``l : e``"""

    label: int
    expr: Term


@dataclass(frozen=True)
class Control(Term):
    """``e ↑ l``"""

    expr: Term
    label: int


@dataclass(frozen=True)
class Spawn(Term):
    """The ``spawn`` operator as a first-class constant."""


SPAWN = Spawn()


@dataclass(frozen=True)
class PrimOp(Term):
    """A (possibly partially applied) primitive — the δ-rule carrier.

    ``collected`` holds arguments received so far; when it reaches
    ``arity`` the next application fires ``fn``.
    """

    name: str
    arity: int
    fn: Callable[..., Any]
    collected: tuple[Any, ...] = ()

    def __repr__(self) -> str:
        return f"PrimOp({self.name}, {len(self.collected)}/{self.arity})"


def is_value(term: Term) -> bool:
    """Values: constants, abstractions, spawn, primitives (possibly
    partially applied).  The continuation abstractions built by rule 3
    are ordinary ``Lam`` values."""
    return isinstance(term, (Const, Lam, Spawn, PrimOp))


def labels_of(term: Term) -> frozenset[int]:
    """All labels occurring in a term (for the spawn freshness side
    condition)."""
    out: set[int] = set()
    stack = [term]
    while stack:
        node = stack.pop()
        if isinstance(node, Labeled):
            out.add(node.label)
            stack.append(node.expr)
        elif isinstance(node, Control):
            out.add(node.label)
            stack.append(node.expr)
        elif isinstance(node, App):
            stack.append(node.fn)
            stack.append(node.arg)
        elif isinstance(node, Lam):
            stack.append(node.body)
        elif isinstance(node, If):
            stack.extend((node.test, node.then, node.els))
    return frozenset(out)


def free_vars(term: Term) -> frozenset[str]:
    out: set[str] = set()
    stack: list[tuple[Term, frozenset[str]]] = [(term, frozenset())]
    while stack:
        node, bound = stack.pop()
        if isinstance(node, Var):
            if node.name not in bound:
                out.add(node.name)
        elif isinstance(node, Lam):
            stack.append((node.body, bound | {node.param}))
        elif isinstance(node, App):
            stack.append((node.fn, bound))
            stack.append((node.arg, bound))
        elif isinstance(node, If):
            stack.extend(((node.test, bound), (node.then, bound), (node.els, bound)))
        elif isinstance(node, Labeled):
            stack.append((node.expr, bound))
        elif isinstance(node, Control):
            stack.append((node.expr, bound))
    return frozenset(out)


_fresh_counter = itertools.count()


def fresh_var(base: str = "x") -> str:
    """A variable name guaranteed fresh (the '%' prefix cannot be
    produced by the compiler or written by hand)."""
    return f"%{base}{next(_fresh_counter)}"


def substitute(term: Term, name: str, value: Term) -> Term:
    """Capture-avoiding ``term[name ← value]``.

    α-renames binders that would capture free variables of ``value``.
    """
    value_frees = free_vars(value)

    def go(node: Term) -> Term:
        if isinstance(node, Var):
            return value if node.name == name else node
        if isinstance(node, (Const, Spawn, PrimOp)):
            return node
        if isinstance(node, Lam):
            if node.param == name:
                return node
            if node.param in value_frees:
                renamed = fresh_var(node.param.lstrip("%"))
                body = substitute(node.body, node.param, Var(renamed))
                return Lam(renamed, go(body))
            return Lam(node.param, go(node.body))
        if isinstance(node, App):
            return App(go(node.fn), go(node.arg))
        if isinstance(node, If):
            return If(go(node.test), go(node.then), go(node.els))
        if isinstance(node, Labeled):
            return Labeled(node.label, go(node.expr))
        if isinstance(node, Control):
            return Control(go(node.expr), node.label)
        raise TypeError(f"unknown term: {node!r}")

    return go(term)


def term_size(term: Term) -> int:
    """Node count (bench instrumentation)."""
    n = 0
    stack = [term]
    while stack:
        node = stack.pop()
        n += 1
        if isinstance(node, Lam):
            stack.append(node.body)
        elif isinstance(node, App):
            stack.extend((node.fn, node.arg))
        elif isinstance(node, If):
            stack.extend((node.test, node.then, node.els))
        elif isinstance(node, (Labeled, Control)):
            stack.append(node.expr)
    return n


def term_to_str(term: Term) -> str:
    """Readable rendering using the paper's notation."""
    if isinstance(term, Const):
        return repr(term.value)
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Lam):
        return f"(λ{term.param}. {term_to_str(term.body)})"
    if isinstance(term, App):
        return f"({term_to_str(term.fn)} {term_to_str(term.arg)})"
    if isinstance(term, If):
        return (
            f"(if {term_to_str(term.test)} {term_to_str(term.then)} "
            f"{term_to_str(term.els)})"
        )
    if isinstance(term, Labeled):
        return f"({term.label} : {term_to_str(term.expr)})"
    if isinstance(term, Control):
        return f"({term_to_str(term.expr)} ↑ {term.label})"
    if isinstance(term, Spawn):
        return "spawn"
    if isinstance(term, PrimOp):
        inner = " ".join(repr(v) for v in term.collected)
        return f"#{term.name}[{inner}]" if inner else f"#{term.name}"
    raise TypeError(f"unknown term: {term!r}")
