"""Decomposition and the rewrite rules of Section 6.

A program is rewritten by (a) decomposing it into an evaluation context
and a redex, (b) contracting the redex, (c) plugging the result back.
Rule 3 (control) and the spawn rule need the context / whole program,
so contraction happens inside :func:`step` rather than on the redex
alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.errors import StepBudgetExceeded, StuckTermError
from repro.semantics.terms import (
    App,
    Const,
    Control,
    If,
    Labeled,
    Lam,
    PrimOp,
    Spawn,
    Term,
    Var,
    fresh_var,
    is_value,
    labels_of,
    substitute,
    term_to_str,
)

__all__ = ["decompose", "plug", "step", "run", "RewriteResult", "RunResult"]

# Context frames (outermost first in the context list):
#   ("app-fn", arg_term)     C e
#   ("app-arg", fn_value)    v C
#   ("if", then, els)        if C e e      (extension)
#   ("label", l)             l : C
Frame = tuple


def decompose(term: Term) -> tuple[list[Frame], Term | None]:
    """Split ``term`` into (evaluation context, redex).

    Returns ``(ctx, None)`` when the term is a value (nothing to do)
    and raises :class:`StuckTermError` on free variables.
    """
    ctx: list[Frame] = []
    node = term
    while True:
        if isinstance(node, App):
            if not is_value(node.fn):
                ctx.append(("app-fn", node.arg))
                node = node.fn
                continue
            if not is_value(node.arg):
                ctx.append(("app-arg", node.fn))
                node = node.arg
                continue
            return ctx, node
        if isinstance(node, If):
            if not is_value(node.test):
                ctx.append(("if", node.then, node.els))
                node = node.test
                continue
            return ctx, node
        if isinstance(node, Labeled):
            if not is_value(node.expr):
                ctx.append(("label", node.label))
                node = node.expr
                continue
            return ctx, node
        if isinstance(node, Control):
            return ctx, node
        if isinstance(node, Var):
            raise StuckTermError(f"free variable: {node.name}", node)
        if is_value(node):
            if ctx:  # pragma: no cover - descent never enters values
                raise StuckTermError("value in context during decomposition", node)
            return ctx, None
        raise StuckTermError(f"unknown term form: {node!r}", node)


def plug(ctx: list[Frame], term: Term) -> Term:
    """Fill the hole of ``ctx`` with ``term``."""
    node = term
    for frame in reversed(ctx):
        tag = frame[0]
        if tag == "app-fn":
            node = App(node, frame[1])
        elif tag == "app-arg":
            node = App(frame[1], node)
        elif tag == "if":
            node = If(node, frame[1], frame[2])
        elif tag == "label":
            node = Labeled(frame[1], node)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown frame: {frame!r}")
    return node


@dataclass(frozen=True)
class RewriteResult:
    """One rewriting step: the new program and the rule that fired."""

    term: Term
    rule: str


def step(term: Term) -> RewriteResult | None:
    """Perform one rewriting step; ``None`` if ``term`` is a value."""
    ctx, redex = decompose(term)
    if redex is None:
        return None

    if isinstance(redex, App):
        fn, arg = redex.fn, redex.arg
        if isinstance(fn, Lam):  # rule (1)
            return RewriteResult(plug(ctx, substitute(fn.body, fn.param, arg)), "beta")
        if isinstance(fn, Spawn):  # spawn rule
            used = labels_of(term)
            label = (max(used) + 1) if used else 0
            x = fresh_var("x")
            controller = Lam(x, Control(Var(x), label))
            return RewriteResult(
                plug(ctx, Labeled(label, App(arg, controller))), "spawn"
            )
        if isinstance(fn, PrimOp):  # δ-rule
            return RewriteResult(plug(ctx, _delta(fn, arg)), "delta")
        raise StuckTermError(
            f"cannot apply non-procedure value: {term_to_str(fn)}", redex
        )

    if isinstance(redex, Labeled):  # rule (2): l : v  ⇒  v
        return RewriteResult(plug(ctx, redex.expr), "label-return")

    if isinstance(redex, Control):  # rule (3)
        label = redex.label
        # Innermost enclosing matching label (so l does not label C2).
        split = None
        for index in range(len(ctx) - 1, -1, -1):
            frame = ctx[index]
            if frame[0] == "label" and frame[1] == label:
                split = index
                break
        if split is None:
            raise StuckTermError(
                f"control expression ↑{label} with no matching label in "
                "its evaluation context (the paper's invalid-controller "
                "condition)",
                redex,
            )
        outer, inner = ctx[:split], ctx[split + 1 :]
        x = fresh_var("k")
        captured = Lam(x, Labeled(label, plug(inner, Var(x))))
        return RewriteResult(plug(outer, App(redex.expr, captured)), "control")

    if isinstance(redex, If):  # extension
        chosen = redex.els if _is_false(redex.test) else redex.then
        return RewriteResult(plug(ctx, chosen), "if")

    raise StuckTermError(f"unknown redex: {redex!r}", redex)  # pragma: no cover


def _is_false(value: Term) -> bool:
    return isinstance(value, Const) and value.value is False


def _delta(prim: PrimOp, arg: Term) -> Term:
    """Apply one argument to a primitive, firing when saturated."""
    if not isinstance(arg, Const):
        raise StuckTermError(
            f"primitive {prim.name} applied to a non-constant: {term_to_str(arg)}",
            arg,
        )
    collected = prim.collected + (arg.value,)
    if len(collected) == prim.arity:
        return Const(prim.fn(*collected))
    return PrimOp(prim.name, prim.arity, prim.fn, collected)


@dataclass
class RunResult:
    """Outcome of :func:`run`."""

    value: Term
    steps: int
    rule_counts: dict[str, int]
    trace: list[Term] | None = None


def run(term: Term, max_steps: int = 100_000, keep_trace: bool = False) -> RunResult:
    """Rewrite ``term`` to a value.

    Raises :class:`StuckTermError` on stuck terms and
    :class:`StepBudgetExceeded` past ``max_steps``.
    """
    steps = 0
    rule_counts: dict[str, int] = {}
    trace: list[Term] | None = [term] if keep_trace else None
    while True:
        result = step(term)
        if result is None:
            return RunResult(term, steps, rule_counts, trace)
        term = result.term
        steps += 1
        rule_counts[result.rule] = rule_counts.get(result.rule, 0) + 1
        if trace is not None:
            trace.append(term)
        if steps > max_steps:
            raise StepBudgetExceeded(steps)
