"""The operational semantics of Section 6, executable.

A direct implementation of the paper's rewriting machine for the
λ-calculus extended with labeled expressions ``l : e`` and control
expressions ``e ↑ l``:

    C[(λx. e) v]        ⇒ C[e[x ← v]]                        (1)
    C[l : v]            ⇒ C[v]                               (2)
    C1[l : C2[e ↑ l]]   ⇒ C1[e (λx. l : C2[x])]              (3)
                          if l does not label C2
    C[spawn v]          ⇒ C[l : v (λx. x ↑ l)]               (spawn)
                          where l ∉ labels(C[v])

Two standard extensions make the language rich enough to express the
paper's example programs (the paper itself notes the semantics
"can be extended naturally to more complete languages"): δ-rules for
primitive constants (`+`, `*`, `zero?`, ...) and a call-by-value
``if``.  Both are orthogonal to the control rules.

:mod:`repro.semantics.machine_equiv` compiles the sequential fragment
of the core IR into terms so the rewriting system and the abstract
machine can be run differentially over the same programs.
"""

from repro.semantics.terms import (
    Term,
    Const,
    Var,
    Lam,
    App,
    If,
    Labeled,
    Control,
    SPAWN,
    PrimOp,
    is_value,
    labels_of,
    free_vars,
    substitute,
    term_to_str,
)
from repro.semantics.rewrite import (
    decompose,
    plug,
    step as rewrite_step,
    run as rewrite_run,
    RewriteResult,
)
from repro.semantics.machine_equiv import (
    compile_ir,
    compile_source,
    run_both,
    values_agree,
    SEM_PRIMS,
)

__all__ = [
    "Term",
    "Const",
    "Var",
    "Lam",
    "App",
    "If",
    "Labeled",
    "Control",
    "SPAWN",
    "PrimOp",
    "is_value",
    "labels_of",
    "free_vars",
    "substitute",
    "term_to_str",
    "decompose",
    "plug",
    "rewrite_step",
    "rewrite_run",
    "RewriteResult",
    "compile_ir",
    "compile_source",
    "SEM_PRIMS",
    "run_both",
    "values_agree",
]
