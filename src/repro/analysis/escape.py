"""Controller escape analysis.

For each textual ``(spawn (lambda (c) body))`` site the analysis
classifies how the controller ``c`` is used inside ``body``:

``unused``
    the controller is never referenced;
``confined``
    every reference is the operator of a direct application,
    syntactically inside the spawned procedure — control effects are
    provably limited to the spawn's dynamic extent;
``captured``
    some reference sits inside a nested ``lambda``; access to the
    controller may outlive the body's activation (whether it outlives
    the *process* depends on where that closure flows — e.g. the
    paper's ``spawn/exit`` hands a restricted closure to unknown code);
``escaping``
    the controller itself is used as a value (returned, passed as an
    argument, assigned) — anything may happen to it;
``opaque``
    ``spawn`` was applied to something other than a literal lambda, so
    nothing can be said about the controller.

The analysis is conservative: ``confined`` is a guarantee, the other
labels are "no guarantee".  Shadowing is handled (rebinding ``c``
stops the tracking in that scope).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.datum import Symbol, intern
from repro.ir import (
    App,
    Const,
    DefineTop,
    If,
    Lambda,
    Node,
    Pcall,
    Seq,
    SetBang,
    Var,
)

__all__ = ["SpawnSite", "analyze_spawns", "analyze_source", "spawn_report"]

_SPAWN = intern("spawn")


@dataclass
class SpawnSite:
    """One spawn occurrence and its controller's classification."""

    index: int
    controller: str | None  # parameter name, None when opaque
    classification: str  # unused | confined | captured | escaping | opaque
    direct_uses: int = 0
    captured_uses: int = 0
    value_uses: int = 0
    notes: list[str] = field(default_factory=list)

    def is_safe(self) -> bool:
        """True iff the controller provably cannot outlive its body's
        activation."""
        return self.classification in ("unused", "confined")


def analyze_spawns(nodes: list[Node]) -> list[SpawnSite]:
    """Find and classify every spawn site in a program."""
    sites: list[SpawnSite] = []
    for node in nodes:
        _walk(node, sites)
    return sites


def analyze_source(source: str) -> list[SpawnSite]:
    """Read + expand ``source``, then analyze it."""
    from repro.expander import ExpandEnv, expand_program
    from repro.reader import read_all

    return analyze_spawns(expand_program(read_all(source), ExpandEnv()))


def _walk(node: Node, sites: list[SpawnSite]) -> None:
    """Find spawn applications anywhere in ``node``."""
    if isinstance(node, App):
        if _is_spawn_var(node.fn) and len(node.args) == 1:
            site = _classify_site(node.args[0], len(sites))
            sites.append(site)
            # Continue inside the spawned procedure for nested spawns.
            _walk(node.args[0], sites)
            return
        _walk(node.fn, sites)
        for arg in node.args:
            _walk(arg, sites)
        return
    if isinstance(node, Lambda):
        _walk(node.body, sites)
    elif isinstance(node, If):
        _walk(node.test, sites)
        _walk(node.then, sites)
        _walk(node.els, sites)
    elif isinstance(node, (Seq, Pcall)):
        for expr in node.exprs:
            _walk(expr, sites)
    elif isinstance(node, (SetBang, DefineTop)):
        _walk(node.expr, sites)
    # Const / Var: leaves.


def _is_spawn_var(node: Node) -> bool:
    return isinstance(node, Var) and node.name is _SPAWN


def _classify_site(proc: Node, index: int) -> SpawnSite:
    if not isinstance(proc, Lambda) or len(proc.params) != 1 or proc.rest:
        return SpawnSite(
            index=index,
            controller=None,
            classification="opaque",
            notes=["spawn applied to a non-literal procedure"],
        )
    controller = proc.params[0]
    site = SpawnSite(index=index, controller=controller.name, classification="unused")
    _scan_uses(proc.body, controller, site, under_lambda=False)
    if site.value_uses:
        site.classification = "escaping"
    elif site.captured_uses:
        site.classification = "captured"
    elif site.direct_uses:
        site.classification = "confined"
    return site


def _scan_uses(
    node: Node, controller: Symbol, site: SpawnSite, under_lambda: bool
) -> None:
    """Count uses of ``controller`` in ``node``.

    ``under_lambda`` is True once we are inside a nested abstraction
    (whose activation may outlive the spawned body's).
    """
    if isinstance(node, Var):
        if node.name is controller:
            site.value_uses += 1
            site.notes.append("controller used as a value")
        return
    if isinstance(node, Const):
        return
    if isinstance(node, App):
        fn = node.fn
        if isinstance(fn, Var) and fn.name is controller:
            if under_lambda:
                site.captured_uses += 1
                site.notes.append(
                    "controller applied inside a nested lambda (access may "
                    "outlive the body's activation)"
                )
            else:
                site.direct_uses += 1
        else:
            _scan_uses(fn, controller, site, under_lambda)
        for arg in node.args:
            _scan_uses(arg, controller, site, under_lambda)
        return
    if isinstance(node, Lambda):
        if controller in node.params or node.rest is controller:
            return  # shadowed: tracking stops
        _scan_uses(node.body, controller, site, under_lambda=True)
        return
    if isinstance(node, If):
        _scan_uses(node.test, controller, site, under_lambda)
        _scan_uses(node.then, controller, site, under_lambda)
        _scan_uses(node.els, controller, site, under_lambda)
        return
    if isinstance(node, (Seq, Pcall)):
        for expr in node.exprs:
            _scan_uses(expr, controller, site, under_lambda)
        return
    if isinstance(node, SetBang):
        # Assigning *to* the controller name rebinds the variable the
        # analysis tracks; assigning the controller anywhere is a value
        # flow, handled by the Var case in node.expr.
        if node.name is controller:
            site.notes.append("controller variable reassigned (set!)")
        _scan_uses(node.expr, controller, site, under_lambda)
        return
    if isinstance(node, DefineTop):  # pragma: no cover - not in bodies
        _scan_uses(node.expr, controller, site, under_lambda)
        return
    raise TypeError(f"unknown IR node: {node!r}")  # pragma: no cover


def spawn_report(source: str) -> str:
    """A human-readable report for every spawn site of ``source``."""
    sites = analyze_source(source)
    if not sites:
        return "no spawn sites"
    lines = []
    for site in sites:
        name = site.controller or "?"
        lines.append(
            f"spawn #{site.index} (controller {name}): {site.classification}"
            f"  [direct={site.direct_uses} captured={site.captured_uses}"
            f" value={site.value_uses}]"
        )
        for note in dict.fromkeys(site.notes):  # dedupe, keep order
            lines.append(f"    - {note}")
    return "\n".join(lines)
