"""Controller escape analysis.

For each textual ``(spawn (lambda (c) body))`` site the analysis
classifies how the controller ``c`` is used inside ``body``:

``unused``
    the controller is never referenced;
``confined``
    every reference is the operator of a direct application,
    syntactically inside the spawned procedure — control effects are
    provably limited to the spawn's dynamic extent;
``captured``
    some reference sits inside a nested ``lambda``; access to the
    controller may outlive the body's activation (whether it outlives
    the *process* depends on where that closure flows — e.g. the
    paper's ``spawn/exit`` hands a restricted closure to unknown code);
``escaping``
    the controller itself is used as a value (returned, passed as an
    argument, assigned) — anything may happen to it;
``opaque``
    ``spawn`` was applied to something other than a literal lambda, so
    nothing can be said about the controller.

The analysis is conservative: ``confined`` is a guarantee, the other
labels are "no guarantee".  Shadowing is handled (rebinding ``c``
stops the tracking in that scope).

Both IR dialects are supported: pre-resolution trees (``Var`` /
``SetBang``) are tracked by controller *name*, resolved trees
(``LocalRef`` / ``GlobalRef`` / ``LocalSet`` / ``GlobalSet``) by the
controller's slot *address* — depth 0, index 0 inside the spawned
procedure, shifted by one per enclosing rib.  A ``(pcall spawn proc)``
fork counts as a spawn site too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.datum import Symbol, intern
from repro.ir import (
    App,
    Const,
    DefineTop,
    GlobalRef,
    GlobalSet,
    If,
    Lambda,
    LocalRef,
    LocalSet,
    Node,
    Pcall,
    Seq,
    SetBang,
    Var,
)

__all__ = ["SpawnSite", "analyze_spawns", "analyze_source", "spawn_report"]

_SPAWN = intern("spawn")


@dataclass
class SpawnSite:
    """One spawn occurrence and its controller's classification."""

    index: int
    controller: str | None  # parameter name, None when opaque
    classification: str  # unused | confined | captured | escaping | opaque
    direct_uses: int = 0
    captured_uses: int = 0
    value_uses: int = 0
    notes: list[str] = field(default_factory=list)
    #: The ``spawn`` reference node (operator of the site), letting the
    #: effect phase attribute the site to its enclosing lambdas without
    #: re-walking their bodies.
    ref: Any = field(default=None, repr=False, compare=False)

    def is_safe(self) -> bool:
        """True iff the controller provably cannot outlive its body's
        activation."""
        return self.classification in ("unused", "confined")


def analyze_spawns(nodes: list[Node]) -> list[SpawnSite]:
    """Find and classify every spawn site in a program."""
    sites: list[SpawnSite] = []
    for node in nodes:
        _walk(node, sites)
    return sites


def analyze_source(source: str) -> list[SpawnSite]:
    """Read + expand ``source``, then analyze it."""
    from repro.expander import ExpandEnv, expand_program
    from repro.reader import read_all

    return analyze_spawns(expand_program(read_all(source), ExpandEnv()))


# References and constants cannot contain a spawn application; the
# walk skips them without a call.
_LEAVES = frozenset({Const, Var, LocalRef, GlobalRef})


def _walk(node: Node, sites: list[SpawnSite]) -> None:
    """Find spawn applications anywhere in ``node``."""
    k = type(node)
    if k is App:
        if _is_spawn_ref(node.fn) and len(node.args) == 1:
            site = _classify_site(node.args[0], len(sites))
            site.ref = node.fn
            sites.append(site)
            # Continue inside the spawned procedure for nested spawns.
            _walk(node.args[0], sites)
            return
        if type(node.fn) not in _LEAVES:
            _walk(node.fn, sites)
        for arg in node.args:
            if type(arg) not in _LEAVES:
                _walk(arg, sites)
        return
    if k is Lambda:
        _walk(node.body, sites)
    elif k is If:
        for sub in (node.test, node.then, node.els):
            if type(sub) not in _LEAVES:
                _walk(sub, sites)
    elif k is Seq or k is Pcall:
        # ``(pcall spawn proc)`` forks the operator/operand evaluations
        # but still ends in a spawn application: a spawn site.
        if k is Pcall and len(node.exprs) == 2 and _is_spawn_ref(node.exprs[0]):
            site = _classify_site(node.exprs[1], len(sites))
            site.ref = node.exprs[0]
            sites.append(site)
        for expr in node.exprs:
            if type(expr) not in _LEAVES:
                _walk(expr, sites)
    elif k is SetBang or k is DefineTop or k is LocalSet or k is GlobalSet:
        _walk(node.expr, sites)
    # Const / Var / LocalRef / GlobalRef: leaves.


def _is_spawn_ref(node: Node) -> bool:
    if isinstance(node, Var):
        return node.name is _SPAWN
    if isinstance(node, GlobalRef):
        return node.cell.name is _SPAWN
    return False


def _classify_site(proc: Node, index: int) -> SpawnSite:
    if not isinstance(proc, Lambda) or len(proc.params) != 1 or proc.rest:
        return SpawnSite(
            index=index,
            controller=None,
            classification="opaque",
            notes=["spawn applied to a non-literal procedure"],
        )
    controller = proc.params[0]
    site = SpawnSite(index=index, controller=controller.name, classification="unused")
    if proc.nslots is None:
        _scan_uses(proc.body, controller, site, under_lambda=False)
    else:
        # Resolved body: the controller is slot 0 of the spawned
        # procedure's rib; track it by (depth, index) address.
        _scan_uses_resolved(proc.body, 0, site, under_lambda=False)
    if site.value_uses:
        site.classification = "escaping"
    elif site.captured_uses:
        site.classification = "captured"
    elif site.direct_uses:
        site.classification = "confined"
    return site


def _scan_uses(
    node: Node, controller: Symbol, site: SpawnSite, under_lambda: bool
) -> None:
    """Count uses of ``controller`` in ``node``.

    ``under_lambda`` is True once we are inside a nested abstraction
    (whose activation may outlive the spawned body's).
    """
    if isinstance(node, Var):
        if node.name is controller:
            site.value_uses += 1
            site.notes.append("controller used as a value")
        return
    if isinstance(node, Const):
        return
    if isinstance(node, App):
        fn = node.fn
        if isinstance(fn, Var) and fn.name is controller:
            if under_lambda:
                site.captured_uses += 1
                site.notes.append(
                    "controller applied inside a nested lambda (access may "
                    "outlive the body's activation)"
                )
            else:
                site.direct_uses += 1
        else:
            _scan_uses(fn, controller, site, under_lambda)
        for arg in node.args:
            _scan_uses(arg, controller, site, under_lambda)
        return
    if isinstance(node, Lambda):
        if controller in node.params or node.rest is controller:
            return  # shadowed: tracking stops
        _scan_uses(node.body, controller, site, under_lambda=True)
        return
    if isinstance(node, If):
        _scan_uses(node.test, controller, site, under_lambda)
        _scan_uses(node.then, controller, site, under_lambda)
        _scan_uses(node.els, controller, site, under_lambda)
        return
    if isinstance(node, (Seq, Pcall)):
        for expr in node.exprs:
            _scan_uses(expr, controller, site, under_lambda)
        return
    if isinstance(node, SetBang):
        # Assigning *to* the controller name rebinds the variable the
        # analysis tracks; assigning the controller anywhere is a value
        # flow, handled by the Var case in node.expr.
        if node.name is controller:
            site.notes.append("controller variable reassigned (set!)")
        _scan_uses(node.expr, controller, site, under_lambda)
        return
    if isinstance(node, DefineTop):  # pragma: no cover - not in bodies
        _scan_uses(node.expr, controller, site, under_lambda)
        return
    raise TypeError(f"unknown IR node: {node!r}")  # pragma: no cover


def _scan_uses_resolved(
    node: Node, depth: int, site: SpawnSite, under_lambda: bool
) -> None:
    """Resolved-IR twin of :func:`_scan_uses`.

    ``depth`` is the controller's rib distance from the current scope
    (its address is ``(depth, 0)``).  Exact addressing makes shadowing
    a non-issue: a rebinding lives in its own rib, so its references
    can never collide with the controller's address.
    """
    k = type(node)
    if k is LocalRef:
        if node.depth == depth and node.index == 0:
            site.value_uses += 1
            site.notes.append("controller used as a value")
        return
    if k is Const or k is GlobalRef or k is Var:
        return
    if k is App:
        fn = node.fn
        if type(fn) is LocalRef and fn.depth == depth and fn.index == 0:
            if under_lambda:
                site.captured_uses += 1
                site.notes.append(
                    "controller applied inside a nested lambda (access may "
                    "outlive the body's activation)"
                )
            else:
                site.direct_uses += 1
        else:
            _scan_uses_resolved(fn, depth, site, under_lambda)
        for arg in node.args:
            _scan_uses_resolved(arg, depth, site, under_lambda)
        return
    if k is Lambda:
        # Zero-slot lambdas allocate no rib at runtime, so they do not
        # shift the controller's address — but they are still nested
        # abstractions whose activation may outlive the body's.
        inner = depth + 1 if node.nslots else depth
        _scan_uses_resolved(node.body, inner, site, under_lambda=True)
        return
    if k is If:
        _scan_uses_resolved(node.test, depth, site, under_lambda)
        _scan_uses_resolved(node.then, depth, site, under_lambda)
        _scan_uses_resolved(node.els, depth, site, under_lambda)
        return
    if k is Seq or k is Pcall:
        for expr in node.exprs:
            _scan_uses_resolved(expr, depth, site, under_lambda)
        return
    if k is LocalSet:
        if node.depth == depth and node.index == 0:
            site.notes.append("controller variable reassigned (set!)")
        _scan_uses_resolved(node.expr, depth, site, under_lambda)
        return
    if k is GlobalSet or k is DefineTop or k is SetBang:
        _scan_uses_resolved(node.expr, depth, site, under_lambda)
        return
    raise TypeError(f"unknown IR node: {node!r}")  # pragma: no cover


def spawn_report(source: str) -> str:
    """A human-readable report for every spawn site of ``source``."""
    sites = analyze_source(source)
    if not sites:
        return "no spawn sites"
    lines = []
    for site in sites:
        name = site.controller or "?"
        lines.append(
            f"spawn #{site.index} (controller {name}): {site.classification}"
            f"  [direct={site.direct_uses} captured={site.captured_uses}"
            f" value={site.value_uses}]"
        )
        for note in dict.fromkeys(site.notes):  # dedupe, keep order
            lines.append(f"    - {note}")
    return "\n".join(lines)
