"""Capture/effect analysis — a compiler phase over resolved IR.

This module promotes ``repro.analysis`` from the spawn-site heuristic in
:mod:`repro.analysis.escape` into a real phase that runs between the
resolver and the compiler.  For every lambda (and every top-level form)
it computes four conservative facts:

``capture_free``
    Evaluation can never capture a continuation: no ``call/cc``,
    ``call/cc-leaf``, ``spawn`` controller, ``fcontrol``/``F``,
    ``call-with-prompt`` or engine can fire anywhere in the evaluation,
    including through every procedure that can be applied.

``spawn_free``
    Evaluation can never create, resume or wait on a sibling task: no
    ``pcall`` fork, ``future``/``touch``, ``spawn`` or engine runs.
    Together with ``capture_free`` this proves the evaluation is
    *single-task forever* — the fact the run loops exploit.

``controller_confined``
    Every ``(spawn (lambda (c) ...))`` site lexically inside the lambda
    has a safe classification per :mod:`repro.analysis.escape`: the
    controller is unused or used only in direct application position,
    never smuggled out as a value.  Trivially true when there are no
    spawn sites.

``known_total``
    Evaluation provably halts (normally or with a raised Scheme error)
    in a bounded number of steps: no recursion through any applied
    binding, only primitives applied.  This is a least-fixpoint fact —
    ``(define (loop) (loop))`` is *not* known-total.

The phase has two faces:

* :func:`annotate_program` — the descriptive pass run by
  ``Session.submit`` after resolution.  It stamps an interned
  :class:`EffectInfo` onto every ``Lambda`` node (closures created from
  those lambdas carry the facts at runtime and through the snapshot
  codec) and returns a :class:`ProgramReport` used to tag the request
  pure / capture-heavy / spawning for host scheduling, the REPL
  ``,analyze`` command and ``analysis.*`` stats.

* :func:`single_task_form` — the authoritative validator consulted at
  the moment a form is about to start running.  Annotation facts can go
  stale (an earlier form may redefine a global the facts relied on), so
  the scheduler-facing decision re-walks the form against the *current*
  global cell values.  Between that walk and the end of the form nothing
  foreign can run (the session grants only when the machine has no
  parked futures and no waiting tasks), and self-mutation is rejected by
  tracking the cells the form itself assigns.  See docs/ANALYSIS.md for
  the full soundness argument.

Facts are *derived* data: ``EffectInfo`` is excluded from IR equality
and from the ``ir-hash-v1`` digest, exactly like resolver slot counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from collections import deque

from repro.analysis.escape import SpawnSite, analyze_spawns
from repro.datum import intern
from repro.ir.nodes import (
    App,
    Const,
    DefineTop,
    GlobalRef,
    GlobalSet,
    If,
    Lambda,
    LocalRef,
    LocalSet,
    Node,
    Pcall,
    Seq,
    SetBang,
    Var,
)
from repro.machine.environment import UNBOUND
from repro.machine.values import Closure, ControlPrimitive, MachineApplicable, Primitive

__all__ = [
    "EffectInfo",
    "FormFacts",
    "ProgramReport",
    "AnalysisStats",
    "GRANT_QUANTUM",
    "annotate_program",
    "single_task_form",
    "analyze",
]

#: Quantum granted to a form proven single-task (capture-free and
#: spawn-free): with exactly one runnable task, rotation is a no-op, so
#: a larger batch executes the identical step sequence while paying the
#: spill→delegate→reload boundary 1/256th as often at quantum 16.
GRANT_QUANTUM = 4096

# Control primitives that can capture a continuation when applied.  Any
# of these anywhere in an evaluation kills ``capture_free``.
CAPTURING_PRIMITIVES = frozenset(
    {
        "spawn",
        "call/cc",
        "call-with-current-continuation",
        "call/cc-leaf",
        "F",
        "fcontrol",
        "call-with-prompt",
        "make-engine",
        "engine-run",
    }
)

# Control primitives that create, resume or wait on tasks.  Any of
# these (or a ``pcall`` node) kills ``spawn_free``.
SPAWNING_PRIMITIVES = frozenset(
    {
        "spawn",
        "future",
        "touch",
        "make-engine",
        "engine-run",
    }
)

# Control primitives that are pure predicates/accessors: they only set
# the calling task's value register (``placeholder?``, ``future-done?``,
# ``engine?``, ``engine-mileage``).  Safe on every axis.
SAFE_CONTROL_PRIMITIVES = frozenset(
    {
        "placeholder?",
        "future-done?",
        "engine?",
        "engine-mileage",
    }
)


class EffectInfo:
    """Interned, immutable capture/effect facts for one lambda.

    Sixteen instances exist per process (one per fact combination);
    equality is identity.  ``bits`` is the packed form the snapshot
    codec writes (``capture_free | spawn_free<<1 | controller_confined
    <<2 | known_total<<3``).
    """

    __slots__ = ("capture_free", "spawn_free", "controller_confined", "known_total", "bits")

    _INTERNED: list["EffectInfo | None"] = [None] * 16

    def __new__(
        cls,
        capture_free: bool = False,
        spawn_free: bool = False,
        controller_confined: bool = False,
        known_total: bool = False,
    ) -> "EffectInfo":
        bits = (
            (1 if capture_free else 0)
            | (2 if spawn_free else 0)
            | (4 if controller_confined else 0)
            | (8 if known_total else 0)
        )
        cached = cls._INTERNED[bits]
        if cached is not None:
            return cached
        self = object.__new__(cls)
        object.__setattr__(self, "capture_free", bool(capture_free))
        object.__setattr__(self, "spawn_free", bool(spawn_free))
        object.__setattr__(self, "controller_confined", bool(controller_confined))
        object.__setattr__(self, "known_total", bool(known_total))
        object.__setattr__(self, "bits", bits)
        cls._INTERNED[bits] = self
        return self

    @classmethod
    def from_bits(cls, bits: int) -> "EffectInfo":
        return cls(bool(bits & 1), bool(bits & 2), bool(bits & 4), bool(bits & 8))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("EffectInfo is immutable")

    def __repr__(self) -> str:
        flags = []
        if self.capture_free:
            flags.append("capture-free")
        if self.spawn_free:
            flags.append("spawn-free")
        if self.controller_confined:
            flags.append("controller-confined")
        if self.known_total:
            flags.append("known-total")
        return f"EffectInfo({', '.join(flags) if flags else 'bottom'})"


@dataclass
class AnalysisStats:
    """Counters for the analysis phase, merged into ``Session.stats``
    under the ``analysis.`` namespace (mirrors ``ResolverStats``)."""

    #: Top-level forms analyzed (prelude included).
    forms: int = 0
    #: Lambda nodes stamped with an :class:`EffectInfo`.
    lambdas: int = 0
    #: Of those, how many proved capture-free / spawn-free / known-total.
    capture_free: int = 0
    spawn_free: int = 0
    known_total: int = 0
    #: Spawn sites seen across analyzed forms.
    spawn_sites: int = 0
    #: Worklist recomputations of program-local defines (each is one
    #: walk of that define's body under the current assumptions).
    fixpoint_passes: int = 0
    #: Forms granted an enlarged quantum by the pump-time validator.
    grants: int = 0

    # Field order is the snapshot codec's wire order for the stats tuple.
    _FIELDS = (
        "forms",
        "lambdas",
        "capture_free",
        "spawn_free",
        "known_total",
        "spawn_sites",
        "fixpoint_passes",
        "grants",
    )

    def as_dict(self) -> dict[str, int]:
        # Prefixed like ResolverStats.as_dict, so Session.stats can both
        # namespace them (``analysis.forms``) and keep a flat alias
        # (``analysis_forms``) without colliding with machine counters.
        return {f"analysis_{name}": getattr(self, name) for name in self._FIELDS}


@dataclass
class FormFacts:
    """Facts for one top-level form of an analyzed program."""

    index: int
    effects: EffectInfo
    spawn_sites: int
    tag: str  # "pure" | "capture-heavy" | "spawning"


@dataclass
class ProgramReport:
    """What :func:`analyze` returns: per-form facts plus the program
    classification ``Session.submit`` tags requests with."""

    forms: list[FormFacts] = field(default_factory=list)
    spawn_sites: list[SpawnSite] = field(default_factory=list)
    lambdas: int = 0
    classification: str = "pure"

    def summary(self) -> str:
        lines = [
            f"classification: {self.classification}"
            f" ({len(self.forms)} form(s), {self.lambdas} lambda(s),"
            f" {len(self.spawn_sites)} spawn site(s))"
        ]
        for form in self.forms:
            lines.append(f"  form {form.index}: {form.tag:13s} {form.effects!r}")
        return "\n".join(lines)


# Fact triples used internally: (capture_free, spawn_free, known_total).
# ``controller_confined`` is computed separately (it is per-lambda
# lexical, not transitive).
_TOP = (True, True, True)
_BOTTOM = (False, False, False)

_SPAWN_RANK = {"pure": 0, "unknown": 1, "capture-heavy": 2, "spawning": 3}

# Node types whose evaluation is trivially effect-free (TOP).
_LEAF_TYPES = frozenset({Const, LocalRef, GlobalRef, Var})


def _meet(a: tuple, b: tuple) -> tuple:
    if a is b or b is _TOP:
        return a
    if a is _TOP:
        return b
    return (a[0] and b[0], a[1] and b[1], a[2] and b[2])


def _control_facts(name: str) -> tuple:
    if name in SAFE_CONTROL_PRIMITIVES:
        return _TOP
    known = name in CAPTURING_PRIMITIVES or name in SPAWNING_PRIMITIVES
    if not known:
        # A control primitive this table has never heard of: assume the
        # worst on every axis.
        return _BOTTOM
    return (name not in CAPTURING_PRIMITIVES, name not in SPAWNING_PRIMITIVES, False)


def _value_facts(value: Any) -> tuple:
    """Facts for applying a runtime value fetched from a global cell."""
    if isinstance(value, Primitive):
        # Plain Python functions: no machine access, terminate (possibly
        # by raising a Scheme error).
        return _TOP
    if isinstance(value, Closure):
        eff = value.effects
        if eff is None:
            return _BOTTOM
        return (eff.capture_free, eff.spawn_free, eff.known_total)
    if isinstance(value, ControlPrimitive):
        return _control_facts(value.name)
    if isinstance(value, MachineApplicable):
        return _BOTTOM
    # UNBOUND or a non-applicable value: the application raises before
    # any control effect can happen, which halts the evaluation.
    return _TOP


_SPAWN_NAME = intern("spawn")


class _ExitLambda:
    """Prepass stack marker: closes the lambda pushed just before it."""


_EXIT = _ExitLambda()


class _Analyzer:
    """One :func:`annotate_program` run over a resolved program."""

    def __init__(self, globals_: Any, stats: AnalysisStats) -> None:
        self.globals = globals_
        self.stats = stats
        # Program-local (define name (lambda ...)) bindings: cell -> lambdas.
        self.defined: dict[Any, list[Lambda]] = {}
        # Cells assigned by set! anywhere in the program, or defined to a
        # non-lambda: applying through them is bottom.
        self.untrusted: set[Any] = set()
        # Current fixpoint assumption per program-local define.
        self.assumed: dict[Any, tuple] = {}
        # Memo of lambda body facts, keyed by id(lambda).  Entries are
        # only ever valid under the current assumptions; the worklist
        # invalidates a cell's entries (see ``owned``) before
        # recomputing it.
        self.memo: dict[int, tuple] = {}
        # Every lambda node seen, for the final stamping pass.
        self.lambdas: dict[int, Lambda] = {}
        # cell -> cells whose walks read its assumption (reverse deps:
        # when a cell's facts change, these must be recomputed).
        self.deps: dict[Any, set[Any]] = {}
        # cell -> memo keys its last walk created (its lexical subtree;
        # lambdas are trees, so ownership is unique).
        self.owned: dict[Any, list[int]] = {}
        # The cell currently being recomputed (None outside the
        # fixpoint): the target of dep edges and owned keys.
        self._cell: Any = None
        # Spawn containment, filled by the prepass: for every ``spawn``
        # reference node, the lambdas lexically enclosing it (so sites
        # can be attributed to lambdas without re-walking bodies), and a
        # per-form flag gating the escape analyzer entirely.
        self.ref_lams: dict[int, tuple] = {}
        self.form_spawn: list[bool] = []

    # -- prepass -------------------------------------------------------------

    def prepass(self, nodes: list[Node]) -> None:
        """One walk per form collecting three things at once: the
        program-local defines and the untrusted (assigned) cells, and
        spawn containment — for every ``spawn`` reference, the lambdas
        enclosing it (and a per-form flag), so the escape analyzer runs
        once per spawning form and never re-walks lambda bodies."""
        cells = self.globals.cells
        ref_lams = self.ref_lams
        for node in nodes:
            stack: list[Any] = [node]
            lam_stack: list[Lambda] = []
            found_in_form = False
            while stack:
                n = stack.pop()
                k = type(n)
                # Ordered by rough frequency: leaves first.
                if k is LocalRef or k is Const:
                    pass
                elif k is GlobalRef:
                    if n.cell.name is _SPAWN_NAME:
                        found_in_form = True
                        ref_lams[id(n)] = tuple(lam_stack)
                elif k is Var:
                    if n.name is _SPAWN_NAME:
                        found_in_form = True
                        ref_lams[id(n)] = tuple(lam_stack)
                elif k is App:
                    stack.append(n.fn)
                    stack.extend(n.args)
                elif k is _ExitLambda:
                    lam_stack.pop()
                elif k is Lambda:
                    lam_stack.append(n)
                    stack.append(_EXIT)
                    stack.append(n.body)
                elif k is If:
                    stack.append(n.test)
                    stack.append(n.then)
                    stack.append(n.els)
                elif k is Seq or k is Pcall:
                    stack.extend(n.exprs)
                elif k is DefineTop:
                    cell = cells.get(n.name)
                    if cell is not None:
                        if type(n.expr) is Lambda:
                            self.defined.setdefault(cell, []).append(n.expr)
                        else:
                            self.untrusted.add(cell)
                    stack.append(n.expr)
                elif k is GlobalSet:
                    self.untrusted.add(n.cell)
                    stack.append(n.expr)
                elif k is SetBang:
                    cell = cells.get(n.name)
                    if cell is not None:
                        self.untrusted.add(cell)
                    stack.append(n.expr)
                elif k is LocalSet:
                    stack.append(n.expr)
            self.form_spawn.append(found_in_form)

        for cell, lams in self.defined.items():
            if cell in self.untrusted:
                continue
            prior = _TOP if cell.value is UNBOUND else _value_facts(cell.value)
            # Safety facts start optimistic (greatest fixpoint: recursion
            # like fib stays capture-free); the termination fact starts
            # pessimistic (least fixpoint: self-loops never prove total).
            self.assumed[cell] = (prior[0], prior[1], False)

    # -- fixpoint ------------------------------------------------------------

    def fixpoint(self) -> None:
        """Dependency-driven worklist over the program-local defines.

        Each cell's body is walked once, then again only when an
        assumption it actually read changes — instead of re-walking
        every body on every chaotic-iteration pass.  Safety facts
        descend and ``known_total`` ascends monotonically, so the
        iteration terminates; the budget is a backstop whose exhaustion
        can only leave *advisory* stamps optimistic (scheduling grants
        never read stamps — :func:`single_task_form` re-walks).
        """
        items = {
            cell: (lams, _TOP if cell.value is UNBOUND else _value_facts(cell.value))
            for cell, lams in self.defined.items()
            if cell not in self.untrusted
        }
        if not items:
            return
        pending = deque(items)
        queued = set(pending)
        budget = max(64, 8 * len(items))
        while pending and budget:
            budget -= 1
            cell = pending.popleft()
            queued.discard(cell)
            self.stats.fixpoint_passes += 1
            for key in self.owned.get(cell, ()):
                self.memo.pop(key, None)
            self._cell = cell
            self.owned[cell] = []
            lams, prior = items[cell]
            facts = prior
            for lam in lams:
                facts = _meet(facts, self.lambda_facts(lam))
            self._cell = None
            if facts != self.assumed[cell]:
                self.assumed[cell] = facts
                for dep in self.deps.get(cell, ()):
                    if dep in items and dep not in queued:
                        pending.append(dep)
                        queued.add(dep)

    # -- transfer functions --------------------------------------------------

    def lambda_facts(self, lam: Lambda) -> tuple:
        key = id(lam)
        got = self.memo.get(key)
        if got is not None:
            return got
        self.lambdas[key] = lam
        facts = self.eval_facts(lam.body)
        self.memo[key] = facts
        if self._cell is not None:
            self.owned[self._cell].append(key)
        return facts

    def apply_facts(self, fn: Any) -> tuple:
        """Facts for *applying* the operator expression ``fn``."""
        k = type(fn)
        if k is Lambda:
            return self.lambda_facts(fn)
        if k is GlobalRef:
            cell = fn.cell
            if cell in self.untrusted:
                return _BOTTOM
            got = self.assumed.get(cell)
            if got is not None:
                if self._cell is not None:
                    self.deps.setdefault(cell, set()).add(self._cell)
                return got
            return _value_facts(cell.value)
        if k is Var:
            cell = self.globals.cells.get(fn.name)
            if cell is None or cell in self.untrusted:
                return _BOTTOM
            got = self.assumed.get(cell)
            if got is not None:
                if self._cell is not None:
                    self.deps.setdefault(cell, set()).add(self._cell)
                return got
            return _value_facts(cell.value)
        # LocalRef or a computed operator: could be any procedure.
        return _BOTTOM

    def eval_facts(self, node: Any) -> tuple:
        k = type(node)
        # References and constants evaluate without control effects, so
        # the sub-walks below skip them instead of meeting with TOP.
        leaf = _LEAF_TYPES
        if k is App:
            fn = node.fn
            kf = type(fn)
            if kf is GlobalRef:
                # Inlined common case of :meth:`apply_facts`.
                cell = fn.cell
                if cell in self.untrusted:
                    facts = _BOTTOM
                else:
                    facts = self.assumed.get(cell)
                    if facts is not None:
                        if self._cell is not None:
                            self.deps.setdefault(cell, set()).add(self._cell)
                    else:
                        facts = _value_facts(cell.value)
            else:
                facts = self.apply_facts(fn)
                if kf not in leaf:
                    facts = _meet(facts, self.eval_facts(fn))
            for arg in node.args:
                if type(arg) not in leaf:
                    facts = _meet(facts, self.eval_facts(arg))
            return facts
        if k in leaf:
            return _TOP
        if k is Lambda:
            # Creating a closure is effect-free; still walk the body so
            # the lambda gets registered (and stamped later).
            self.lambda_facts(node)
            return _TOP
        if k is If:
            facts = _TOP
            for sub in (node.test, node.then, node.els):
                if type(sub) not in leaf:
                    facts = _meet(facts, self.eval_facts(sub))
            return facts
        if k is Seq:
            facts = _TOP
            for expr in node.exprs:
                if type(expr) not in leaf:
                    facts = _meet(facts, self.eval_facts(expr))
            return facts
        if k is Pcall:
            facts = _TOP
            if node.exprs:
                facts = self.apply_facts(node.exprs[0])
            for expr in node.exprs:
                if type(expr) not in leaf:
                    facts = _meet(facts, self.eval_facts(expr))
            # The fork itself creates sibling tasks.
            return (facts[0], False, facts[2])
        if k is LocalSet or k is GlobalSet or k is SetBang or k is DefineTop:
            return self.eval_facts(node.expr)
        return _BOTTOM


def _classify(facts: tuple, n_sites: int) -> str:
    if not facts[1] or n_sites:
        return "spawning"
    if not facts[0]:
        return "capture-heavy"
    return "pure"


def annotate_program(
    nodes: list[Node], globals_: Any, stats: AnalysisStats | None = None
) -> ProgramReport:
    """Analyze a resolved program, stamping facts onto its lambdas.

    Mutates every ``Lambda`` in ``nodes`` in place (sets its ``effects``
    field to an interned :class:`EffectInfo`) and returns a
    :class:`ProgramReport`.  The report is *descriptive*: it reflects
    global cell values at annotation time and is used for request
    tagging and observability, never directly for scheduling grants
    (see :func:`single_task_form`).
    """
    if stats is None:
        stats = AnalysisStats()
    analyzer = _Analyzer(globals_, stats)
    analyzer.prepass(nodes)
    analyzer.fixpoint()

    # Final pass with the converged assumptions: per-form facts (also
    # registers every lambda reachable from the forms).  Memo entries
    # from the fixpoint carry over — after the worklist drains they are
    # exactly the converged facts, so define bodies are not re-walked.
    report = ProgramReport()
    unsafe_lams: set[int] = set()
    for index, node in enumerate(nodes):
        facts = analyzer.eval_facts(node)
        sites = analyze_spawns([node]) if analyzer.form_spawn[index] else []
        stats.forms += 1
        stats.spawn_sites += len(sites)
        report.spawn_sites.extend(sites)
        confined = True
        for site in sites:
            if not site.is_safe():
                confined = False
                # Every lambda lexically enclosing the unsafe site loses
                # ``controller_confined`` (attribution via the prepass).
                unsafe_lams.update(
                    id(lam) for lam in analyzer.ref_lams.get(id(site.ref), ())
                )
        effects = EffectInfo(facts[0], facts[1], confined, facts[2])
        report.forms.append(
            FormFacts(index=index, effects=effects, spawn_sites=len(sites), tag=_classify(facts, len(sites)))
        )

    # Stamp every registered lambda.  A lambda is controller-confined
    # unless an unsafe spawn site sits lexically inside it (trivially
    # confined when it contains no spawn at all).
    stamp = object.__setattr__
    memo = analyzer.memo
    n_capture = n_spawn = n_total = 0
    for key, lam in analyzer.lambdas.items():
        facts = memo.get(key)
        if facts is None:
            facts = analyzer.lambda_facts(lam)
        info = EffectInfo(facts[0], facts[1], key not in unsafe_lams, facts[2])
        stamp(lam, "effects", info)
        if facts[0]:
            n_capture += 1
        if facts[1]:
            n_spawn += 1
        if facts[2]:
            n_total += 1
    report.lambdas = len(analyzer.lambdas)
    stats.lambdas += report.lambdas
    stats.capture_free += n_capture
    stats.spawn_free += n_spawn
    stats.known_total += n_total

    worst = "pure"
    for form in report.forms:
        if _SPAWN_RANK[form.tag] > _SPAWN_RANK[worst]:
            worst = form.tag
    report.classification = worst
    return report


def single_task_form(node: Any, globals_: Any, *, max_nodes: int = 20000) -> bool:
    """Decide, against *current* global cell values, whether evaluating
    ``node`` is provably single-task forever (capture-free and
    spawn-free through every procedure that can be applied).

    This is the authoritative pump-time check backing quantum grants.
    It is independent of annotation (facts stamped at submit time can go
    stale if an earlier form redefined a global) and closes the
    self-mutation hole by rejecting any form that assigns a cell it also
    applies through.  Compiled code thunks are unwrapped to their source
    nodes via their ``node`` attribute.
    """
    root = getattr(node, "node", node)
    seen: set[int] = {id(root)}
    stack: list[Any] = [root]
    applied: list[Any] = []
    mutated: set[Any] = set()
    visited = 0
    while stack:
        n = stack.pop()
        visited += 1
        if visited > max_nodes:
            return False
        k = type(n)
        if k is Const or k is LocalRef or k is GlobalRef:
            continue
        if k is Lambda:
            # Value position: a closure that can only be applied through
            # a LocalRef or computed operator, both of which bottom out
            # below — so an escaping lambda can never be applied inside
            # a granted form without the walk rejecting the apply site.
            continue
        if k is App:
            stack.extend(n.args)
            fn = n.fn
            if type(fn) is Lambda:
                stack.append(fn.body)
            elif type(fn) is GlobalRef:
                cell = fn.cell
                value = cell.value
                if isinstance(value, Closure):
                    applied.append(cell)
                    body = getattr(value.body, "node", value.body)
                    if id(body) not in seen:
                        seen.add(id(body))
                        stack.append(body)
                elif isinstance(value, Primitive):
                    applied.append(cell)
                elif isinstance(value, ControlPrimitive):
                    if value.name not in SAFE_CONTROL_PRIMITIVES:
                        return False
                    applied.append(cell)
                elif isinstance(value, MachineApplicable):
                    return False
                else:
                    # UNBOUND / non-applicable: the apply raises, which
                    # halts the (single) task.  Still track the cell —
                    # the form could define it first.
                    applied.append(cell)
            else:
                # Computed operator (or a dict-dialect Var): unknown
                # procedure, no proof.
                return False
            continue
        if k is If:
            stack.append(n.test)
            stack.append(n.then)
            stack.append(n.els)
            continue
        if k is Seq:
            stack.extend(n.exprs)
            continue
        if k is LocalSet:
            stack.append(n.expr)
            continue
        if k is GlobalSet:
            mutated.add(n.cell)
            stack.append(n.expr)
            continue
        if k is DefineTop:
            cell = globals_.cells.get(n.name)
            if cell is not None:
                mutated.add(cell)
            stack.append(n.expr)
            continue
        # Pcall forks tasks; Var/SetBang mean the unresolved dialect;
        # anything else is unknown.  All refuse the grant.
        return False
    if mutated:
        for cell in applied:
            if cell in mutated:
                return False
    return True


_SCRATCH_SESSION: Any = None


def _scratch_session() -> Any:
    """A lazily-built resolved-engine session (prelude loaded) that
    :func:`analyze` uses when no live session is supplied."""
    global _SCRATCH_SESSION
    if _SCRATCH_SESSION is None:
        from repro.host.session import Session

        _SCRATCH_SESSION = Session(name="analysis-scratch", engine="resolved")
    return _SCRATCH_SESSION


def analyze(source: str, *, session: Any = None) -> ProgramReport:
    """Analyze ``source`` and return a :class:`ProgramReport`.

    With ``session=`` the program is expanded with (a copy of) that
    session's macros and analyzed against its live globals — the same
    facts ``session.submit`` would compute.  Without it, a shared
    scratch session with the standard prelude is used.  Analysis never
    runs the program and never mutates the session (macros defined by
    ``source`` land in a throwaway expansion environment; resolution
    may intern cells for new names, which is observationally inert).
    """
    from repro.expander import ExpandEnv, expand_program
    from repro.ir.resolve import resolve_program
    from repro.reader import read_all

    sess = session if session is not None else _scratch_session()
    env = ExpandEnv()
    env.macros.update(sess.expand_env.macros)
    nodes = expand_program(read_all(source), env)
    nodes = resolve_program(nodes, sess.globals)
    return annotate_program(nodes, sess.globals)
