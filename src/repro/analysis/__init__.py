"""Static analysis over the core IR.

Section 8 of the paper argues that ``spawn`` improves *analyzability*:

    "Programs written with spawn are more easily analyzed, because the
    effects of a process controller created by spawn are limited to
    the dynamic context of the call to spawn and because access to the
    controller can be restricted."

This package makes that claim executable, in two tiers:

* :func:`repro.analysis.escape.analyze_spawns` finds every ``spawn``
  site in a program (both IR dialects — pre-resolution and resolved)
  and classifies its controller: **confined** (used only in ways that
  cannot outlive the process) or **escaping** (stored in a mutable
  cell, returned as part of the value, passed to unknown code).  A
  confined controller's effects provably stay inside the spawn's
  dynamic extent — the property the paper highlights.
  :func:`repro.analysis.escape.spawn_report` renders the analysis for
  humans (and the REPL's ``,analyze``).
* :mod:`repro.analysis.effects` generalizes this into a compiler phase:
  :func:`~repro.analysis.effects.annotate_program` stamps every lambda
  with an interned :class:`~repro.analysis.effects.EffectInfo`
  (capture-free / spawn-free / controller-confined / known-total), and
  :func:`~repro.analysis.effects.analyze` surfaces a
  :class:`~repro.analysis.effects.ProgramReport` so sessions and hosts
  can tag requests pure / capture-heavy / spawning and budget them
  differently.  The run loops exploit the same facts: a form proven
  capture- and spawn-free is single-task forever, so the scheduler
  grants it an enlarged quantum (see docs/ANALYSIS.md).

By contrast ``call/cc``'s continuation always ranges over the whole
program, so no such local argument exists — which is exactly the
paper's criticism of it.
"""

from repro.analysis.effects import (
    AnalysisStats,
    EffectInfo,
    FormFacts,
    ProgramReport,
    analyze,
    annotate_program,
    single_task_form,
)
from repro.analysis.escape import (
    SpawnSite,
    analyze_spawns,
    analyze_source,
    spawn_report,
)

__all__ = [
    "AnalysisStats",
    "EffectInfo",
    "FormFacts",
    "ProgramReport",
    "SpawnSite",
    "analyze",
    "analyze_source",
    "analyze_spawns",
    "annotate_program",
    "single_task_form",
    "spawn_report",
]
