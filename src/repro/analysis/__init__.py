"""Static analysis over the core IR.

Section 8 of the paper argues that ``spawn`` improves *analyzability*:

    "Programs written with spawn are more easily analyzed, because the
    effects of a process controller created by spawn are limited to
    the dynamic context of the call to spawn and because access to the
    controller can be restricted."

This package makes that claim executable:

* :func:`repro.analysis.escape.analyze_spawns` finds every ``spawn``
  site in a program and classifies its controller: **confined** (used
  only in ways that cannot outlive the process) or **escaping** (stored
  in a mutable cell, returned as part of the value, passed to unknown
  code).  A confined controller's effects provably stay inside the
  spawn's dynamic extent — the property the paper highlights.
* :func:`repro.analysis.escape.spawn_report` renders the analysis for
  humans (and the REPL).

By contrast ``call/cc``'s continuation always ranges over the whole
program, so no such local argument exists — which is exactly the
paper's criticism of it.
"""

from repro.analysis.escape import (
    SpawnSite,
    analyze_spawns,
    analyze_source,
    spawn_report,
)

__all__ = ["SpawnSite", "analyze_spawns", "analyze_source", "spawn_report"]
