"""Quasiquote expansion.

``(quasiquote t)`` lowers into calls to ``cons``, ``append``,
``list->vector`` and quoted constants, with correct handling of nested
quasiquotes and of ``unquote-splicing``.
"""

from __future__ import annotations

from typing import Any

from repro.datum import NIL, MVector, Pair, Symbol, from_pylist, intern
from repro.errors import ExpandError

__all__ = ["expand_quasiquote"]

_QUASIQUOTE = intern("quasiquote")
_UNQUOTE = intern("unquote")
_UNQUOTE_SPLICING = intern("unquote-splicing")
_QUOTE = intern("quote")
_CONS = intern("cons")
_APPEND = intern("append")
_LIST_TO_VECTOR = intern("list->vector")


def _is_tagged(form: Any, tag: Symbol) -> bool:
    return (
        isinstance(form, Pair)
        and form.car is tag
        and isinstance(form.cdr, Pair)
        and form.cdr.cdr is NIL
    )


def _quote(datum: Any) -> Any:
    return from_pylist([_QUOTE, datum])


def expand_quasiquote(template: Any, depth: int = 1) -> Any:
    """Rewrite a quasiquote template (already stripped of the
    ``quasiquote`` head) into ordinary expression syntax."""
    if _is_tagged(template, _UNQUOTE):
        inner = template.cdr.car
        if depth == 1:
            return inner
        return from_pylist(
            [_CONS, _quote(_UNQUOTE), expand_quasiquote(from_pylist([inner]), depth - 1)]
        )
    if _is_tagged(template, _QUASIQUOTE):
        inner = template.cdr.car
        return from_pylist(
            [_CONS, _quote(_QUASIQUOTE), expand_quasiquote(from_pylist([inner]), depth + 1)]
        )
    if isinstance(template, Pair):
        head = template.car
        if _is_tagged(head, _UNQUOTE_SPLICING):
            spliced = head.cdr.car
            if depth == 1:
                return from_pylist(
                    [_APPEND, spliced, expand_quasiquote(template.cdr, depth)]
                )
            rebuilt = from_pylist(
                [
                    _CONS,
                    _quote(_UNQUOTE_SPLICING),
                    expand_quasiquote(from_pylist([spliced]), depth - 1),
                ]
            )
            return from_pylist([_CONS, rebuilt, expand_quasiquote(template.cdr, depth)])
        if head is _UNQUOTE_SPLICING:
            raise ExpandError("unquote-splicing in non-list position")
        return from_pylist(
            [
                _CONS,
                expand_quasiquote(head, depth),
                expand_quasiquote(template.cdr, depth),
            ]
        )
    if isinstance(template, MVector):
        as_list = from_pylist(list(template.items))
        return from_pylist([_LIST_TO_VECTOR, expand_quasiquote(as_list, depth)])
    # Atoms (symbols included) are constants.
    return _quote(template)
