"""The expander proper: core and derived forms.

Dispatch order for a compound form ``(head . rest)`` where ``head`` is a
symbol: lexical bindings shadow everything; then user macros; then core
special forms; then the built-in derived forms; otherwise it is an
application.  This matches how a 1990 Scheme front end treats
``extend-syntax`` macros.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.datum import (
    NIL,
    Pair,
    Symbol,
    UNSPECIFIED,
    from_pylist,
    gensym,
    improper_to_pylist,
    intern,
    to_pylist,
)
from repro.errors import ExpandError
from repro.expander.env import ExpandEnv
from repro.expander.quasiquote import expand_quasiquote
from repro.expander.syntax_rules import Macro, Rule
from repro.ir import (
    App,
    Const,
    DefineTop,
    If,
    Lambda,
    Node,
    Pcall,
    Seq,
    SetBang,
    Var,
)

__all__ = ["expand_expr", "expand_program", "expand_body"]

# Interned form names, computed once.
_QUOTE = intern("quote")
_LAMBDA = intern("lambda")
_IF = intern("if")
_SET = intern("set!")
_BEGIN = intern("begin")
_DEFINE = intern("define")
_EXTEND_SYNTAX = intern("extend-syntax")
_DEFINE_SYNTAX = intern("define-syntax")
_SYNTAX_RULES = intern("syntax-rules")
_PCALL = intern("pcall")
_PROMPT = intern("prompt")
_LET = intern("let")
_LET_STAR = intern("let*")
_LETREC = intern("letrec")
_COND = intern("cond")
_CASE = intern("case")
_WHEN = intern("when")
_UNLESS = intern("unless")
_AND = intern("and")
_OR = intern("or")
_DO = intern("do")
_QUASIQUOTE = intern("quasiquote")
_UNQUOTE = intern("unquote")
_UNQUOTE_SPLICING = intern("unquote-splicing")
_ELSE = intern("else")
_ARROW = intern("=>")
_CALL_WITH_PROMPT = intern("call-with-prompt")
_MEMV = intern("memv")


def _form_items(form: Pair, what: str) -> list[Any]:
    try:
        return to_pylist(form)
    except Exception as exc:  # improper form
        raise ExpandError(f"malformed {what}: {form!r}") from exc


def _proper(datum: Any, what: str) -> list[Any]:
    """to_pylist with expander-domain errors (improper lists in syntax
    positions are syntax errors, not runtime type errors)."""
    try:
        return to_pylist(datum)
    except Exception as exc:
        raise ExpandError(f"malformed {what}: {datum!r}") from exc


def expand_expr(datum: Any, env: ExpandEnv) -> Node:
    """Expand one expression to IR."""
    if isinstance(datum, Symbol):
        return Var(datum)
    if not isinstance(datum, Pair):
        # Self-evaluating: numbers, strings, booleans, chars, vectors.
        if datum is NIL:
            raise ExpandError("the empty combination () is not an expression")
        return Const(datum)
    head = datum.car
    if isinstance(head, Symbol) and not env.is_lexical(head):
        macro = env.macro_for(head)
        if macro is not None:
            return expand_expr(macro.expand(datum), env)
        handler = _SPECIAL_FORMS.get(head)
        if handler is not None:
            return handler(datum, env)
    # Application.
    items = _form_items(datum, "application")
    fn = expand_expr(items[0], env)
    args = tuple(expand_expr(arg, env) for arg in items[1:])
    return App(fn, args)


# ---------------------------------------------------------------------------
# Core forms
# ---------------------------------------------------------------------------


def _expand_quote(form: Pair, env: ExpandEnv) -> Node:
    items = _form_items(form, "quote")
    if len(items) != 2:
        raise ExpandError(f"quote takes one datum: {form!r}")
    return Const(items[1])


def _parse_formals(formals: Any) -> tuple[tuple[Symbol, ...], Symbol | None]:
    if isinstance(formals, Symbol):
        return (), formals
    names, tail = improper_to_pylist(formals)
    for name in names:
        if not isinstance(name, Symbol):
            raise ExpandError(f"formal parameter is not a symbol: {name!r}")
    if tail is NIL:
        rest = None
    elif isinstance(tail, Symbol):
        rest = tail
    else:
        raise ExpandError(f"bad rest parameter: {tail!r}")
    seen: set[Symbol] = set()
    for name in list(names) + ([rest] if rest else []):
        if name in seen:
            raise ExpandError(f"duplicate formal parameter: {name.name}")
        seen.add(name)
    return tuple(names), rest


def _expand_lambda(form: Pair, env: ExpandEnv, name: str | None = None) -> Node:
    items = _form_items(form, "lambda")
    if len(items) < 3:
        raise ExpandError(f"lambda needs formals and a body: {form!r}")
    params, rest = _parse_formals(items[1])
    bound = list(params) + ([rest] if rest else [])
    body = expand_body(items[2:], env.bind(bound))
    return Lambda(params, rest, body, name=name)


def _expand_if(form: Pair, env: ExpandEnv) -> Node:
    items = _form_items(form, "if")
    if len(items) == 3:
        return If(
            expand_expr(items[1], env), expand_expr(items[2], env), Const(UNSPECIFIED)
        )
    if len(items) == 4:
        return If(
            expand_expr(items[1], env),
            expand_expr(items[2], env),
            expand_expr(items[3], env),
        )
    raise ExpandError(f"if takes 2 or 3 subexpressions: {form!r}")


def _expand_set(form: Pair, env: ExpandEnv) -> Node:
    items = _form_items(form, "set!")
    if len(items) != 3 or not isinstance(items[1], Symbol):
        raise ExpandError(f"malformed set!: {form!r}")
    return SetBang(items[1], expand_expr(items[2], env))


def _expand_begin(form: Pair, env: ExpandEnv) -> Node:
    items = _form_items(form, "begin")
    if len(items) < 2:
        raise ExpandError("begin needs at least one expression")
    if len(items) == 2:
        return expand_expr(items[1], env)
    return Seq(tuple(expand_expr(e, env) for e in items[1:]))


def _expand_pcall(form: Pair, env: ExpandEnv) -> Node:
    items = _form_items(form, "pcall")
    if len(items) < 2:
        raise ExpandError("pcall needs at least an operator expression")
    return Pcall(tuple(expand_expr(e, env) for e in items[1:]))


def _expand_prompt(form: Pair, env: ExpandEnv) -> Node:
    """``(prompt e1 e2 ...)`` → ``(call-with-prompt (lambda () e1 e2 ...))``.

    ``call-with-prompt`` is the primitive that pushes a prompt mark;
    see :mod:`repro.control.prompt`.
    """
    items = _form_items(form, "prompt")
    if len(items) < 2:
        raise ExpandError("prompt needs a body")
    thunk = Lambda((), None, expand_body(items[1:], env), name="prompt-body")
    return App(Var(_CALL_WITH_PROMPT), (thunk,))


def _expand_define(form: Pair, env: ExpandEnv) -> Node:
    raise ExpandError(
        "define is only allowed at top level or at the head of a body: "
        f"{form!r}"
    )


def _expand_extend_syntax(form: Pair, env: ExpandEnv) -> Node:
    raise ExpandError("extend-syntax is only allowed at top level")


def _expand_define_syntax(form: Pair, env: ExpandEnv) -> Node:
    raise ExpandError("define-syntax is only allowed at top level")


# ---------------------------------------------------------------------------
# Derived forms
# ---------------------------------------------------------------------------


def _parse_bindings(spec: Any, what: str) -> list[tuple[Symbol, Any]]:
    out: list[tuple[Symbol, Any]] = []
    for binding in _proper(spec, what):
        parts = _proper(binding, what + " binding")
        if len(parts) != 2 or not isinstance(parts[0], Symbol):
            raise ExpandError(f"malformed {what} binding: {binding!r}")
        out.append((parts[0], parts[1]))
    return out


def _expand_let(form: Pair, env: ExpandEnv) -> Node:
    items = _form_items(form, "let")
    if len(items) >= 3 and isinstance(items[1], Symbol):
        # Named let.
        name = items[1]
        bindings = _parse_bindings(items[2], "named let")
        if len(items) < 4:
            raise ExpandError(f"named let needs a body: {form!r}")
        loop_lambda = from_pylist(
            [_LAMBDA, from_pylist([n for n, _ in bindings])] + items[3:]
        )
        rewritten = from_pylist(
            [
                from_pylist(
                    [
                        _LETREC,
                        from_pylist([from_pylist([name, loop_lambda])]),
                        name,
                    ]
                )
            ]
            + [v for _, v in bindings]
        )
        return expand_expr(rewritten, env)
    if len(items) < 3:
        raise ExpandError(f"let needs bindings and a body: {form!r}")
    bindings = _parse_bindings(items[1], "let")
    names = [n for n, _ in bindings]
    fn = Lambda(
        tuple(names), None, expand_body(items[2:], env.bind(names)), name="let-body"
    )
    return App(fn, tuple(expand_expr(v, env) for _, v in bindings))


def _expand_let_star(form: Pair, env: ExpandEnv) -> Node:
    items = _form_items(form, "let*")
    if len(items) < 3:
        raise ExpandError(f"let* needs bindings and a body: {form!r}")
    bindings = _parse_bindings(items[1], "let*")
    if not bindings:
        return expand_expr(from_pylist([_LET, NIL] + items[2:]), env)
    first, rest = bindings[0], bindings[1:]
    inner: Any = from_pylist(
        [_LET_STAR, from_pylist([from_pylist([n, v]) for n, v in rest])] + items[2:]
    )
    outer = from_pylist(
        [_LET, from_pylist([from_pylist([first[0], first[1]])]), inner]
    )
    return expand_expr(outer, env)


def _expand_letrec(form: Pair, env: ExpandEnv) -> Node:
    items = _form_items(form, "letrec")
    if len(items) < 3:
        raise ExpandError(f"letrec needs bindings and a body: {form!r}")
    bindings = _parse_bindings(items[1], "letrec")
    names = [n for n, _ in bindings]
    inner_env = env.bind(names)
    assignments: list[Node] = [
        SetBang(name, expand_expr(value, inner_env)) for name, value in bindings
    ]
    body = expand_body(items[2:], inner_env)
    full_body: Node = Seq(tuple(assignments + [body])) if assignments else body
    fn = Lambda(tuple(names), None, full_body, name="letrec-body")
    return App(fn, tuple(Const(UNSPECIFIED) for _ in names))


def _expand_cond(form: Pair, env: ExpandEnv) -> Node:
    items = _form_items(form, "cond")
    clauses = items[1:]
    return _expand_cond_clauses(clauses, env, form)


def _expand_cond_clauses(clauses: list[Any], env: ExpandEnv, origin: Any) -> Node:
    if not clauses:
        return Const(UNSPECIFIED)
    clause = _proper(clauses[0], "cond clause")
    if not clause:
        raise ExpandError(f"empty cond clause in {origin!r}")
    if isinstance(clause[0], Symbol) and clause[0] is _ELSE:
        if len(clauses) != 1:
            raise ExpandError("else clause must be last in cond")
        if len(clause) < 2:
            raise ExpandError("else clause needs a body")
        return _body_seq(clause[1:], env)
    test = expand_expr(clause[0], env)
    rest = _expand_cond_clauses(clauses[1:], env, origin)
    if len(clause) == 1:
        # (cond [test]) returns the test value when true.
        tmp = gensym("t")
        return App(
            Lambda((tmp,), None, If(Var(tmp), Var(tmp), rest), name="cond-tmp"),
            (test,),
        )
    if len(clause) >= 2 and isinstance(clause[1], Symbol) and clause[1] is _ARROW:
        if len(clause) != 3:
            raise ExpandError(f"malformed => clause: {clauses[0]!r}")
        tmp = gensym("t")
        receiver = expand_expr(clause[2], env)
        return App(
            Lambda(
                (tmp,),
                None,
                If(Var(tmp), App(receiver, (Var(tmp),)), rest),
                name="cond-arrow",
            ),
            (test,),
        )
    return If(test, _body_seq(clause[1:], env), rest)


def _expand_case(form: Pair, env: ExpandEnv) -> Node:
    items = _form_items(form, "case")
    if len(items) < 3:
        raise ExpandError(f"case needs a key and clauses: {form!r}")
    key = expand_expr(items[1], env)
    tmp = gensym("key")
    inner_env = env.bind([tmp])

    def build(clauses: list[Any]) -> Node:
        if not clauses:
            return Const(UNSPECIFIED)
        clause = _proper(clauses[0], "case clause")
        if not clause or len(clause) < 2:
            raise ExpandError(f"malformed case clause: {clauses[0]!r}")
        if isinstance(clause[0], Symbol) and clause[0] is _ELSE:
            if len(clauses) != 1:
                raise ExpandError("else clause must be last in case")
            return _body_seq(clause[1:], inner_env)
        data = clause[0]
        test = App(Var(_MEMV), (Var(tmp), Const(data)))
        return If(test, _body_seq(clause[1:], inner_env), build(clauses[1:]))

    return App(Lambda((tmp,), None, build(items[2:]), name="case-key"), (key,))


def _expand_when(form: Pair, env: ExpandEnv) -> Node:
    items = _form_items(form, "when")
    if len(items) < 3:
        raise ExpandError(f"when needs a test and a body: {form!r}")
    return If(expand_expr(items[1], env), _body_seq(items[2:], env), Const(UNSPECIFIED))


def _expand_unless(form: Pair, env: ExpandEnv) -> Node:
    items = _form_items(form, "unless")
    if len(items) < 3:
        raise ExpandError(f"unless needs a test and a body: {form!r}")
    return If(expand_expr(items[1], env), Const(UNSPECIFIED), _body_seq(items[2:], env))


def _expand_and(form: Pair, env: ExpandEnv) -> Node:
    items = _form_items(form, "and")
    exprs = items[1:]
    if not exprs:
        return Const(True)
    if len(exprs) == 1:
        return expand_expr(exprs[0], env)
    rest = from_pylist([_AND] + exprs[1:])
    return If(expand_expr(exprs[0], env), expand_expr(rest, env), Const(False))


def _expand_or(form: Pair, env: ExpandEnv) -> Node:
    items = _form_items(form, "or")
    exprs = items[1:]
    if not exprs:
        return Const(False)
    if len(exprs) == 1:
        return expand_expr(exprs[0], env)
    tmp = gensym("t")
    rest = from_pylist([_OR] + exprs[1:])
    return App(
        Lambda(
            (tmp,),
            None,
            If(Var(tmp), Var(tmp), expand_expr(rest, env)),
            name="or-tmp",
        ),
        (expand_expr(exprs[0], env),),
    )


def _expand_do(form: Pair, env: ExpandEnv) -> Node:
    """``(do ([var init step] ...) (test result ...) command ...)``."""
    items = _form_items(form, "do")
    if len(items) < 3:
        raise ExpandError(f"malformed do: {form!r}")
    specs: list[tuple[Symbol, Any, Any]] = []
    for spec in _proper(items[1], "do bindings"):
        parts = _proper(spec, "do binding")
        if len(parts) == 2:
            name, init = parts
            step: Any = name
        elif len(parts) == 3:
            name, init, step = parts
        else:
            raise ExpandError(f"malformed do binding: {spec!r}")
        if not isinstance(name, Symbol):
            raise ExpandError(f"do variable is not a symbol: {name!r}")
        specs.append((name, init, step))
    exit_clause = _proper(items[2], "do exit clause")
    if not exit_clause:
        raise ExpandError("do needs a (test result ...) clause")
    loop = gensym("do-loop")
    test = exit_clause[0]
    results = exit_clause[1:]
    result_expr: Any
    if results:
        result_expr = from_pylist([_BEGIN] + results) if len(results) > 1 else results[0]
    else:
        result_expr = from_pylist([_QUOTE, UNSPECIFIED])
    commands = items[3:]
    recurse = from_pylist([loop] + [step for _, _, step in specs])
    body: Any = from_pylist(
        [_IF, test, result_expr, from_pylist([_BEGIN] + commands + [recurse])]
        if commands
        else [_IF, test, result_expr, recurse]
    )
    rewritten = from_pylist(
        [
            _LET,
            loop,
            from_pylist([from_pylist([n, i]) for n, i, _ in specs]),
            body,
        ]
    )
    return expand_expr(rewritten, env)


def _expand_quasiquote_form(form: Pair, env: ExpandEnv) -> Node:
    items = _form_items(form, "quasiquote")
    if len(items) != 2:
        raise ExpandError(f"quasiquote takes one template: {form!r}")
    return expand_expr(expand_quasiquote(items[1]), env)


def _expand_unquote_error(form: Pair, env: ExpandEnv) -> Node:
    raise ExpandError(f"unquote outside quasiquote: {form!r}")


_SPECIAL_FORMS: dict[Symbol, Callable[[Pair, ExpandEnv], Node]] = {
    _QUOTE: _expand_quote,
    _LAMBDA: _expand_lambda,
    _IF: _expand_if,
    _SET: _expand_set,
    _BEGIN: _expand_begin,
    _DEFINE: _expand_define,
    _EXTEND_SYNTAX: _expand_extend_syntax,
    _DEFINE_SYNTAX: _expand_define_syntax,
    _PCALL: _expand_pcall,
    _PROMPT: _expand_prompt,
    _LET: _expand_let,
    _LET_STAR: _expand_let_star,
    _LETREC: _expand_letrec,
    _COND: _expand_cond,
    _CASE: _expand_case,
    _WHEN: _expand_when,
    _UNLESS: _expand_unless,
    _AND: _expand_and,
    _OR: _expand_or,
    _DO: _expand_do,
    _QUASIQUOTE: _expand_quasiquote_form,
    _UNQUOTE: _expand_unquote_error,
    _UNQUOTE_SPLICING: _expand_unquote_error,
}


# ---------------------------------------------------------------------------
# Bodies and internal defines
# ---------------------------------------------------------------------------


def _normalize_define(form: Pair) -> tuple[Symbol, Any]:
    """Split a ``define`` form into (name, value-expression)."""
    items = _form_items(form, "define")
    if len(items) < 2:
        raise ExpandError(f"malformed define: {form!r}")
    target = items[1]
    if isinstance(target, Symbol):
        if len(items) == 2:
            return target, from_pylist([_QUOTE, UNSPECIFIED])
        if len(items) != 3:
            raise ExpandError(f"define takes one value expression: {form!r}")
        return target, items[2]
    if isinstance(target, Pair):
        # (define (name . formals) body ...)
        name = target.car
        if not isinstance(name, Symbol):
            raise ExpandError(f"bad procedure-define name: {name!r}")
        if len(items) < 3:
            raise ExpandError(f"procedure define needs a body: {form!r}")
        lam = from_pylist([_LAMBDA, target.cdr] + items[2:])
        return name, lam
    raise ExpandError(f"malformed define target: {target!r}")


def _is_form(datum: Any, name: Symbol, env: ExpandEnv) -> bool:
    return (
        isinstance(datum, Pair)
        and isinstance(datum.car, Symbol)
        and datum.car is name
        and not env.is_lexical(datum.car)
    )


def _splice_defines(forms: list[Any], env: ExpandEnv) -> tuple[list[tuple[Symbol, Any]], list[Any]]:
    """Collect the leading run of internal defines of a body.

    Macro uses in head position are expanded so macros may produce
    defines; ``begin`` at the head is spliced.
    """
    defines: list[tuple[Symbol, Any]] = []
    index = 0
    work = list(forms)
    while index < len(work):
        form = work[index]
        # Expand macros that may reveal a define.
        while (
            isinstance(form, Pair)
            and isinstance(form.car, Symbol)
            and env.macro_for(form.car) is not None
        ):
            form = env.macro_for(form.car).expand(form)  # type: ignore[union-attr]
        if _is_form(form, _BEGIN, env):
            work[index : index + 1] = _proper(form, "begin")[1:]
            continue
        if _is_form(form, _DEFINE, env):
            defines.append(_normalize_define(form))
            index += 1
            continue
        break
    return defines, work[index:]


def expand_body(forms: list[Any], env: ExpandEnv) -> Node:
    """Expand a lambda/let body, handling internal defines."""
    if not forms:
        raise ExpandError("empty body")
    defines, rest = _splice_defines(forms, env)
    if defines:
        if not rest:
            raise ExpandError("body consists only of definitions")
        names = [n for n, _ in defines]
        inner_env = env.bind(names)
        assignments = [
            SetBang(
                name,
                _name_lambda(expand_expr(value, inner_env), name),
            )
            for name, value in defines
        ]
        body = _body_seq(rest, inner_env)
        fn = Lambda(
            tuple(names),
            None,
            Seq(tuple(assignments + [body])),
            name="internal-defines",
        )
        return App(fn, tuple(Const(UNSPECIFIED) for _ in names))
    return _body_seq(forms, env)


def _name_lambda(node: Node, name: Symbol) -> Node:
    if isinstance(node, Lambda) and node.name is None:
        return Lambda(node.params, node.rest, node.body, name=name.name)
    return node


def _body_seq(forms: list[Any], env: ExpandEnv) -> Node:
    exprs = tuple(expand_expr(form, env) for form in forms)
    return exprs[0] if len(exprs) == 1 else Seq(exprs)


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


def _parse_extend_syntax(form: Pair) -> Macro:
    """``(extend-syntax (name key ...) [pattern template] ...)``."""
    items = _form_items(form, "extend-syntax")
    if len(items) < 2:
        raise ExpandError(f"malformed extend-syntax: {form!r}")
    header = _proper(items[1], "extend-syntax header")
    if not header or not all(isinstance(s, Symbol) for s in header):
        raise ExpandError(f"malformed extend-syntax header: {items[1]!r}")
    name = header[0]
    keywords = frozenset(header[1:])
    rules: list[Rule] = []
    for clause in items[2:]:
        parts = _proper(clause, "extend-syntax clause")
        if len(parts) == 2:
            rules.append(Rule(parts[0], parts[1]))
        elif len(parts) == 3:
            raise ExpandError(
                "extend-syntax fenders are not supported in this reproduction"
            )
        else:
            raise ExpandError(f"malformed extend-syntax clause: {clause!r}")
    if not rules:
        raise ExpandError("extend-syntax needs at least one clause")
    return Macro(name, keywords, rules)


def _parse_define_syntax(form: Pair) -> Macro:
    """``(define-syntax name (syntax-rules (lit ...) [pattern template] ...))``."""
    items = _form_items(form, "define-syntax")
    if len(items) != 3 or not isinstance(items[1], Symbol):
        raise ExpandError(f"malformed define-syntax: {form!r}")
    name = items[1]
    spec = items[2]
    if not (_is_head(spec, _SYNTAX_RULES)):
        raise ExpandError("define-syntax requires a syntax-rules transformer")
    spec_items = _proper(spec, "syntax-rules")
    if len(spec_items) < 2:
        raise ExpandError(f"malformed syntax-rules: {spec!r}")
    literals = _proper(spec_items[1], "syntax-rules literals")
    if not all(isinstance(s, Symbol) for s in literals):
        raise ExpandError(f"syntax-rules literals must be symbols: {spec_items[1]!r}")
    rules: list[Rule] = []
    for clause in spec_items[2:]:
        parts = _proper(clause, "syntax-rules clause")
        if len(parts) != 2:
            raise ExpandError(f"malformed syntax-rules clause: {clause!r}")
        rules.append(Rule(parts[0], parts[1]))
    if not rules:
        raise ExpandError("syntax-rules needs at least one clause")
    return Macro(name, frozenset(literals), rules)


def _is_head(datum: Any, name: Symbol) -> bool:
    return isinstance(datum, Pair) and datum.car is name


def expand_program(forms: list[Any], env: ExpandEnv | None = None) -> list[Node]:
    """Expand a whole program (a list of top-level forms).

    ``extend-syntax``/``define-syntax`` forms register macros in ``env``
    and produce no IR; ``define`` forms become :class:`DefineTop`;
    top-level ``begin`` splices.
    """
    if env is None:
        env = ExpandEnv()
    out: list[Node] = []
    work = list(forms)
    index = 0
    while index < len(work):
        form = work[index]
        index += 1
        # Macro-expand head position so macros can produce definitions.
        while (
            isinstance(form, Pair)
            and isinstance(form.car, Symbol)
            and env.macro_for(form.car) is not None
        ):
            form = env.macro_for(form.car).expand(form)  # type: ignore[union-attr]
        if _is_form(form, _BEGIN, env):
            work[index:index] = _proper(form, "begin")[1:]
            continue
        if _is_form(form, _EXTEND_SYNTAX, env):
            macro = _parse_extend_syntax(form)
            env.define_macro(macro.name, macro)
            continue
        if _is_form(form, _DEFINE_SYNTAX, env):
            macro = _parse_define_syntax(form)
            env.define_macro(macro.name, macro)
            continue
        if _is_form(form, _DEFINE, env):
            name, value = _normalize_define(form)
            out.append(DefineTop(name, _name_lambda(expand_expr(value, env), name)))
            continue
        out.append(expand_expr(form, env))
    return out
