"""Macro expansion: surface syntax → core IR.

The entry points are :func:`expand_program` (a sequence of top-level
forms, threading macro definitions) and :func:`expand_expr` (a single
expression).  The expander implements:

* the core forms ``quote``, ``lambda``, ``if``, ``set!``, ``begin``,
  ``define``, ``pcall`` and ``prompt``;
* the derived forms of R3RS used in the paper (``let`` including named
  ``let``, ``let*``, ``letrec``, ``cond``, ``case``, ``when``,
  ``unless``, ``and``, ``or``, ``do``, ``quasiquote``);
* user macros via ``extend-syntax`` (the paper's macro system) and the
  equivalent ``define-syntax`` + ``syntax-rules`` spelling;
* internal ``define`` at the head of bodies, lowered to ``letrec``.

Expansion is deliberately *non-hygienic*, matching the 1990
``extend-syntax`` facility the paper uses.
"""

from repro.expander.env import ExpandEnv
from repro.expander.core_forms import expand_expr, expand_program
from repro.expander.syntax_rules import Macro, match_pattern, instantiate

__all__ = [
    "ExpandEnv",
    "expand_expr",
    "expand_program",
    "Macro",
    "match_pattern",
    "instantiate",
]
