"""Compile-time environment for the expander.

Tracks two things:

* the set of lexically bound identifiers (a binding for ``if`` shadows
  the special form, as in real Scheme);
* the table of user macros, shared by reference across the whole
  program so a top-level ``extend-syntax`` is visible to later forms.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.datum import Symbol

if TYPE_CHECKING:  # pragma: no cover
    from repro.expander.syntax_rules import Macro

__all__ = ["ExpandEnv"]


class ExpandEnv:
    """Expander environment: lexical scope + macro table."""

    __slots__ = ("macros", "lexical")

    def __init__(
        self,
        macros: dict[Symbol, "Macro"] | None = None,
        lexical: frozenset[Symbol] = frozenset(),
    ):
        self.macros: dict[Symbol, "Macro"] = macros if macros is not None else {}
        self.lexical = lexical

    def bind(self, names: Iterable[Symbol]) -> "ExpandEnv":
        """A child environment with ``names`` lexically bound.

        The macro table is shared (macros are program-global), but a
        lexical binding shadows a macro or core form of the same name.
        """
        return ExpandEnv(self.macros, self.lexical | frozenset(names))

    def is_lexical(self, name: Symbol) -> bool:
        return name in self.lexical

    def macro_for(self, name: Symbol) -> "Macro | None":
        if name in self.lexical:
            return None
        return self.macros.get(name)

    def define_macro(self, name: Symbol, macro: "Macro") -> None:
        self.macros[name] = macro
