"""Pattern-matching macros: ``extend-syntax`` / ``syntax-rules``.

The matcher supports the pattern language the paper relies on:

* literal keywords (the extra names in ``(extend-syntax (name key ...)``
  or the literals list of ``syntax-rules``);
* pattern variables (any other symbol);
* ``...`` ellipsis following a subpattern, matching zero or more
  occurrences, at any nesting depth;
* nested list and dotted-pair patterns, and constant patterns
  (numbers, strings, booleans, characters).

Templates substitute pattern variables and expand ellipses; a template
ellipsis iterates over the sequences captured by the pattern variables
appearing inside it.  Expansion is non-hygienic, like the historical
``extend-syntax``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.datum import NIL, Pair, Symbol, from_pylist, intern, is_equal
from repro.errors import ExpandError

__all__ = ["Macro", "Rule", "match_pattern", "instantiate", "ELLIPSIS"]

ELLIPSIS = intern("...")
_UNDERSCORE = intern("_")


@dataclass(frozen=True)
class Rule:
    """One ``[pattern template]`` clause."""

    pattern: Any
    template: Any


class Macro:
    """A pattern macro with an ordered list of rules."""

    __slots__ = ("name", "keywords", "rules")

    def __init__(self, name: Symbol, keywords: frozenset[Symbol], rules: list[Rule]):
        self.name = name
        self.keywords = keywords
        self.rules = rules

    def expand(self, form: Any) -> Any:
        """Expand one use of the macro; raises ExpandError if no rule
        matches."""
        for rule in self.rules:
            bindings: dict[Symbol, Any] = {}
            if match_pattern(rule.pattern, form, self.keywords, bindings, self.name):
                return instantiate(rule.template, bindings)
        raise ExpandError(f"no {self.name.name} rule matches: {form!r}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"#<macro {self.name.name}>"


class _EllipsisMatch:
    """Marker wrapper: the value bound to a pattern variable under an
    ellipsis is a list of per-iteration values."""

    __slots__ = ("items",)

    def __init__(self, items: list[Any]):
        self.items = items


def pattern_variables(pattern: Any, keywords: frozenset[Symbol]) -> set[Symbol]:
    """All pattern variables occurring in ``pattern``."""
    out: set[Symbol] = set()
    stack = [pattern]
    while stack:
        node = stack.pop()
        if isinstance(node, Symbol):
            if node not in keywords and node is not ELLIPSIS and node is not _UNDERSCORE:
                out.add(node)
        elif isinstance(node, Pair):
            stack.append(node.car)
            stack.append(node.cdr)
    return out


def match_pattern(
    pattern: Any,
    form: Any,
    keywords: frozenset[Symbol],
    bindings: dict[Symbol, Any],
    macro_name: Symbol | None = None,
) -> bool:
    """Try to match ``form`` against ``pattern``, extending ``bindings``.

    The head position of the top-level pattern is treated as the macro
    keyword itself (matched against anything), mirroring
    ``extend-syntax`` where the pattern's first element is the macro
    name.
    """
    if isinstance(pattern, Symbol):
        if pattern is _UNDERSCORE:
            return True
        if pattern in keywords or pattern is macro_name:
            return isinstance(form, Symbol) and form is pattern or form is pattern
        bindings[pattern] = form
        return True
    if isinstance(pattern, Pair):
        # Ellipsis pattern: (sub ... . rest)
        if isinstance(pattern.cdr, Pair) and pattern.cdr.car is ELLIPSIS:
            sub = pattern.car
            rest_pattern = pattern.cdr.cdr
            # Count minimum forms required by the rest pattern.
            min_rest = _min_length(rest_pattern)
            items: list[Any] = []
            node = form
            while isinstance(node, Pair):
                items.append(node.car)
                node = node.cdr
            tail = node
            if len(items) < min_rest:
                return False
            n_repeat = len(items) - min_rest
            repeated, remainder = items[:n_repeat], items[n_repeat:]
            per_var: dict[Symbol, list[Any]] = {
                v: [] for v in pattern_variables(sub, keywords)
            }
            for item in repeated:
                sub_bind: dict[Symbol, Any] = {}
                if not match_pattern(sub, item, keywords, sub_bind, macro_name):
                    return False
                for var in per_var:
                    per_var[var].append(sub_bind.get(var))
            for var, vals in per_var.items():
                bindings[var] = _EllipsisMatch(vals)
            return match_pattern(
                rest_pattern, from_pylist(remainder, tail), keywords, bindings, macro_name
            )
        if not isinstance(form, Pair):
            return False
        return match_pattern(
            pattern.car, form.car, keywords, bindings, macro_name
        ) and match_pattern(pattern.cdr, form.cdr, keywords, bindings, macro_name)
    if pattern is NIL:
        return form is NIL
    # Constant pattern.
    return is_equal(pattern, form)


def _min_length(pattern: Any) -> int:
    """Number of list elements a rest-pattern necessarily consumes."""
    n = 0
    node = pattern
    while isinstance(node, Pair):
        if isinstance(node.cdr, Pair) and node.cdr.car is ELLIPSIS:
            node = node.cdr.cdr
            continue
        n += 1
        node = node.cdr
    return n


def instantiate(
    template: Any, bindings: dict[Symbol, Any], allow_nested: bool = False
) -> Any:
    """Fill ``template`` with ``bindings``.

    ``allow_nested`` is set while expanding the body of a template
    ellipsis that is followed by further ellipses (``a ... ...``): a
    pattern variable still holding a nested match then renders as the
    list of its items, so the outer ellipses can splice it flat.
    """
    if isinstance(template, Symbol):
        if template in bindings:
            value = bindings[template]
            if isinstance(value, _EllipsisMatch):
                if allow_nested:
                    return _match_to_datum(value)
                raise ExpandError(
                    f"pattern variable {template.name} used without ellipsis"
                )
            return value
        return template
    if isinstance(template, Pair):
        # (... ...) escape: a literal ellipsis.
        if (
            template.car is ELLIPSIS
            and isinstance(template.cdr, Pair)
            and template.cdr.cdr is NIL
        ):
            return _strip_ellipsis_escape(template.cdr.car)
        if isinstance(template.cdr, Pair) and template.cdr.car is ELLIPSIS:
            sub = template.car
            rest = template.cdr.cdr
            # Extra ellipses after the first splice the iterations flat.
            extra = 0
            while isinstance(rest, Pair) and rest.car is ELLIPSIS:
                extra += 1
                rest = rest.cdr
            vars_in_sub = [v for v in _template_vars(sub) if isinstance(bindings.get(v), _EllipsisMatch)]
            if not vars_in_sub:
                raise ExpandError("ellipsis template with no ellipsis variables")
            lengths = {len(bindings[v].items) for v in vars_in_sub}
            if len(lengths) > 1:
                raise ExpandError(
                    "ellipsis variables matched different lengths: "
                    + ", ".join(v.name for v in vars_in_sub)
                )
            (length,) = lengths
            expansions: list[Any] = []
            for index in range(length):
                iter_bindings = dict(bindings)
                for var in vars_in_sub:
                    iter_bindings[var] = bindings[var].items[index]
                expansions.append(instantiate(sub, iter_bindings, extra > 0))
            for _ in range(extra):
                flattened: list[Any] = []
                for piece in expansions:
                    node = piece
                    while isinstance(node, Pair):
                        flattened.append(node.car)
                        node = node.cdr
                expansions = flattened
            return from_pylist(expansions, instantiate(rest, bindings, allow_nested))
        return Pair(
            instantiate(template.car, bindings, allow_nested),
            instantiate(template.cdr, bindings, allow_nested),
        )
    return template


def _match_to_datum(match: "_EllipsisMatch") -> Any:
    """Render a (possibly nested) ellipsis match as a Scheme list."""
    return from_pylist(
        [_match_to_datum(x) if isinstance(x, _EllipsisMatch) else x for x in match.items]
    )


def _template_vars(template: Any) -> set[Symbol]:
    out: set[Symbol] = set()
    stack = [template]
    while stack:
        node = stack.pop()
        if isinstance(node, Symbol):
            if node is not ELLIPSIS:
                out.add(node)
        elif isinstance(node, Pair):
            stack.append(node.car)
            stack.append(node.cdr)
    return out


def _strip_ellipsis_escape(template: Any) -> Any:
    """Return template verbatim (the ``(... template)`` escape)."""
    return template
