"""Cons cells, the empty list, and list utilities.

Scheme lists are chains of mutable :class:`Pair` cells terminated by
:data:`NIL`.  The helpers here convert between Python sequences and
Scheme lists and implement the handful of list walks that the reader,
expander and primitives all share.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.errors import WrongTypeError

__all__ = [
    "Nil",
    "NIL",
    "Pair",
    "cons",
    "from_pylist",
    "to_pylist",
    "improper_to_pylist",
    "list_length",
    "is_list",
    "scheme_append",
    "scheme_reverse",
]


class Nil:
    """The empty list.  A singleton; test with ``x is NIL``."""

    _instance: "Nil | None" = None

    def __new__(cls) -> "Nil":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "()"

    def __iter__(self) -> Iterator[Any]:
        return iter(())

    def __len__(self) -> int:
        return 0

    def __bool__(self) -> bool:
        # NIL is a *true* value in Scheme; only #f is false.  Guard
        # against accidental Python truthiness tests treating () as
        # false by making NIL truthy.
        return True


NIL = Nil()


class Pair:
    """A mutable cons cell."""

    __slots__ = ("car", "cdr")

    def __init__(self, car: Any, cdr: Any):
        self.car = car
        self.cdr = cdr

    def __iter__(self) -> Iterator[Any]:
        """Iterate the proper-list prefix of this chain.

        Raises :class:`WrongTypeError` if the chain is improper, so
        silent truncation can never hide a dotted tail.
        """
        node: Any = self
        while isinstance(node, Pair):
            yield node.car
            node = node.cdr
        if node is not NIL:
            raise WrongTypeError(f"improper list tail: {node!r}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        from repro.datum.printer import scheme_repr

        return scheme_repr(self)


def cons(car: Any, cdr: Any) -> Pair:
    """Allocate a fresh pair."""
    return Pair(car, cdr)


def from_pylist(items: Iterable[Any], tail: Any = NIL) -> Any:
    """Build a Scheme list from a Python iterable.

    ``tail`` lets callers build improper lists: ``from_pylist([a], b)``
    is ``(a . b)``.
    """
    items = list(items)
    result = tail
    for item in reversed(items):
        result = Pair(item, result)
    return result


def to_pylist(obj: Any) -> list[Any]:
    """Convert a proper Scheme list into a Python list.

    Raises :class:`WrongTypeError` on improper lists or non-lists.
    """
    out: list[Any] = []
    node = obj
    while isinstance(node, Pair):
        out.append(node.car)
        node = node.cdr
    if node is not NIL:
        raise WrongTypeError(f"expected a proper list, got tail {node!r}")
    return out


def improper_to_pylist(obj: Any) -> tuple[list[Any], Any]:
    """Split a (possibly improper) list into ``(proper-prefix, tail)``.

    For a proper list the tail is :data:`NIL`; for an atom the prefix is
    empty and the tail is the atom itself.
    """
    out: list[Any] = []
    node = obj
    while isinstance(node, Pair):
        out.append(node.car)
        node = node.cdr
    return out, node


def list_length(obj: Any) -> int:
    """Length of a proper list; :class:`WrongTypeError` otherwise."""
    n = 0
    node = obj
    while isinstance(node, Pair):
        n += 1
        node = node.cdr
    if node is not NIL:
        raise WrongTypeError(f"length: improper list tail {node!r}")
    return n


def is_list(obj: Any) -> bool:
    """True iff ``obj`` is a proper (finite, NIL-terminated) list.

    Uses Floyd cycle detection so circular structures terminate.
    """
    slow = obj
    fast = obj
    while True:
        if fast is NIL:
            return True
        if not isinstance(fast, Pair):
            return False
        fast = fast.cdr
        if fast is NIL:
            return True
        if not isinstance(fast, Pair):
            return False
        fast = fast.cdr
        slow = slow.cdr
        if slow is fast:
            return False  # cycle


def scheme_append(*lists: Any) -> Any:
    """R3RS ``append``: all but the last argument must be proper lists."""
    if not lists:
        return NIL
    head = NIL
    parts: list[list[Any]] = [to_pylist(ls) for ls in lists[:-1]]
    result: Any = lists[-1]
    for part in reversed(parts):
        result = from_pylist(part, result)
    del head
    return result


def scheme_reverse(ls: Any) -> Any:
    """R3RS ``reverse`` of a proper list."""
    result: Any = NIL
    node = ls
    while isinstance(node, Pair):
        result = Pair(node.car, result)
        node = node.cdr
    if node is not NIL:
        raise WrongTypeError(f"reverse: improper list tail {node!r}")
    return result
