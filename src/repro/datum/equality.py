"""The three Scheme equivalence predicates.

* :func:`is_eq` — object identity (with small-value fast paths that
  mirror how a real implementation represents immediates).
* :func:`is_eqv` — identity plus numeric/character value equality.
* :func:`is_equal` — structural equality over pairs, strings, vectors,
  with a depth-bounded iterative walk so deep lists cannot overflow the
  Python stack.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any

from repro.datum.chars import Char
from repro.datum.pairs import Pair
from repro.datum.vectors import MVector

__all__ = ["is_eq", "is_eqv", "is_equal"]

_EXACT_TYPES = (int, Fraction)


def _is_exact_number(x: Any) -> bool:
    return not isinstance(x, bool) and isinstance(x, _EXACT_TYPES)


def is_eq(a: Any, b: Any) -> bool:
    """``eq?``: identity.

    Like most Scheme systems, immediates (booleans, small exact
    integers, characters, the empty list) compare by value because a
    native system would represent them unboxed.  Symbols compare by
    identity, which for interned symbols is spelling equality.
    """
    if a is b:
        return True
    if isinstance(a, bool) or isinstance(b, bool):
        # bool is an int subclass; require both to be bools and equal.
        return isinstance(a, bool) and isinstance(b, bool) and a == b
    if isinstance(a, int) and isinstance(b, int):
        return a == b
    if isinstance(a, Char) and isinstance(b, Char):
        return a.value == b.value
    return False


def is_eqv(a: Any, b: Any) -> bool:
    """``eqv?``: identity extended with numeric value equality of
    like-exactness numbers."""
    if is_eq(a, b):
        return True
    if _is_exact_number(a) and _is_exact_number(b):
        return a == b
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (a != a and b != b)  # NaNs are eqv? to themselves
    return False


def is_equal(a: Any, b: Any) -> bool:
    """``equal?``: structural equality.

    Implemented with an explicit work stack; cycles are broken with a
    visited set of id-pairs, so ``equal?`` terminates on cyclic data
    (returning ``True`` when the unrollings agree).
    """
    stack: list[tuple[Any, Any]] = [(a, b)]
    seen: set[tuple[int, int]] = set()
    while stack:
        x, y = stack.pop()
        if x is y:
            continue
        key = (id(x), id(y))
        if key in seen:
            continue
        if isinstance(x, Pair) and isinstance(y, Pair):
            seen.add(key)
            stack.append((x.cdr, y.cdr))
            stack.append((x.car, y.car))
            continue
        if isinstance(x, MVector) and isinstance(y, MVector):
            if len(x) != len(y):
                return False
            seen.add(key)
            stack.extend(zip(x.items, y.items))
            continue
        if isinstance(x, str) and isinstance(y, str):
            if x != y:
                return False
            continue
        if not is_eqv(x, y):
            return False
    return True
