"""External representation of Scheme values.

:func:`scheme_repr` is ``write`` (machine-readable: strings quoted,
characters in ``#\\`` syntax); :func:`scheme_display` is ``display``
(human-readable: strings and characters raw).  Both walk iteratively
and render the quotation shorthands (``'x`` for ``(quote x)`` etc.).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any

from repro.datum.chars import Char
from repro.datum.pairs import NIL, Pair
from repro.datum.singletons import EOF_OBJECT, UNSPECIFIED
from repro.datum.symbols import Symbol
from repro.datum.vectors import MVector

__all__ = ["scheme_repr", "scheme_display"]

_QUOTE_SUGAR = {
    "quote": "'",
    "quasiquote": "`",
    "unquote": ",",
    "unquote-splicing": ",@",
}

_STRING_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\t": "\\t",
    "\r": "\\r",
}


def _escape_string(s: str) -> str:
    out = []
    for ch in s:
        out.append(_STRING_ESCAPES.get(ch, ch))
    return "".join(out)


def _quote_sugar(obj: Any) -> tuple[str, Any] | None:
    """If obj is a two-element list (quote x) etc., return (prefix, x)."""
    if (
        isinstance(obj, Pair)
        and isinstance(obj.car, Symbol)
        and obj.car.interned
        and obj.car.name in _QUOTE_SUGAR
        and isinstance(obj.cdr, Pair)
        and obj.cdr.cdr is NIL
    ):
        return _QUOTE_SUGAR[obj.car.name], obj.cdr.car
    return None


def _render(obj: Any, write: bool, seen: set[int], depth: int) -> str:
    if depth > 10_000:
        return "..."
    if obj is NIL:
        return "()"
    if obj is True:
        return "#t"
    if obj is False:
        return "#f"
    if obj is UNSPECIFIED:
        return "#<unspecified>"
    if obj is EOF_OBJECT:
        return "#<eof>"
    if isinstance(obj, Symbol):
        return obj.name
    if isinstance(obj, bool):  # unreachable; kept for clarity
        return "#t" if obj else "#f"
    if isinstance(obj, int):
        return str(obj)
    if isinstance(obj, Fraction):
        return f"{obj.numerator}/{obj.denominator}" if obj.denominator != 1 else str(obj.numerator)
    if isinstance(obj, float):
        if obj != obj:
            return "+nan.0"
        if obj == float("inf"):
            return "+inf.0"
        if obj == float("-inf"):
            return "-inf.0"
        text = repr(obj)
        return text
    if isinstance(obj, str):
        return f'"{_escape_string(obj)}"' if write else obj
    if isinstance(obj, Char):
        return repr(obj) if write else obj.value
    if isinstance(obj, Pair):
        if id(obj) in seen:
            return "#<cycle>"
        sugar = _quote_sugar(obj)
        if sugar is not None:
            prefix, inner = sugar
            return prefix + _render(inner, write, seen, depth + 1)
        seen = seen | {id(obj)}
        parts: list[str] = []
        node: Any = obj
        while isinstance(node, Pair):
            parts.append(_render(node.car, write, seen, depth + 1))
            node = node.cdr
            if id(node) in seen:
                parts.append(". #<cycle>")
                node = NIL
                break
        if node is not NIL:
            parts.append(".")
            parts.append(_render(node, write, seen, depth + 1))
        return "(" + " ".join(parts) + ")"
    if isinstance(obj, MVector):
        if id(obj) in seen:
            return "#<cycle>"
        seen = seen | {id(obj)}
        inner = " ".join(_render(x, write, seen, depth + 1) for x in obj.items)
        return f"#({inner})"
    # Fall back to the object's own repr (procedures, controllers,
    # continuations define helpful reprs of their own).
    return repr(obj)


def scheme_repr(obj: Any) -> str:
    """``write``-style external representation."""
    return _render(obj, write=True, seen=set(), depth=0)


def scheme_display(obj: Any) -> str:
    """``display``-style human-readable representation."""
    return _render(obj, write=False, seen=set(), depth=0)
