"""Interned symbols and gensyms.

Symbols compare by identity (``is``); :func:`intern` guarantees that two
occurrences of the same spelling yield the same object.  :func:`gensym`
produces symbols that are *not* interned and therefore can never collide
with read symbols — the expander uses them for hygiene and the machine
uses them for fresh labels in the Section 6 semantics bridge.
"""

from __future__ import annotations

import threading

from repro.counters import SerialCounter

__all__ = ["Symbol", "intern", "gensym", "gensym_reset"]


class Symbol:
    """An identifier.

    Instances obtained through :func:`intern` are unique per spelling.
    Instances obtained through :func:`gensym` are unique per call.
    """

    __slots__ = ("name", "_interned")

    def __init__(self, name: str, _interned: bool = False):
        self.name = name
        self._interned = _interned

    @property
    def interned(self) -> bool:
        return self._interned

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Symbol({self.name!r})"

    def __str__(self) -> str:
        return self.name

    # Identity semantics: do not define __eq__/__hash__ beyond object
    # defaults.  Two interned symbols with the same spelling *are* the
    # same object, so identity equality is spelling equality for them.


_intern_table: dict[str, Symbol] = {}
_intern_lock = threading.Lock()


def intern(name: str) -> Symbol:
    """Return the unique :class:`Symbol` for ``name``."""
    try:
        return _intern_table[name]
    except KeyError:
        with _intern_lock:
            # Re-check under the lock: another thread may have won.
            sym = _intern_table.get(name)
            if sym is None:
                sym = Symbol(name, _interned=True)
                _intern_table[name] = sym
            return sym


#: The gensym stream.  A :class:`~repro.counters.SerialCounter` so the
#: snapshot codec can record its watermark and carry it across
#: processes (gensym printed names are observable in output).
_gensym_counter = SerialCounter()


def gensym(prefix: str = "g") -> Symbol:
    """Return a fresh, uninterned symbol.

    The printed name embeds a monotonically increasing counter purely
    for readability; uniqueness comes from object identity.
    """
    return Symbol(f"{prefix}${next(_gensym_counter)}", _interned=False)


def gensym_reset() -> None:
    """Reset the gensym counter (test determinism only).

    Existing gensyms stay unique by identity; only printed names
    restart.
    """
    _gensym_counter.reset()
