"""Mutable Scheme vectors.

A thin wrapper over a Python list.  The wrapper exists so that the
machine can distinguish vectors from the Python lists it uses
internally (argument buffers, join slots and so on).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.errors import SchemeError

__all__ = ["MVector"]


class MVector:
    """A fixed-length mutable vector of Scheme values."""

    __slots__ = ("items",)

    def __init__(self, items: Iterable[Any] = ()):
        self.items = list(items)

    @classmethod
    def filled(cls, length: int, fill: Any) -> "MVector":
        """``(make-vector length fill)``."""
        if length < 0:
            raise SchemeError(f"make-vector: negative length {length}")
        return cls([fill] * length)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.items)

    def ref(self, index: int) -> Any:
        """``(vector-ref v index)`` with bounds checking."""
        if not 0 <= index < len(self.items):
            raise SchemeError(
                f"vector-ref: index {index} out of range for vector of length {len(self.items)}"
            )
        return self.items[index]

    def set(self, index: int, value: Any) -> None:
        """``(vector-set! v index value)`` with bounds checking."""
        if not 0 <= index < len(self.items):
            raise SchemeError(
                f"vector-set!: index {index} out of range for vector of length {len(self.items)}"
            )
        self.items[index] = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        from repro.datum.printer import scheme_repr

        return scheme_repr(self)
