"""Scheme datum representation.

This package defines the runtime representation of every Scheme value
used by the reader, the expander and the abstract machine:

* :class:`Symbol` — interned identifiers (:func:`intern`).
* :class:`Pair` and :data:`NIL` — mutable cons cells and the empty list.
* :class:`Char` — characters, distinct from one-element strings.
* :class:`MVector` — mutable vectors.
* :data:`UNSPECIFIED` — the value of ``(set! ...)`` and friends.
* :data:`EOF_OBJECT` — returned at end of input.

Booleans, exact integers, rationals, floats and strings are represented
directly by the corresponding Python objects (``bool``, ``int``,
``fractions.Fraction``, ``float``, ``str``).  ``bool`` must always be
tested *before* ``int`` since ``bool`` is a subclass of ``int``.

Helpers for moving between Python lists and Scheme lists live in
:mod:`repro.datum.pairs`; equality predicates in
:mod:`repro.datum.equality`; the printer in :mod:`repro.datum.printer`.
"""

from repro.datum.symbols import Symbol, intern, gensym, gensym_reset
from repro.datum.pairs import (
    NIL,
    Nil,
    Pair,
    cons,
    from_pylist,
    to_pylist,
    list_length,
    is_list,
    improper_to_pylist,
    scheme_append,
    scheme_reverse,
)
from repro.datum.chars import Char
from repro.datum.vectors import MVector
from repro.datum.singletons import UNSPECIFIED, EOF_OBJECT, Unspecified, EofObject
from repro.datum.equality import is_eq, is_eqv, is_equal
from repro.datum.printer import scheme_repr, scheme_display

__all__ = [
    "Symbol",
    "intern",
    "gensym",
    "gensym_reset",
    "NIL",
    "Nil",
    "Pair",
    "cons",
    "from_pylist",
    "to_pylist",
    "list_length",
    "is_list",
    "improper_to_pylist",
    "scheme_append",
    "scheme_reverse",
    "Char",
    "MVector",
    "UNSPECIFIED",
    "EOF_OBJECT",
    "Unspecified",
    "EofObject",
    "is_eq",
    "is_eqv",
    "is_equal",
    "scheme_repr",
    "scheme_display",
]
