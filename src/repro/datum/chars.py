"""Scheme characters.

Characters are distinct from one-element strings; the reader produces
them from ``#\\a`` syntax and the printer renders named characters
(``#\\space``, ``#\\newline``, ``#\\tab``) symbolically.
"""

from __future__ import annotations

__all__ = ["Char", "NAMED_CHARS", "CHAR_NAMES"]

#: Mapping from reader names to code points.
NAMED_CHARS: dict[str, str] = {
    "space": " ",
    "newline": "\n",
    "tab": "\t",
    "return": "\r",
    "nul": "\0",
    "null": "\0",
    "altmode": "\x1b",
    "backspace": "\x08",
    "delete": "\x7f",
    "escape": "\x1b",
    "linefeed": "\n",
    "page": "\x0c",
    "rubout": "\x7f",
}

#: Preferred printed name per code point (inverse of NAMED_CHARS with
#: canonical choices).
CHAR_NAMES: dict[str, str] = {
    " ": "space",
    "\n": "newline",
    "\t": "tab",
    "\r": "return",
    "\0": "nul",
    "\x7f": "delete",
    "\x1b": "escape",
    "\x0c": "page",
    "\x08": "backspace",
}


class Char:
    """A single Scheme character wrapping a one-codepoint string."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        if len(value) != 1:
            raise ValueError(f"Char requires exactly one code point, got {value!r}")
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Char) and other.value == self.value

    def __lt__(self, other: "Char") -> bool:
        if not isinstance(other, Char):
            return NotImplemented
        return self.value < other.value

    def __le__(self, other: "Char") -> bool:
        if not isinstance(other, Char):
            return NotImplemented
        return self.value <= other.value

    def __hash__(self) -> int:
        return hash(("Char", self.value))

    def __repr__(self) -> str:
        name = CHAR_NAMES.get(self.value)
        return f"#\\{name}" if name else f"#\\{self.value}"
