"""Singleton values: the unspecified value and the EOF object."""

from __future__ import annotations

__all__ = ["Unspecified", "UNSPECIFIED", "EofObject", "EOF_OBJECT"]


class Unspecified:
    """The value of expressions whose result R3RS leaves unspecified
    (``set!``, one-armed ``if`` misses, ``define`` at top level...)."""

    _instance: "Unspecified | None" = None

    def __new__(cls) -> "Unspecified":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "#<unspecified>"


UNSPECIFIED = Unspecified()


class EofObject:
    """The end-of-file object returned by input primitives."""

    _instance: "EofObject | None" = None

    def __new__(cls) -> "EofObject":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "#<eof>"


EOF_OBJECT = EofObject()
