"""Coroutines from process continuations.

Friedman, Haynes & Wand (the paper's reference [11]) obtain coroutines
from continuations; with ``spawn`` the derivation is local and needs no
global control: a coroutine is a spawned process whose ``suspend``
invokes the process controller, handing the caller a subcontinuation
to resume with.

    def numbers(suspend):
        for n in range(3):
            yield suspend(n)          # suspend, yielding n to the caller
        return "done"

    co = Coroutine(numbers)
    co.resume()   # -> (yielded) 0
    co.resume()   # -> 1
    ...

Each suspension crosses the process boundary exactly as in the paper's
``parallel-search`` example: the controller packages ``(value, rest)``
and the caller resumes ``rest`` on demand.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import RuntimeAPIError
from repro.runtime.effects import Call, Invoke, Resume, Spawn
from repro.runtime.tasklets import Runtime

__all__ = ["Coroutine", "CoroutineResult"]


class CoroutineResult:
    """What a :meth:`Coroutine.resume` returns."""

    __slots__ = ("done", "value")

    def __init__(self, done: bool, value: Any):
        self.done = done
        self.value = value

    def __repr__(self) -> str:
        state = "done" if self.done else "yielded"
        return f"<coroutine-result {state} {self.value!r}>"


class Coroutine:
    """A suspendable computation built on ``spawn``.

    ``fn`` is a tasklet function receiving ``suspend``; yielding
    ``suspend(value)`` pauses the coroutine, delivering ``value`` to
    the resumer; the ``yield``'s result is whatever the next
    ``resume(value)`` passes in.
    """

    def __init__(self, fn: Callable[[Callable[[Any], Any]], Any], quantum: int = 8):
        self._fn = fn
        self._runtime = Runtime(quantum=quantum)
        self._continuation: Any = None
        self._started = False
        self._finished = False

    def resume(self, value: Any = None) -> CoroutineResult:
        """Run the coroutine until its next suspension or completion."""
        if self._finished:
            raise RuntimeAPIError("coroutine already completed")
        if not self._started:
            self._started = True
            outcome = self._run_main(self._initial_main)
        else:
            continuation = self._continuation
            self._continuation = None

            def resume_main():
                result = yield Resume(continuation, value)
                return result

            outcome = self._run_main(resume_main)
        tag = outcome[0]
        if tag == "yield":
            self._continuation = outcome[2]
            return CoroutineResult(done=False, value=outcome[1])
        self._finished = True
        return CoroutineResult(done=True, value=outcome[1])

    def _initial_main(self):
        fn = self._fn

        def process(controller):
            def suspend(value: Any):
                return Invoke(controller, lambda k: ("yield", value, k))

            result = yield Call(fn, suspend)
            return ("done", result)

        outcome = yield Spawn(process)
        return outcome

    def _run_main(self, main: Callable[[], Any]) -> Any:
        self._runtime.start(main)
        while not self._runtime.halted:
            self._runtime.step_n(1024)
        result = self._runtime.result
        if not (isinstance(result, tuple) and result and result[0] in ("yield", "done")):
            # The coroutine body aborted through some other control
            # path; report it as a completion.
            return ("done", result)
        return result
