"""Derived combinators over the tasklet runtime.

Python-level twins of the paper's Section 5 derivations: nonlocal exit
(``spawn/exit``), ``first-true`` and a ``parallel-map`` built on
``pcall``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.runtime.effects import Call, Invoke, Pcall, Spawn

__all__ = ["spawn_exit", "first_true", "parallel_map"]


def spawn_exit(proc: Callable[[Callable[[Any], Any]], Any]):
    """Tasklet: run ``proc`` with a one-argument ``exit`` effect-maker.

    ``proc`` receives ``exit``; yielding ``exit(value)`` aborts the
    whole ``spawn_exit`` computation with ``value`` — the paper's
    ``spawn/exit`` with the controller hidden behind a restricted
    interface.

    Usage::

        def body(exit):
            for item in items:
                if bad(item):
                    yield exit("bad!")
            return "ok"

        result = yield Call(spawn_exit, body)
    """

    def process(controller):
        def exit(value: Any):
            # Receiver discards the captured subtree: pure abort.
            return Invoke(controller, lambda _continuation: value)

        result = yield Call(proc, exit)
        return result

    result = yield Spawn(process)
    return result


def first_true(*procs: Callable[[], Any]):
    """Tasklet: run ``procs`` concurrently; the first truthy result
    aborts the rest and wins; falsy if none are truthy."""

    def body(exit):
        def make_branch(proc: Callable[[], Any]):
            def run():
                value = yield Call(proc)
                if value:
                    yield exit(value)
                return value

            return run

        yield Pcall(lambda *values: False, *[make_branch(p) for p in procs])
        return False

    result = yield Call(spawn_exit, body)
    return result


def parallel_map(fn: Callable[[Any], Any], items: Iterable[Any]):
    """Tasklet: apply tasklet function ``fn`` to every item as parallel
    ``pcall`` branches; returns the list of results in order."""
    items = list(items)

    def make_branch(item: Any):
        def run():
            value = yield Call(fn, item)
            return value

        return run

    results = yield Pcall(lambda *values: list(values), *[make_branch(x) for x in items])
    return results
