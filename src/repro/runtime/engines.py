"""Engines — timed preemption from process continuations.

Dybvig & Hieb, "Engines from Continuations" (the paper's reference
[6]), derive engines from first-class continuations; here they fall out
of the tasklet runtime's suspension machinery.  An engine is a
computation that runs for a bounded amount of *fuel* (scheduler steps)
and either completes — yielding its value and the unused fuel — or
expires — yielding a fresh engine for the rest of the computation.

    engine = make_engine(worker_tasklet)
    outcome = engine.run(100)
    if outcome.done:
        print(outcome.value, outcome.remaining_fuel)
    else:
        engine = outcome.engine      # the rest of the computation
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import RuntimeAPIError
from repro.runtime.tasklets import Runtime

__all__ = ["Engine", "EngineOutcome", "make_engine"]


@dataclass(frozen=True)
class EngineOutcome:
    """Result of :meth:`Engine.run`."""

    done: bool
    value: Any = None
    remaining_fuel: int = 0
    engine: "Engine | None" = None


class Engine:
    """A resumable bounded computation.

    Engines are linear: once run to expiry, continue with the outcome's
    ``engine`` (which happens to be the same object, re-armed); running
    a completed engine raises.
    """

    def __init__(self, runtime: Runtime):
        self._runtime = runtime
        self._spent = False

    def run(self, fuel: int) -> EngineOutcome:
        """Burn up to ``fuel`` scheduler steps."""
        if fuel <= 0:
            raise RuntimeAPIError("engine fuel must be positive")
        if self._spent:
            raise RuntimeAPIError("engine already completed")
        runtime = self._runtime
        start = runtime.steps
        halted = runtime.step_n(fuel)
        used = runtime.steps - start
        if halted:
            self._spent = True
            return EngineOutcome(
                done=True, value=runtime.result, remaining_fuel=fuel - used
            )
        return EngineOutcome(done=False, engine=self)

    @property
    def mileage(self) -> int:
        """Total steps this engine has consumed so far."""
        return self._runtime.steps


def make_engine(fn: Callable[..., Any], *args: Any, quantum: int = 8) -> Engine:
    """Wrap tasklet function ``fn`` as an engine."""
    runtime = Runtime(quantum=quantum)
    runtime.start(fn, *args)
    return Engine(runtime)


def round_robin(engines: list[Engine], fuel_each: int, max_rounds: int = 10_000) -> list[Any]:
    """Run engines round-robin until all complete; returns values in
    the order the engines were given.  A simple fair scheduler built
    from engines, as in reference [6]."""
    results: dict[int, Any] = {}
    live = list(enumerate(engines))
    rounds = 0
    while live:
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeAPIError("round_robin: exceeded max_rounds")
        still_live: list[tuple[int, Engine]] = []
        for index, engine in live:
            outcome = engine.run(fuel_each)
            if outcome.done:
                results[index] = outcome.value
            else:
                still_live.append((index, outcome.engine))  # type: ignore[arg-type]
        live = still_live
    return [results[i] for i in range(len(engines))]
