"""Effect requests and handle objects for the tasklet runtime.

A tasklet is a generator; every ``yield`` hands the scheduler one of
the effect objects below and receives the effect's result when the
tasklet is resumed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable

__all__ = [
    "Effect",
    "Call",
    "Spawn",
    "Pcall",
    "Invoke",
    "Resume",
    "MakeFuture",
    "Touch",
    "Controller",
    "SubContinuation",
    "Placeholder",
]


class Effect:
    """Base class of all yieldable requests."""

    __slots__ = ()


@dataclass(frozen=True)
class Call(Effect):
    """Call another tasklet function (or plain callable) with ``args``;
    the result becomes the value of the ``yield``.

    Generator results run as nested segment frames — this is how deep
    tasklet call stacks are built.
    """

    fn: Callable[..., Any]
    args: tuple[Any, ...] = ()

    def __init__(self, fn: Callable[..., Any], *args: Any):
        object.__setattr__(self, "fn", fn)
        object.__setattr__(self, "args", args)


@dataclass(frozen=True)
class Spawn(Effect):
    """Run ``proc`` as a process: a fresh root is planted here and
    ``proc`` is called with the root's :class:`Controller`.

    The value of the ``yield`` is the process's normal return value, or
    whatever a controller receiver aborts with.
    """

    proc: Callable[["Controller"], Any]


@dataclass(frozen=True)
class Pcall(Effect):
    """Evaluate ``branches`` concurrently (each a zero-argument tasklet
    function), then apply plain callable ``combine`` to their values.
    """

    combine: Callable[..., Any]
    branches: tuple[Callable[[], Any], ...]

    def __init__(self, combine: Callable[..., Any], *branches: Callable[[], Any]):
        object.__setattr__(self, "combine", combine)
        object.__setattr__(self, "branches", branches)


@dataclass(frozen=True)
class Invoke(Effect):
    """Apply a process controller.

    Captures-and-aborts back to the controller's root and calls
    ``receiver`` (plain callable or tasklet function) with the captured
    :class:`SubContinuation` in the context above the root.
    """

    controller: "Controller"
    receiver: Callable[["SubContinuation"], Any]


@dataclass(frozen=True)
class Resume(Effect):
    """Reinstate a captured subtree, delivering ``value`` at its hole.
    Composes with the current continuation.  One-shot."""

    continuation: "SubContinuation"
    value: Any = None


@dataclass(frozen=True)
class MakeFuture(Effect):
    """Start ``fn`` as an *independent* process (its own tree in the
    forest — Section 8); yields a :class:`Placeholder` immediately."""

    fn: Callable[[], Any]
    args: tuple[Any, ...] = ()

    def __init__(self, fn: Callable[..., Any], *args: Any):
        object.__setattr__(self, "fn", fn)
        object.__setattr__(self, "args", args)


@dataclass(frozen=True)
class Touch(Effect):
    """Wait for a placeholder's value (blocks this task only)."""

    placeholder: "Placeholder"


_ids = itertools.count()


class Controller:
    """Handle for a process root (opaque; used in :class:`Invoke`)."""

    __slots__ = ("uid", "name")

    def __init__(self, name: str | None = None):
        self.uid = next(_ids)
        self.name = name or f"c{self.uid}"

    def __repr__(self) -> str:
        return f"<controller {self.name}>"


class SubContinuation:
    """A captured subtree (one-shot).  ``used`` flips on first Resume."""

    __slots__ = ("uid", "subtree", "hole", "used")

    def __init__(self, subtree: Any, hole: Any):
        self.uid = next(_ids)
        self.subtree = subtree
        self.hole = hole
        self.used = False

    def __repr__(self) -> str:
        state = "used" if self.used else "ready"
        return f"<subcontinuation {self.uid} {state}>"


class Placeholder:
    """A Multilisp-style future's eventual value."""

    __slots__ = ("uid", "resolved", "value", "waiters")

    def __init__(self) -> None:
        self.uid = next(_ids)
        self.resolved = False
        self.value: Any = None
        self.waiters: list[Any] = []

    def __repr__(self) -> str:
        state = f"= {self.value!r}" if self.resolved else "pending"
        return f"<placeholder {self.uid} {state}>"
