"""Python-native process trees.

The tasklet runtime gives plain Python code the paper's control
algebra — ``spawn``, process controllers, subtree capture, ``pcall``,
plus Multilisp-style ``future``/``touch`` (the Section 8 "forest of
trees").  User code is written as generator functions that ``yield``
effect requests:

    from repro.runtime import Runtime, Spawn, Pcall, Invoke, Resume, Call

    def main():
        def process(ctrl):
            value = yield Invoke(ctrl, lambda k: ("suspended", k))
            return value * 10
        tag, k = yield Spawn(process)
        result = yield Resume(k, 4)      # -> 40
        return result

    Runtime().run(main)                  # => 40

Because Python generators cannot be cloned, process continuations here
are **one-shot**: a second ``Resume`` raises
:class:`~repro.errors.ContinuationReusedError`.  The multi-shot
algebra lives in the Scheme machine (:mod:`repro.machine`); this
runtime shares its tree discipline, not its persistence.

Derived abstractions built on top:
:func:`repro.runtime.highlevel.spawn_exit`,
:func:`repro.runtime.highlevel.first_true`,
:class:`repro.runtime.engines.Engine`,
:class:`repro.runtime.coroutines.Coroutine`.
"""

from repro.runtime.effects import (
    Effect,
    Call,
    Spawn,
    Pcall,
    Invoke,
    Resume,
    MakeFuture,
    Touch,
    Controller,
    SubContinuation,
    Placeholder,
)
from repro.runtime.tasklets import Runtime
from repro.runtime.highlevel import spawn_exit, first_true, parallel_map
from repro.runtime.engines import Engine, make_engine
from repro.runtime.coroutines import Coroutine

__all__ = [
    "Effect",
    "Call",
    "Spawn",
    "Pcall",
    "Invoke",
    "Resume",
    "MakeFuture",
    "Touch",
    "Controller",
    "SubContinuation",
    "Placeholder",
    "Runtime",
    "spawn_exit",
    "first_true",
    "parallel_map",
    "Engine",
    "make_engine",
    "Coroutine",
]
