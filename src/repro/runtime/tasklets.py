"""The tasklet scheduler: process trees over Python generators.

Mirrors the abstract machine's tree discipline
(:mod:`repro.machine.tree`) with generator stacks as segments.  Because
generators cannot be cloned, captures are *moves* and resumptions are
one-shot; everything else — validity by structural walk-up, smallest
complete subtree, composition on reinstatement — matches the machine.
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from typing import Any, Callable

from repro.errors import (
    ContinuationReusedError,
    DeadControllerError,
    RuntimeAPIError,
    StepBudgetExceeded,
)
from repro.runtime.effects import (
    Call,
    Controller,
    Invoke,
    MakeFuture,
    Pcall,
    Placeholder,
    Resume,
    Spawn,
    SubContinuation,
    Touch,
)

__all__ = ["Runtime", "RTask", "RTaskState"]


class RTaskState(enum.Enum):
    RUNNABLE = "runnable"
    SUSPENDED = "suspended"
    WAITING = "waiting"
    DEAD = "dead"


_ids = itertools.count()


class RTask:
    """A leaf: a stack of generator frames plus a link."""

    __slots__ = ("uid", "stack", "inject", "link", "state")

    def __init__(self, stack: list[Any], link: Any):
        self.uid = next(_ids)
        self.stack = stack
        self.inject: tuple[str, Any] = ("value", None)
        self.link = link
        self.state = RTaskState.RUNNABLE

    def __repr__(self) -> str:
        return f"<rtask {self.uid} depth={len(self.stack)} {self.state.value}>"


class _RHalt:
    """Root of a tree in the forest: the main tree or a future."""

    __slots__ = ("runtime", "placeholder")

    def __init__(self, runtime: "Runtime", placeholder: Placeholder | None = None):
        self.runtime = runtime
        self.placeholder = placeholder


class _RLabel:
    """A process root (spawn boundary)."""

    __slots__ = ("controller", "cont_stack", "cont_link", "child")

    def __init__(self, controller: Controller, cont_stack: list[Any], cont_link: Any):
        self.controller = controller
        self.cont_stack = cont_stack
        self.cont_link = cont_link
        self.child: Any = None


class _RFork:
    __slots__ = ("join", "index")

    def __init__(self, join: "_RJoin", index: int):
        self.join = join
        self.index = index


class _RJoin:
    __slots__ = ("combine", "slots", "remaining", "children", "cont_stack", "cont_link")

    def __init__(
        self,
        combine: Callable[..., Any],
        nbranches: int,
        cont_stack: list[Any],
        cont_link: Any,
    ):
        self.combine = combine
        self.slots: list[Any] = [None] * nbranches
        self.remaining = nbranches
        self.children: list[Any] = [None] * nbranches
        self.cont_stack = cont_stack
        self.cont_link = cont_link


def _is_generator(obj: Any) -> bool:
    return hasattr(obj, "send") and hasattr(obj, "throw")


class _PoisonedValue:
    """A placeholder value recording that its future raised."""

    __slots__ = ("error",)

    def __init__(self, error: BaseException):
        self.error = error

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<poisoned {self.error!r}>"


class Runtime:
    """Schedules tasklets over a forest of process trees.

    Typical use::

        result = Runtime().run(main_tasklet)

    For engines and coroutines the incremental interface is exposed:
    :meth:`start`, :meth:`step_n`, :attr:`halted`, :attr:`result`.
    ``quantum`` is the number of scheduler steps a task gets before
    rotation (round-robin, deterministic).
    """

    def __init__(self, quantum: int = 8, max_steps: int | None = None):
        self.quantum = max(1, quantum)
        self.max_steps = max_steps
        self.queue: deque[RTask] = deque()
        self.main_root: Any = None
        self.halted = False
        self.result: Any = None
        self.steps = 0
        self.stats = {"spawns": 0, "forks": 0, "captures": 0, "resumes": 0, "futures": 0}

    # -- public entry points ------------------------------------------------

    def run(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run ``fn`` (a tasklet function) to completion."""
        self.start(fn, *args)
        while not self.halted:
            if not self.step_n(1024):
                continue
        return self.result

    def start(self, fn: Callable[..., Any], *args: Any) -> None:
        """Arrange for ``fn(*args)`` to run as the main tree."""
        halt = _RHalt(self)
        task = RTask([], halt)
        self.main_root = task
        self.halted = False
        self.result = None
        self._begin_call(task, fn, args)
        self.enqueue(task)

    def step_n(self, n: int) -> bool:
        """Run up to ``n`` scheduler steps; True iff the main tree
        halted.  Raises on deadlock."""
        remaining = n
        while remaining > 0 and not self.halted:
            task = self._pick()
            if task is None:
                self._raise_deadlock()
            budget = min(self.quantum, remaining)
            while budget > 0 and task.state is RTaskState.RUNNABLE and not self.halted:
                self._step(task)
                self.steps += 1
                remaining -= 1
                budget -= 1
                if self.max_steps is not None and self.steps > self.max_steps:
                    raise StepBudgetExceeded(self.steps)
            if task.state is RTaskState.RUNNABLE and not self.halted:
                self.queue.append(task)
        return self.halted

    def enqueue(self, task: RTask) -> None:
        self.queue.append(task)

    # -- internals ------------------------------------------------------------

    def _pick(self) -> RTask | None:
        while self.queue:
            task = self.queue.popleft()
            if task.state is RTaskState.RUNNABLE:
                return task
        return None

    def _raise_deadlock(self) -> None:
        raise RuntimeAPIError(
            "deadlock: no runnable tasks (a Touch on a placeholder whose "
            "future can no longer run, or a dropped subcontinuation held "
            "the only path to the root)"
        )

    def _begin_call(self, task: RTask, fn: Callable[..., Any], args: tuple) -> None:
        """Invoke fn; push a generator frame or deliver a plain value."""
        outcome = fn(*args)
        if _is_generator(outcome):
            task.stack.append(outcome)
            task.inject = ("value", None)
        else:
            task.inject = ("value", outcome)

    def _step(self, task: RTask) -> None:
        if not task.stack:
            kind, payload = task.inject
            if kind == "error":
                self._deliver_error_through_link(task, payload)
            else:
                self._deliver_through_link(task, payload)
            return
        generator = task.stack[-1]
        kind, payload = task.inject
        task.inject = ("value", None)
        try:
            if kind == "value":
                effect = generator.send(payload)
            else:
                effect = generator.throw(payload)
        except StopIteration as stop:
            task.stack.pop()
            task.inject = ("value", stop.value)
            return
        except Exception as exc:  # propagate into the caller frame
            task.stack.pop()
            task.inject = ("error", exc)
            return
        self._handle_effect(task, effect)

    # -- effect handlers -------------------------------------------------------

    def _handle_effect(self, task: RTask, effect: Any) -> None:
        if isinstance(effect, Call):
            self._begin_call(task, effect.fn, effect.args)
        elif isinstance(effect, Spawn):
            self._do_spawn(task, effect)
        elif isinstance(effect, Pcall):
            self._do_pcall(task, effect)
        elif isinstance(effect, Invoke):
            self._do_invoke(task, effect)
        elif isinstance(effect, Resume):
            self._do_resume(task, effect)
        elif isinstance(effect, MakeFuture):
            self._do_future(task, effect)
        elif isinstance(effect, Touch):
            self._do_touch(task, effect)
        else:
            task.inject = (
                "error",
                RuntimeAPIError(f"tasklet yielded a non-effect: {effect!r}"),
            )

    def _do_spawn(self, task: RTask, effect: Spawn) -> None:
        self.stats["spawns"] += 1
        controller = Controller()
        label = _RLabel(controller, task.stack, task.link)
        self._replace_child(task.link, label)
        label.child = task
        task.stack = []
        task.link = label
        self._begin_call(task, effect.proc, (controller,))

    def _do_pcall(self, task: RTask, effect: Pcall) -> None:
        self.stats["forks"] += 1
        branches = effect.branches
        join = _RJoin(effect.combine, len(branches), task.stack, task.link)
        self._replace_child(task.link, join)
        task.state = RTaskState.DEAD
        for index, branch in enumerate(branches):
            child = RTask([], _RFork(join, index))
            join.children[index] = child
            self._begin_call(child, branch, ())
            self.enqueue(child)
        if not branches:
            self._fire_join(join)

    def _do_invoke(self, task: RTask, effect: Invoke) -> None:
        label = self._find_label(task, effect.controller)
        if label is None:
            task.inject = (
                "error",
                DeadControllerError(
                    f"{effect.controller!r}: its root is not in the "
                    "continuation of this application"
                ),
            )
            return
        self.stats["captures"] += 1
        for subtree_task in self._subtree_tasks(label):
            subtree_task.state = RTaskState.SUSPENDED
        continuation = SubContinuation(subtree=label, hole=task)
        cont_stack, cont_link = label.cont_stack, label.cont_link
        label.cont_stack, label.cont_link = [], None
        successor = RTask(cont_stack, cont_link)
        self._replace_child(cont_link, successor)
        self._begin_call(successor, effect.receiver, (continuation,))
        self.enqueue(successor)

    def _do_resume(self, task: RTask, effect: Resume) -> None:
        continuation = effect.continuation
        if continuation.used:
            task.inject = (
                "error",
                ContinuationReusedError(
                    "subcontinuations in the Python runtime are one-shot "
                    "(generators cannot be cloned); use the Scheme machine "
                    "for multi-shot process continuations"
                ),
            )
            return
        continuation.used = True
        self.stats["resumes"] += 1
        label: _RLabel = continuation.subtree
        hole: RTask = continuation.hole
        # Compose: the invoking task's continuation becomes the parent.
        label.cont_stack = task.stack
        label.cont_link = task.link
        self._replace_child(task.link, label)
        task.state = RTaskState.DEAD
        for subtree_task in self._subtree_tasks(label):
            subtree_task.state = RTaskState.RUNNABLE
            self.enqueue(subtree_task)
        hole.inject = ("value", effect.value)

    def _do_future(self, task: RTask, effect: MakeFuture) -> None:
        self.stats["futures"] += 1
        placeholder = Placeholder()
        root = RTask([], _RHalt(self, placeholder))
        self._begin_call(root, effect.fn, effect.args)
        self.enqueue(root)
        task.inject = ("value", placeholder)

    def _do_touch(self, task: RTask, effect: Touch) -> None:
        placeholder = effect.placeholder
        if placeholder.resolved:
            if isinstance(placeholder.value, _PoisonedValue):
                task.inject = ("error", placeholder.value.error)
            else:
                task.inject = ("value", placeholder.value)
            return
        task.state = RTaskState.WAITING
        placeholder.waiters.append(task)

    # -- tree plumbing ----------------------------------------------------------

    def _replace_child(self, link: Any, new: Any) -> None:
        if isinstance(link, _RHalt):
            if link.placeholder is None:
                self.main_root = new
            # Future roots are not tracked individually; nothing to do.
        elif isinstance(link, _RLabel):
            link.child = new
        elif isinstance(link, _RFork):
            link.join.children[link.index] = new
        elif link is None:
            raise RuntimeAPIError("entity is detached from the tree")
        else:  # pragma: no cover - defensive
            raise TypeError(f"not a link: {link!r}")

    def _find_label(self, task: RTask, controller: Controller) -> _RLabel | None:
        link = task.link
        while True:
            if isinstance(link, _RHalt) or link is None:
                return None
            if isinstance(link, _RLabel):
                if link.controller is controller:
                    return link
                link = link.cont_link
            elif isinstance(link, _RFork):
                link = link.join.cont_link
            else:  # pragma: no cover - defensive
                raise TypeError(f"not a link: {link!r}")

    def _subtree_tasks(self, root: Any) -> list[RTask]:
        tasks: list[RTask] = []
        stack = [root]
        while stack:
            entity = stack.pop()
            if entity is None:
                continue
            if isinstance(entity, RTask):
                tasks.append(entity)
            elif isinstance(entity, _RLabel):
                stack.append(entity.child)
            elif isinstance(entity, _RJoin):
                stack.extend(entity.children)
        return tasks

    def _deliver_through_link(self, task: RTask, value: Any) -> None:
        link = task.link
        if isinstance(link, _RHalt):
            task.state = RTaskState.DEAD
            if link.placeholder is None:
                self.halted = True
                self.result = value
            else:
                placeholder = link.placeholder
                placeholder.resolved = True
                placeholder.value = value
                for waiter in placeholder.waiters:
                    waiter.state = RTaskState.RUNNABLE
                    waiter.inject = ("value", value)
                    self.enqueue(waiter)
                placeholder.waiters.clear()
            return
        if isinstance(link, _RLabel):
            task.stack = link.cont_stack
            task.link = link.cont_link
            self._replace_child(task.link, task)
            task.inject = ("value", value)
            return
        if isinstance(link, _RFork):
            join = link.join
            join.slots[link.index] = value
            join.children[link.index] = None
            join.remaining -= 1
            task.state = RTaskState.DEAD
            if join.remaining == 0:
                self._fire_join(join)
            return
        raise TypeError(f"not a link: {link!r}")  # pragma: no cover

    def _deliver_error_through_link(self, task: RTask, error: BaseException) -> None:
        """Propagate an exception outward through the task's link.

        * Through a spawn label: the parent frame sees the exception at
          its ``yield Spawn`` — ordinary try/except applies.
        * Through a fork: the first failing branch wins; sibling
          branches are abandoned and the exception continues at the
          join's continuation (the ``yield Pcall``).
        * At a tree root: the main tree re-raises from :meth:`run`; a
          future tree poisons its placeholder so every toucher
          re-raises.
        """
        link = task.link
        if isinstance(link, _RHalt):
            task.state = RTaskState.DEAD
            if link.placeholder is None:
                raise error
            placeholder = link.placeholder
            placeholder.resolved = True
            placeholder.value = _PoisonedValue(error)
            for waiter in placeholder.waiters:
                waiter.state = RTaskState.RUNNABLE
                waiter.inject = ("error", error)
                self.enqueue(waiter)
            placeholder.waiters.clear()
            return
        if isinstance(link, _RLabel):
            task.stack = link.cont_stack
            task.link = link.cont_link
            self._replace_child(task.link, task)
            task.inject = ("error", error)
            return
        if isinstance(link, _RFork):
            join = link.join
            for child in join.children:
                if child is None:
                    continue
                for sibling in self._subtree_tasks(child):
                    if sibling is not task:
                        sibling.state = RTaskState.DEAD
            task.state = RTaskState.DEAD
            successor = RTask(join.cont_stack, join.cont_link)
            self._replace_child(join.cont_link, successor)
            successor.inject = ("error", error)
            self.enqueue(successor)
            return
        raise error  # pragma: no cover - detached task

    def _fire_join(self, join: _RJoin) -> None:
        successor = RTask(join.cont_stack, join.cont_link)
        self._replace_child(join.cont_link, successor)
        self._begin_call(successor, join.combine, tuple(join.slots))
        self.enqueue(successor)
