"""Core intermediate representation.

The expander lowers every surface form into the eight node types defined
in :mod:`repro.ir.nodes`.  The abstract machine evaluates exactly this
IR; nothing downstream ever sees surface syntax or macros.
"""

from repro.ir.nodes import (
    Node,
    Const,
    Var,
    Lambda,
    App,
    If,
    SetBang,
    Seq,
    DefineTop,
    Pcall,
)
from repro.ir.free_vars import free_variables
from repro.ir.pretty import pretty

__all__ = [
    "Node",
    "Const",
    "Var",
    "Lambda",
    "App",
    "If",
    "SetBang",
    "Seq",
    "DefineTop",
    "Pcall",
    "free_variables",
    "pretty",
]
