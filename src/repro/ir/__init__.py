"""Core intermediate representation.

The expander lowers every surface form into the eight node types defined
in :mod:`repro.ir.nodes`.  The resolver (:mod:`repro.ir.resolve`) then
optionally rewrites variable references into lexically addressed /
global-cell forms — four further node types the machine evaluates with
no run-time name lookup.  The abstract machine evaluates exactly this
IR; nothing downstream ever sees surface syntax or macros.
"""

from repro.ir.nodes import (
    Node,
    Const,
    Var,
    Lambda,
    App,
    If,
    SetBang,
    Seq,
    DefineTop,
    Pcall,
    LocalRef,
    LocalSet,
    GlobalRef,
    GlobalSet,
)
from repro.ir.free_vars import free_variables
from repro.ir.pretty import pretty
from repro.ir.resolve import ResolverStats, resolve_node, resolve_program

__all__ = [
    "Node",
    "Const",
    "Var",
    "Lambda",
    "App",
    "If",
    "SetBang",
    "Seq",
    "DefineTop",
    "Pcall",
    "LocalRef",
    "LocalSet",
    "GlobalRef",
    "GlobalSet",
    "free_variables",
    "pretty",
    "ResolverStats",
    "resolve_node",
    "resolve_program",
]
