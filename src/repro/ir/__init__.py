"""Core intermediate representation.

The expander lowers every surface form into the eight node types defined
in :mod:`repro.ir.nodes`.  The resolver (:mod:`repro.ir.resolve`) then
optionally rewrites variable references into lexically addressed /
global-cell forms — four further node types the machine evaluates with
no run-time name lookup.  The closure compiler (:mod:`repro.ir.compile`)
can go one step further and translate resolved IR into executable code
thunks, removing node dispatch from the machine's hot loop entirely.
The abstract machine evaluates exactly this IR (or its compiled form);
nothing downstream ever sees surface syntax or macros.
"""

from repro.ir.nodes import (
    Node,
    Const,
    Var,
    Lambda,
    App,
    If,
    SetBang,
    Seq,
    DefineTop,
    Pcall,
    LocalRef,
    LocalSet,
    GlobalRef,
    GlobalSet,
)
from repro.ir.free_vars import free_variables
from repro.ir.hashing import stable_hash
from repro.ir.pretty import pretty
from repro.ir.resolve import ResolverStats, resolve_node, resolve_program

# Imported last: repro.ir.compile and repro.ir.codegen depend on
# repro.machine, which in turn imports repro.ir — by this point every
# name above is bound, so the cycle resolves cleanly from either entry
# direction.
from repro.ir.compile import CompileStats, compile_node, compile_program
from repro.ir.codegen import CodegenStats, codegen_node, codegen_program

__all__ = [
    "Node",
    "Const",
    "Var",
    "Lambda",
    "App",
    "If",
    "SetBang",
    "Seq",
    "DefineTop",
    "Pcall",
    "LocalRef",
    "LocalSet",
    "GlobalRef",
    "GlobalSet",
    "free_variables",
    "pretty",
    "stable_hash",
    "ResolverStats",
    "resolve_node",
    "resolve_program",
    "CompileStats",
    "compile_node",
    "compile_program",
    "CodegenStats",
    "codegen_node",
    "codegen_program",
]
