"""Render IR back into readable s-expression text (for debugging and
for golden tests on the expander)."""

from __future__ import annotations

from repro.datum import scheme_repr
from repro.ir.nodes import (
    App,
    Const,
    DefineTop,
    GlobalRef,
    GlobalSet,
    If,
    Lambda,
    LocalRef,
    LocalSet,
    Node,
    Pcall,
    Seq,
    SetBang,
    Var,
)

__all__ = ["pretty"]


def pretty(node: Node) -> str:
    """One-line s-expression rendering of an IR tree."""
    if isinstance(node, Const):
        value = node.value
        rendered = scheme_repr(value)
        # Symbols and lists must be quoted to read back as constants.
        from repro.datum import NIL, Pair, Symbol

        if isinstance(value, (Symbol, Pair)) or value is NIL:
            return f"'{rendered}"
        return rendered
    if isinstance(node, Var):
        return node.name.name
    if isinstance(node, LocalRef):
        return f"{node.name.name}@{node.depth}.{node.index}"
    if isinstance(node, GlobalRef):
        return f"{node.cell.name.name}@global"
    if isinstance(node, LocalSet):
        return (
            f"(set! {node.name.name}@{node.depth}.{node.index} {pretty(node.expr)})"
        )
    if isinstance(node, GlobalSet):
        return f"(set! {node.cell.name.name}@global {pretty(node.expr)})"
    if isinstance(node, Lambda):
        params = [p.name for p in node.params]
        if node.rest is not None:
            formals = (
                "(" + " ".join(params) + " . " + node.rest.name + ")"
                if params
                else node.rest.name
            )
        else:
            formals = "(" + " ".join(params) + ")"
        return f"(lambda {formals} {pretty(node.body)})"
    if isinstance(node, App):
        inner = " ".join([pretty(node.fn)] + [pretty(a) for a in node.args])
        return f"({inner})"
    if isinstance(node, If):
        return f"(if {pretty(node.test)} {pretty(node.then)} {pretty(node.els)})"
    if isinstance(node, SetBang):
        return f"(set! {node.name.name} {pretty(node.expr)})"
    if isinstance(node, Seq):
        return "(begin " + " ".join(pretty(e) for e in node.exprs) + ")"
    if isinstance(node, DefineTop):
        return f"(define {node.name.name} {pretty(node.expr)})"
    if isinstance(node, Pcall):
        return "(pcall " + " ".join(pretty(e) for e in node.exprs) + ")"
    raise TypeError(f"unknown IR node: {node!r}")
