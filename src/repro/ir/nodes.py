"""IR node definitions.

All nodes are immutable.  ``Pcall`` is the tree-structured concurrency
form from the paper (Multilisp's ``pcall``): all subexpressions —
operator included — are evaluated in parallel branches of the process
tree, then the operator value is applied to the argument values as in a
normal call.

The expander emits the first eight node kinds only; the resolver pass
(:mod:`repro.ir.resolve`) rewrites ``Var``/``SetBang`` into the four
*resolved* kinds — ``LocalRef``/``LocalSet`` carrying ``(depth,
index)`` lexical addresses and ``GlobalRef``/``GlobalSet`` carrying an
interned global cell — and stamps each ``Lambda`` with the slot count
of its rib.  The machine evaluates either dialect; a program is always
entirely one or the other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.datum import Symbol

__all__ = [
    "Node",
    "Const",
    "Var",
    "Lambda",
    "App",
    "If",
    "SetBang",
    "Seq",
    "DefineTop",
    "Pcall",
    "LocalRef",
    "LocalSet",
    "GlobalRef",
    "GlobalSet",
]


@dataclass(frozen=True)
class Node:
    """Base class for IR nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Const(Node):
    """A self-evaluating constant (also the result of ``quote``)."""

    value: Any


@dataclass(frozen=True)
class Var(Node):
    """A variable reference, resolved at run time against the
    environment chain (lexical frames, then the global table)."""

    name: Symbol

    def __repr__(self) -> str:
        return f"Var({self.name.name})"


@dataclass(frozen=True)
class Lambda(Node):
    """A procedure abstraction.

    ``params`` are the required formals; ``rest`` (if not None) collects
    extra arguments into a list, covering both ``(lambda (a . r) ...)``
    and ``(lambda args ...)`` (empty params, rest = args).
    ``name`` is a debug label filled in by ``define``/``let`` when the
    procedure has an obvious name.
    """

    params: tuple[Symbol, ...]
    rest: Symbol | None
    body: Node
    name: str | None = field(default=None, compare=False)
    #: Slot count of the rib this lambda allocates per application —
    #: ``len(params)`` plus one for ``rest``.  ``None`` means the
    #: lambda is unresolved (dict-chain mode); 0 means the resolver
    #: proved no rib is needed (a thunk) and application reuses the
    #: closure's environment directly.
    nslots: int | None = field(default=None, compare=False)
    #: Conservative capture/effect facts (an
    #: :class:`repro.analysis.effects.EffectInfo`) stamped by the
    #: analysis phase after resolution; ``None`` until the phase runs.
    #: Derived data, like ``nslots``: excluded from equality and from
    #: the ``ir-hash-v1`` digest.
    effects: Any = field(default=None, compare=False)


@dataclass(frozen=True)
class App(Node):
    """Procedure application with left-to-right evaluation."""

    fn: Node
    args: tuple[Node, ...]


@dataclass(frozen=True)
class If(Node):
    """Two- or one-armed conditional (missing alternative becomes
    ``Const(UNSPECIFIED)`` in the expander)."""

    test: Node
    then: Node
    els: Node


@dataclass(frozen=True)
class SetBang(Node):
    """Assignment to an existing binding."""

    name: Symbol
    expr: Node


@dataclass(frozen=True)
class Seq(Node):
    """``begin``: evaluate in order, yield the last value.

    The expander guarantees ``exprs`` is non-empty.
    """

    exprs: tuple[Node, ...]


@dataclass(frozen=True)
class DefineTop(Node):
    """A top-level definition.  Only legal at program top level; the
    expander rewrites internal defines into ``letrec``."""

    name: Symbol
    expr: Node


@dataclass(frozen=True)
class LocalRef(Node):
    """A lexically addressed variable reference: walk ``depth`` parent
    ribs, read slot ``index``.  ``name`` is carried for debugging and
    pretty-printing only."""

    depth: int
    index: int
    name: Symbol = field(compare=False)

    def __repr__(self) -> str:
        return f"LocalRef({self.name.name}@{self.depth}.{self.index})"


@dataclass(frozen=True)
class LocalSet(Node):
    """Assignment to a lexically addressed binding."""

    depth: int
    index: int
    expr: Node
    name: Symbol = field(compare=False)

    def __repr__(self) -> str:
        return f"LocalSet({self.name.name}@{self.depth}.{self.index}, {self.expr!r})"


@dataclass(frozen=True)
class GlobalRef(Node):
    """A reference through an interned global cell (one attribute read
    at run time).  ``cell`` is a
    :class:`repro.machine.environment.GlobalCell`; it may still be
    unbound when this node is built — first touch checks."""

    cell: Any

    def __repr__(self) -> str:
        return f"GlobalRef({self.cell.name.name})"


@dataclass(frozen=True)
class GlobalSet(Node):
    """Assignment through an interned global cell."""

    cell: Any
    expr: Node

    def __repr__(self) -> str:
        return f"GlobalSet({self.cell.name.name}, {self.expr!r})"


@dataclass(frozen=True)
class Pcall(Node):
    """Tree-structured parallel call.

    ``exprs[0]`` is the operator expression, ``exprs[1:]`` the argument
    expressions; all are evaluated concurrently (one process-tree branch
    each) and joined into an ordinary application.
    """

    exprs: tuple[Node, ...]
