"""IR node definitions.

All nodes are immutable.  ``Pcall`` is the tree-structured concurrency
form from the paper (Multilisp's ``pcall``): all subexpressions —
operator included — are evaluated in parallel branches of the process
tree, then the operator value is applied to the argument values as in a
normal call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.datum import Symbol

__all__ = [
    "Node",
    "Const",
    "Var",
    "Lambda",
    "App",
    "If",
    "SetBang",
    "Seq",
    "DefineTop",
    "Pcall",
]


@dataclass(frozen=True)
class Node:
    """Base class for IR nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Const(Node):
    """A self-evaluating constant (also the result of ``quote``)."""

    value: Any


@dataclass(frozen=True)
class Var(Node):
    """A variable reference, resolved at run time against the
    environment chain (lexical frames, then the global table)."""

    name: Symbol

    def __repr__(self) -> str:
        return f"Var({self.name.name})"


@dataclass(frozen=True)
class Lambda(Node):
    """A procedure abstraction.

    ``params`` are the required formals; ``rest`` (if not None) collects
    extra arguments into a list, covering both ``(lambda (a . r) ...)``
    and ``(lambda args ...)`` (empty params, rest = args).
    ``name`` is a debug label filled in by ``define``/``let`` when the
    procedure has an obvious name.
    """

    params: tuple[Symbol, ...]
    rest: Symbol | None
    body: Node
    name: str | None = field(default=None, compare=False)


@dataclass(frozen=True)
class App(Node):
    """Procedure application with left-to-right evaluation."""

    fn: Node
    args: tuple[Node, ...]


@dataclass(frozen=True)
class If(Node):
    """Two- or one-armed conditional (missing alternative becomes
    ``Const(UNSPECIFIED)`` in the expander)."""

    test: Node
    then: Node
    els: Node


@dataclass(frozen=True)
class SetBang(Node):
    """Assignment to an existing binding."""

    name: Symbol
    expr: Node


@dataclass(frozen=True)
class Seq(Node):
    """``begin``: evaluate in order, yield the last value.

    The expander guarantees ``exprs`` is non-empty.
    """

    exprs: tuple[Node, ...]


@dataclass(frozen=True)
class DefineTop(Node):
    """A top-level definition.  Only legal at program top level; the
    expander rewrites internal defines into ``letrec``."""

    name: Symbol
    expr: Node


@dataclass(frozen=True)
class Pcall(Node):
    """Tree-structured parallel call.

    ``exprs[0]`` is the operator expression, ``exprs[1:]`` the argument
    expressions; all are evaluated concurrently (one process-tree branch
    each) and joined into an ordinary application.
    """

    exprs: tuple[Node, ...]
