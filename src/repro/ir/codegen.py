"""Engine #4: resolved IR → generated Python source → ``compile()``d code.

``codegen_program`` is an alternative fourth pipeline stage (reader →
expand → resolve → **codegen** → machine), selected with
``engine="codegen"``.  Where the closure compiler (:mod:`repro.ir.
compile`, engine ``"compiled"``) builds one small Python closure per IR
node and fuses transitions by *chaining closure calls*, this module
walks each lambda body / top-level form once and **emits straight-line
Python source** for the whole fused region — then ``compile()``s the
module a single time and caches the resulting code object under the
form's ``ir-hash-v1`` digest (:func:`repro.ir.hashing.stable_hash`).

The emitted functions obey exactly the established code-thunk contract
(``code(machine, task) -> (tag, payload) | None``, with ``.triv`` and
``.node`` attributes), so the codegen engine reuses the compiled
engine's run loops (:func:`repro.machine.step.run_quantum_compiled`,
``step_compiled``), frame VALUE delivery, snapshot ``_N_CODE``
round-trip, the analysis quantum grant, and cross-engine closure
interop without modification.  Everything outside the straight line —
control primitives, ``pcall`` forks, continuation application,
suspension — delegates through ``machine._apply_deliver`` with the
task registers spilled first, exactly as the batched engine does, so
capture/reinstate, preemption, step budgets and deadlines are
untouched.

What one emitted function fuses (per machine step):

* slot ribs as direct attribute chains (``_env.parent.values[2]``) on
  a function-local ``_env``;
* interned global cells bound as **default-argument fast locals** —
  a resolved global reference is one ``LOAD_FAST`` + one attribute
  read, with the ``UNBOUND`` guard inline;
* constants hoisted to default-argument bindings (small ints inline as
  literals);
* trivial-operand folding done at emit time, like the closure
  compiler — plus an inline *primitive guard*: an operand or ``if``
  test of the shape ``(global-op trivial...)`` is computed in the same
  step when the operator turns out to be a :class:`~repro.machine.
  values.Primitive`, with a fallback branch that materialises exactly
  the frames the closure compiler would have built and delegates
  (already-computed values are threaded through — nothing is ever
  re-evaluated, so effect/error timing is preserved);
* the apply dispatch itself: a fixed-arity resolved closure application
  writes the new :class:`~repro.machine.environment.SlotRib` and
  returns ``(EVAL, body)`` inline; a primitive applies inline; anything
  else (rest args, dict-rib closures, continuations, controllers)
  spills and delegates;
* one level of **guarded self-call inlining** for the ``(define (name
  args...) body)`` shape: an apply site whose operator is a global
  reference to the function being defined runs the body inline when
  the closure's ``.body`` is (by identity) this module's emitted body
  function — exact speculation, since a rebound global or foreign
  closure falls through to the generic dispatch.

S25 ``EffectInfo`` facts gate one further emit-time specialization: a
direct lambda application ``((lambda (x...) body) arg...)`` — the
``let`` shape — whose body is proven ``capture_free`` **and**
``spawn_free`` is inlined into the current function with its rib as a
plain Python local, eliding the ``task.env`` spill on the straight-line
path; every delegation edge inside the region re-syncs ``task.env``
first, so the elision is unobservable.

A function never loops and never recurses through an application —
``apply`` only *schedules* a closure body — so one emitted call is one
machine step, per-step work stays bounded by static expression size,
and quantum preemption is byte-identical to the other engines.

The code cache is module-level (shared by every session in the
process, which is what makes cluster restore cheap): a bounded LRU of
``digest -> (source, code object)``.  Because derived lambda facts
(``effects``) are excluded from the digest but can change the emitted
source, a hit additionally verifies the regenerated source matches
before reusing the code object; a mismatch recompiles and replaces the
entry (counted as a miss).  Stats: ``codegen.hits`` / ``misses`` /
``evictions`` / ``emit_us`` plus emit-shape counters.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from time import perf_counter
from types import CodeType
from typing import Any, Callable

from repro.datum import UNSPECIFIED
from repro.errors import CompileError, UnboundVariableError
from repro.ir.compile import compile_node
from repro.ir.compile import CompileStats as _ScratchStats
from repro.ir.hashing import stable_hash
from repro.ir.nodes import (
    App,
    Const,
    DefineTop,
    GlobalRef,
    GlobalSet,
    If,
    Lambda,
    LocalRef,
    LocalSet,
    Node,
    Pcall,
    Seq,
    SetBang,
    Var,
)
from repro.machine.environment import UNBOUND, SlotRib
from repro.machine.frames import (
    AppFrame,
    DefineFrame,
    GlobalSetFrame,
    IfFrame,
    LocalSetFrame,
    SeqFrame,
)
from repro.machine.links import ForkLink, Join
from repro.machine.task import EVAL, VALUE, Task, TaskState
from repro.machine.tree import replace_child
from repro.machine.values import Closure, Primitive

__all__ = [
    "CodegenStats",
    "codegen_node",
    "codegen_program",
    "emitted_source",
    "clear_cache",
    "cache_info",
    "is_cached",
]

#: Runtime names every emitted module may bind (as default-arg fast
#: locals).  The emitter only materialises the ones a function uses.
_HELPERS: dict[str, Any] = {
    "_EVAL": EVAL,
    "_VALUE": VALUE,
    "_UNBOUND": UNBOUND,
    "_UNSPEC": UNSPECIFIED,
    "_SlotRib": SlotRib,
    "_Closure": Closure,
    "_Prim": Primitive,
    "_AppFrame": AppFrame,
    "_IfFrame": IfFrame,
    "_SeqFrame": SeqFrame,
    "_LocalSetFrame": LocalSetFrame,
    "_GlobalSetFrame": GlobalSetFrame,
    "_DefineFrame": DefineFrame,
    "_UnboundVar": UnboundVariableError,
    "_Join": Join,
    "_ForkLink": ForkLink,
    "_Task": Task,
    "_DEAD": TaskState.DEAD,
    "_replace_child": replace_child,
}

#: Node kinds with a compile-time-known value shape (the closure
#: compiler's ``triv`` set).
_TRIVIAL = (Const, LocalRef, GlobalRef, Lambda)

#: Inline a direct-lambda body only when it is proven quiet and small.
_INLINE_BODY_BUDGET = 60
_INLINE_BODY_DEPTH = 3

_CACHE_CAPACITY = 256
_CODE_CACHE: "OrderedDict[str, tuple[str, CodeType]]" = OrderedDict()


@dataclass
class CodegenStats:
    """Counters accumulated across every ``codegen_program`` call of a
    session (surfaced by ``,stats`` and the ``codegen.*`` namespace)."""

    #: Code-cache hits (digest present and regenerated source matched).
    hits: int = 0
    #: Cache misses (first emit, or a source-verification mismatch).
    misses: int = 0
    #: LRU evictions.
    evictions: int = 0
    #: Total microseconds spent in ``codegen_node`` (emit + compile +
    #: exec), cache hits included.
    emit_us: int = 0
    nodes_emitted: int = 0
    lambdas_emitted: int = 0
    #: Applications whose operator and every operand were evaluated and
    #: dispatched inline (no AppFrame on the happy path).
    apps_inlined: int = 0
    #: ``if`` tests decided inline (trivial or primitive-guarded).
    tests_inlined: int = 0
    #: Primitive-guard inline sites (operands and tests of the shape
    #: ``(global-op trivial...)``).
    prims_inlined: int = 0
    #: Direct-lambda (``let``-shaped) bodies inlined into their caller.
    inline_bodies: int = 0
    #: Self-call apply sites inlined one level behind a runtime
    #: ``closure.body is <emitted-fn>`` identity guard.
    self_inlines: int = 0
    #: Inlined bodies whose S25 ``capture_free`` ∧ ``spawn_free`` proof
    #: let the emitter elide the eager ``task.env`` spill.
    spill_elisions: int = 0
    #: Cold fallback thunks built with the closure compiler.
    fallback_nodes: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "codegen_hits": self.hits,
            "codegen_misses": self.misses,
            "codegen_evictions": self.evictions,
            "codegen_emit_us": self.emit_us,
            "codegen_nodes": self.nodes_emitted,
            "codegen_lambdas": self.lambdas_emitted,
            "codegen_apps_inlined": self.apps_inlined,
            "codegen_tests_inlined": self.tests_inlined,
            "codegen_prims_inlined": self.prims_inlined,
            "codegen_inline_bodies": self.inline_bodies,
            "codegen_self_inlines": self.self_inlines,
            "codegen_spill_elisions": self.spill_elisions,
            "codegen_fallback_nodes": self.fallback_nodes,
        }


def clear_cache() -> None:
    """Drop every cached code object (tests / memory pressure)."""
    _CODE_CACHE.clear()


def cache_info() -> dict[str, int]:
    """Current occupancy of the module-level code cache."""
    return {"size": len(_CODE_CACHE), "capacity": _CACHE_CAPACITY}


def is_cached(node: Node) -> bool:
    """Whether ``node``'s digest currently has a cached code object."""
    return stable_hash(node) in _CODE_CACHE


def _node_size(node: Node) -> int:
    """Number of IR nodes in ``node`` (inline-budget check)."""
    kind = type(node)
    if kind is App:
        return 1 + _node_size(node.fn) + sum(_node_size(a) for a in node.args)
    if kind is If:
        return 1 + _node_size(node.test) + _node_size(node.then) + _node_size(node.els)
    if kind is Seq or kind is Pcall:
        return 1 + sum(_node_size(e) for e in node.exprs)
    if kind is Lambda:
        return 1 + _node_size(node.body)
    if kind is LocalSet or kind is GlobalSet or kind is DefineTop:
        return 1 + _node_size(node.expr)
    return 1


def _is_name(expr: str) -> bool:
    return expr.isidentifier()


class _Env:
    """The emitter's environment context: a Python expression for the
    current rib plus whether ``task.env`` currently equals it."""

    __slots__ = ("expr", "synced")

    def __init__(self, expr: str, synced: bool):
        self.expr = expr
        self.synced = synced


class _Fn:
    """One emitted function being built: body lines plus the ordered
    set of module names it binds as default-argument fast locals."""

    __slots__ = ("name", "lines", "used", "ntmp")

    def __init__(self, name: str):
        self.name = name
        self.lines: list[str] = []
        self.used: dict[str, bool] = {}
        self.ntmp = 0

    def line(self, ind: int, text: str) -> None:
        self.lines.append("    " * ind + text)

    def temp(self) -> str:
        self.ntmp += 1
        return f"_t{self.ntmp}"

    def use(self, name: str) -> str:
        self.used[name] = True
        return name

    def render(self) -> str:
        params = "".join(f", {n}={n}" for n in self.used)
        head = [f"def {self.name}(machine, task{params}):", "    _env = task.env"]
        return "\n".join(head + self.lines)


class _Emitter:
    """Walks one resolved top-level node and produces a module source
    plus the binding namespace it must be executed in."""

    __slots__ = (
        "stats",
        "fns",
        "fn_meta",
        "bindings",
        "lambda_body_fn",
        "_bind_memo",
        "_fn_memo",
        "_fb_memo",
        "_in_progress",
        "_scratch",
        "_nf",
        "_nk",
        "_nenv",
        "_inline_depth",
        "self_name",
        "self_lambda",
        "_self_depth",
    )

    def __init__(self, stats: CodegenStats):
        self.stats = stats
        self.fns: list[str] = []
        self.fn_meta: list[tuple[str, Node]] = []
        self.bindings: dict[str, Any] = {}
        self.lambda_body_fn: dict[int, str] = {}
        self._bind_memo: dict[int, str] = {}
        self._fn_memo: dict[int, str] = {}
        self._fb_memo: dict[int, str] = {}
        self._in_progress: set[str] = set()
        self._scratch = _ScratchStats()
        self._nf = 0
        self._nk = 0
        self._nenv = 0
        self._inline_depth = 0
        # Self-call speculation context (set by _emit for the
        # ``(define (name args...) body)`` shape): apply sites whose
        # operator is a global reference to ``self_name`` inline one
        # level of the body behind a runtime ``.body is <emitted-fn>``
        # identity guard — exact by construction (a rebound global
        # falls through to the generic dispatch).
        self.self_name: Any = None
        self.self_lambda: Lambda | None = None
        self._self_depth = 0

    # -- bindings ------------------------------------------------------------

    def bind(self, value: Any, w: _Fn) -> str:
        """Bind ``value`` into the module namespace; return its name."""
        key = id(value)
        name = self._bind_memo.get(key)
        if name is None:
            self._nk += 1
            name = f"_k{self._nk}"
            self._bind_memo[key] = name
            self.bindings[name] = value
        return w.use(name)

    def helper(self, hname: str, w: _Fn) -> str:
        if hname not in self.bindings:
            self.bindings[hname] = _HELPERS[hname]
        return w.use(hname)

    def fallback(self, node: Node, w: _Fn) -> str:
        """A cold-path thunk for ``node`` built with the closure
        compiler (no source duplication), bound into the namespace."""
        name = self._fb_memo.get(id(node))
        if name is None:
            self.stats.fallback_nodes += 1
            code = compile_node(node, self._scratch)
            name = self.bind(code, w)
            self._fb_memo[id(node)] = name
            return name
        return w.use(name)

    def sync(self, env: _Env, w: _Fn, ind: int) -> None:
        """Ensure ``task.env`` equals the context rib before an edge
        that delegates outside this function."""
        if not env.synced:
            w.line(ind, f"task.env = {env.expr}")
            env.synced = True

    def fresh_env(self) -> str:
        self._nenv += 1
        return f"_env{self._nenv}"

    # -- functions -----------------------------------------------------------

    def emit_fn(self, node: Node) -> str:
        """Emit (once) a module function evaluating ``node`` in tail
        position; return its name."""
        memo = self._fn_memo.get(id(node))
        if memo is not None:
            return memo
        self._nf += 1
        name = f"_f{self._nf}"
        self._fn_memo[id(node)] = name
        self._in_progress.add(name)
        w = _Fn(name)
        self.emit_tail(node, _Env("_env", True), w, 1)
        self.fns.append(w.render())
        self.fn_meta.append((name, node))
        self._in_progress.discard(name)
        return name

    def use_fn(self, name: str, w: _Fn) -> str:
        """Reference an emitted function by name.  A function still
        being emitted (a recursive reference through a self-call
        inlined region) cannot become a default-arg fast local — its
        ``def`` line would evaluate the name before it exists — so it
        stays a plain module-global reference."""
        if name in self._in_progress:
            return name
        return w.use(name)

    # -- values --------------------------------------------------------------

    def emit_value(self, node: Node, env: _Env, w: _Fn, ind: int) -> str | None:
        """Emit guard statements for a trivial ``node`` and return a
        Python expression for its value, or ``None`` if the node needs
        real evaluation.  The returned expression is pure (safe to
        place in more than one alternative branch)."""
        kind = type(node)
        if kind is Const:
            v = node.value
            if v is True:
                return "True"
            if v is False:
                return "False"
            if v is None:
                return "None"
            if type(v) is int and -(2**31) < v < 2**31:
                return repr(v)
            return self.bind(v, w)
        if kind is LocalRef:
            return env.expr + ".parent" * node.depth + f".values[{node.index}]"
        if kind is GlobalRef:
            cell = self.bind(node.cell, w)
            t = w.temp()
            w.line(ind, f"{t} = {cell}.value")
            w.line(ind, f"if {t} is {self.helper('_UNBOUND', w)}:")
            w.line(
                ind + 1,
                f"raise {self.helper('_UnboundVar', w)}({node.cell.name.name!r})",
            )
            return t
        if kind is Lambda:
            return self.lambda_expr(node, env, w)
        return None

    def lambda_expr(self, node: Lambda, env: _Env, w: _Fn) -> str:
        """A ``Closure(...)`` constructor expression for ``node`` (the
        body becomes its own emitted function)."""
        if node.nslots is None:
            raise CompileError(
                f"codegen requires resolved IR; lambda {node.name or ''!s} "
                "has no nslots (run repro.ir.resolve first)"
            )
        self.stats.lambdas_emitted += 1
        bodyf = self.emit_fn(node.body)
        self.lambda_body_fn[id(node)] = bodyf
        params = self.bind(node.params, w)
        rest = "None" if node.rest is None else self.bind(node.rest, w)
        eff = "None" if node.effects is None else self.bind(node.effects, w)
        return (
            f"{self.helper('_Closure', w)}({params}, {rest}, "
            f"{self.use_fn(bodyf, w)}, "
            f"{env.expr}, {node.name!r}, {node.nslots}, {eff})"
        )

    # -- the inline primitive guard ------------------------------------------

    def prim_inlinable(self, node: Node) -> bool:
        """``(global-op trivial...)`` — computable inline under a
        Primitive guard, with a frame-plan fallback."""
        return (
            type(node) is App
            and type(node.fn) is GlobalRef
            and all(type(a) in _TRIVIAL for a in node.args)
        )

    def inline_prim_call(
        self,
        node: App,
        env: _Env,
        w: _Fn,
        ind: int,
        emit_fallback: Callable[[_Fn, int, str, str], None],
    ) -> str:
        """Emit an inline, guarded evaluation of a ``prim_inlinable``
        application; return the temp holding its value.

        ``emit_fallback(w, ind, fn_expr, args_expr)`` must emit the
        delegation for the not-a-primitive case (ending in ``return``);
        the operator and operand values are already computed — the
        fallback threads them onward, it never re-evaluates.
        """
        self.stats.prims_inlined += 1
        k = len(node.args)
        f = self.emit_value(node.fn, env, w, ind)
        args = [self.emit_value(a, env, w, ind) for a in node.args]
        argsx = ", ".join(args)  # type: ignore[arg-type]
        t = w.temp()
        p = self.helper("_Prim", w)
        w.line(
            ind,
            f"if {f}.__class__ is {p} and {f}.low <= {k} "
            f"and ({f}.high is None or {f}.high >= {k}):",
        )
        w.line(ind + 1, f"{t} = {f}.fn({argsx})")
        w.line(ind, "else:")
        saved = env.synced
        emit_fallback(w, ind + 1, f, argsx)  # type: ignore[arg-type]
        env.synced = saved
        return t

    # -- tail emission -------------------------------------------------------

    def emit_tail(self, node: Node, env: _Env, w: _Fn, ind: int) -> None:
        """Emit statements that finish the step for ``node``: every
        control path ends in ``return``."""
        self.stats.nodes_emitted += 1
        kind = type(node)
        expr = self.emit_value(node, env, w, ind)
        if expr is not None:
            w.line(ind, f"return ({self.helper('_VALUE', w)}, {expr})")
            return
        if kind is App:
            self.tail_app(node, env, w, ind)
        elif kind is If:
            self.tail_if(node, env, w, ind)
        elif kind is Seq:
            self.tail_seq(node, env, w, ind)
        elif kind is LocalSet:
            self.tail_local_set(node, env, w, ind)
        elif kind is GlobalSet:
            self.tail_global_set(node, env, w, ind)
        elif kind is DefineTop:
            self.tail_define(node, env, w, ind)
        elif kind is Pcall:
            self.tail_pcall(node, env, w, ind)
        elif kind is Var or kind is SetBang:
            raise CompileError(
                f"codegen requires resolved IR; got unresolved "
                f"{kind.__name__}: {node!r} (run repro.ir.resolve first)"
            )
        else:
            raise CompileError(f"cannot emit IR node: {node!r}")

    # An application in tail position.  Operator first, operands left
    # to right — identical effect/error order to the closure compiler.
    def tail_app(self, node: App, env: _Env, w: _Fn, ind: int) -> None:
        fn = node.fn
        if (
            type(fn) is Lambda
            and fn.rest is None
            and fn.nslots == len(fn.params)
            and len(node.args) == len(fn.params)
        ):
            self.tail_direct_lambda(node, fn, env, w, ind)
            return
        fnx = self.emit_value(fn, env, w, ind)
        if fnx is None:
            # Operator needs real evaluation: push the full frame plan
            # and fuse the operator's evaluation into this step.
            children = [self.emit_fn(a) for a in node.args]
            pend = ", ".join(self.use_fn(c, w) for c in children)
            pend_src = f"({pend},)" if children else "()"
            w.line(
                ind,
                f"task.frames = {self.helper('_AppFrame', w)}"
                f"((), {pend_src}, {env.expr}, task.frames)",
            )
            self.emit_tail(fn, env, w, ind)
            return
        if not _is_name(fnx):
            t = w.temp()
            w.line(ind, f"{t} = {fnx}")
            fnx = t
        done = [fnx]
        self.inline_args(node.args, done, env, w, ind)
        self.emit_apply(done, env, w, ind, fn_node=fn)

    def inline_args(
        self,
        args: tuple[Node, ...],
        done: list[str],
        env: _Env,
        w: _Fn,
        ind: int,
    ) -> None:
        """Evaluate ``args`` left to right into ``done`` (operator and
        earlier values already there).  Trivial operands inline;
        primitive-shaped operands inline under a guard whose fallback
        pushes exactly the remaining frame plan; the first operand that
        can do neither ends the straight line with a frame push and a
        fused evaluation.  Emits a ``return`` on every abandoned path;
        on the straight-line path ``done`` ends complete."""
        i = 0
        n = len(args)
        while i < n:
            a = args[i]
            ax = self.emit_value(a, env, w, ind)
            if ax is not None:
                done.append(ax)
                i += 1
                continue
            rest = args[i + 1 :]
            if self.prim_inlinable(a):
                pend = ", ".join(self.fallback(x, w) for x in rest)
                pend_src = f"({pend},)" if rest else "()"
                done_now = tuple(done)

                def emit_fb(
                    w: _Fn,
                    find: int,
                    fexpr: str,
                    argsx: str,
                    done_now: tuple[str, ...] = done_now,
                    pend_src: str = pend_src,
                ) -> None:
                    w.line(
                        find,
                        f"task.frames = {self.helper('_AppFrame', w)}"
                        f"(({', '.join(done_now)},), {pend_src}, "
                        f"{env.expr}, task.frames)",
                    )
                    self.sync(env, w, find)
                    w.line(
                        find,
                        "return machine._apply_deliver"
                        f"(machine, task, {fexpr}, [{argsx}])",
                    )

                done.append(self.inline_prim_call(a, env, w, ind, emit_fb))
                i += 1
                continue
            # First genuinely non-trivial operand: push the frame plan
            # (later operands as emitted children) and fuse its
            # evaluation into this step.
            children = [self.emit_fn(x) for x in rest]
            pend = ", ".join(self.use_fn(c, w) for c in children)
            pend_src = f"({pend},)" if children else "()"
            w.line(
                ind,
                f"task.frames = {self.helper('_AppFrame', w)}"
                f"(({', '.join(done)},), {pend_src}, {env.expr}, task.frames)",
            )
            self.emit_tail(a, env, w, ind)
            done.clear()
            return
        # done complete — caller applies.

    def emit_apply(
        self, done: list[str], env: _Env, w: _Fn, ind: int, fn_node: Node | None = None
    ) -> None:
        """Inline apply dispatch over a complete ``done`` (operator +
        argument expressions).  Only emitted on paths where ``done``
        survived; ``inline_args`` returns an emptied list after an
        abandoned straight line.  ``fn_node`` is the operator's IR node
        when the caller knows it (enables self-call inlining)."""
        if not done:
            return
        self.stats.apps_inlined += 1
        k = len(done) - 1
        f = done[0]
        argsx = ", ".join(done[1:])
        c = self.helper("_Closure", w)
        p = self.helper("_Prim", w)
        ev = self.helper("_EVAL", w)
        va = self.helper("_VALUE", w)
        w.line(ind, f"if {f}.__class__ is {c} and {f}.high == {k} and {f}.nslots is not None:")
        self.self_call_inline(f, argsx, k, fn_node, w, ind + 1)
        if k:
            w.line(ind + 1, f"task.env = {self.helper('_SlotRib', w)}([{argsx}], {f}.env)")
        else:
            w.line(ind + 1, f"task.env = {f}.env")
        w.line(ind + 1, f"return ({ev}, {f}.body)")
        w.line(
            ind,
            f"if {f}.__class__ is {p} and {f}.low <= {k} "
            f"and ({f}.high is None or {f}.high >= {k}):",
        )
        w.line(ind + 1, f"return ({va}, {f}.fn({argsx}))")
        self.sync(env, w, ind)
        w.line(ind, f"return machine._apply_deliver(machine, task, {f}, [{argsx}])")

    def self_call_inline(
        self, f: str, argsx: str, k: int, fn_node: Node | None, w: _Fn, ind: int
    ) -> None:
        """Inside the closure fast path of an apply whose operator is a
        global reference to the function being defined (``(define (fib
        n) ... (fib ...) ...)``), inline one level of the body behind a
        runtime ``.body is <emitted-fn>`` identity guard.

        The guard makes the speculation exact: it fires only for
        closures whose body *is* this module's emitted body function —
        same lambda, so same params/nslots — and a rebound global, a
        cross-engine closure or a snapshot-restored one falls through
        to the generic ``(EVAL, body)`` dispatch.  The body function is
        referenced as a plain module global (not a default-arg fast
        local): child functions are ``def``'d before it exists and the
        body cannot self-reference in its own defaults.

        Whether to inline is decided on static shape alone — never on
        analysis facts — so step counts are ablation-invariant; as in
        ``tail_direct_lambda``, the S25 proof gates only the eager-vs-
        lazy ``task.env`` spill inside the inlined region."""
        sl = self.self_lambda
        if (
            sl is None
            or type(fn_node) is not GlobalRef
            or fn_node.cell.name is not self.self_name
            or k != len(sl.params)
            or self._self_depth >= 1
            or _node_size(sl.body) > _INLINE_BODY_BUDGET
        ):
            return
        bodyname = self._fn_memo.get(id(sl.body))
        if bodyname is None:
            return
        eff = sl.effects
        proven = eff is not None and eff.capture_free and eff.spawn_free
        self.stats.self_inlines += 1
        if proven:
            self.stats.spill_elisions += 1
        w.line(ind, f"if {f}.body is {bodyname}:")
        rib = self.fresh_env()
        if k:
            w.line(
                ind + 1,
                f"{rib} = {self.helper('_SlotRib', w)}([{argsx}], {f}.env)",
            )
        else:
            w.line(ind + 1, f"{rib} = {f}.env")
        inner = _Env(rib, False)
        if not proven:
            self.sync(inner, w, ind + 1)
        self._self_depth += 1
        self.emit_tail(sl.body, inner, w, ind + 1)
        self._self_depth -= 1

    # ((lambda (x...) body) arg...) — the let shape.  Constructing the
    # closure is pure allocation, so when the arity matches statically
    # we skip it: evaluate the operands, build the rib, run the body.
    # Under the S25 proof the body inlines into this very function.
    def tail_direct_lambda(
        self, node: App, fn: Lambda, env: _Env, w: _Fn, ind: int
    ) -> None:
        k = len(fn.params)
        done: list[str] = ["#let"]  # operator slot; replaced by a closure
        # expression only on fallback paths.
        i = 0
        args = node.args
        lam_memo: list[str] = []

        def lamx(w: _Fn) -> str:
            # Build (once) the fallback closure expression.
            if not lam_memo:
                lam_memo.append(self.lambda_expr(fn, env, w))
            return lam_memo[0]

        n = len(args)
        while i < n:
            a = args[i]
            ax = self.emit_value(a, env, w, ind)
            if ax is not None:
                done.append(ax)
                i += 1
                continue
            rest = args[i + 1 :]
            if self.prim_inlinable(a):
                pend = ", ".join(self.fallback(x, w) for x in rest)
                pend_src = f"({pend},)" if rest else "()"
                done_now = tuple(done[1:])

                def emit_fb(
                    w: _Fn,
                    find: int,
                    fexpr: str,
                    argsx: str,
                    done_now: tuple[str, ...] = done_now,
                    pend_src: str = pend_src,
                ) -> None:
                    prefix = ", ".join((lamx(w),) + done_now)
                    w.line(
                        find,
                        f"task.frames = {self.helper('_AppFrame', w)}"
                        f"(({prefix},), {pend_src}, {env.expr}, task.frames)",
                    )
                    self.sync(env, w, find)
                    w.line(
                        find,
                        "return machine._apply_deliver"
                        f"(machine, task, {fexpr}, [{argsx}])",
                    )

                done.append(self.inline_prim_call(a, env, w, ind, emit_fb))
                i += 1
                continue
            children = [self.emit_fn(x) for x in rest]
            pend = ", ".join(self.use_fn(c, w) for c in children)
            pend_src = f"({pend},)" if children else "()"
            prefix = ", ".join([lamx(w)] + done[1:])
            w.line(
                ind,
                f"task.frames = {self.helper('_AppFrame', w)}"
                f"(({prefix},), {pend_src}, {env.expr}, task.frames)",
            )
            self.emit_tail(a, env, w, ind)
            return
        argsx = ", ".join(done[1:])
        if (
            self._inline_depth < _INLINE_BODY_DEPTH
            and _node_size(fn.body) <= _INLINE_BODY_BUDGET
        ):
            # Inline the body into this function.  Whether to inline is
            # decided on size/depth alone — never on analysis facts —
            # so step counts are identical with analysis on or off.
            # The S25 proof gates only the *register spill*: a body
            # proven capture- and spawn-free defers the ``task.env``
            # write to its delegation edges (usually eliding it
            # entirely on the straight line), which no observer can
            # see; an unproven body writes it eagerly.
            eff = fn.effects
            proven = eff is not None and eff.capture_free and eff.spawn_free
            self.stats.inline_bodies += 1
            if proven:
                self.stats.spill_elisions += 1
            self._inline_depth += 1
            if k:
                rib = self.fresh_env()
                w.line(
                    ind,
                    f"{rib} = {self.helper('_SlotRib', w)}([{argsx}], {env.expr})",
                )
                inner = _Env(rib, False)
            else:
                inner = _Env(env.expr, env.synced)
            if not proven:
                self.sync(inner, w, ind)
            self.emit_tail(fn.body, inner, w, ind)
            self._inline_depth -= 1
            return
        bodyf = self.emit_fn(fn.body)
        self.lambda_body_fn[id(fn)] = bodyf
        if k:
            w.line(
                ind,
                f"task.env = {self.helper('_SlotRib', w)}([{argsx}], {env.expr})",
            )
            env.synced = False  # task.env is now the *body* rib
        else:
            self.sync(env, w, ind)
        w.line(ind, f"return ({self.helper('_EVAL', w)}, {self.use_fn(bodyf, w)})")
        env.synced = True  # terminal; value irrelevant, keep invariant

    def tail_if(self, node: If, env: _Env, w: _Fn, ind: int) -> None:
        t = self.emit_value(node.test, env, w, ind)
        if t is None and self.prim_inlinable(node.test):

            def emit_fb(w: _Fn, find: int, fexpr: str, argsx: str) -> None:
                tf = self.fallback(node.then, w)
                ef = self.fallback(node.els, w)
                w.line(
                    find,
                    f"task.frames = {self.helper('_IfFrame', w)}"
                    f"({tf}, {ef}, {env.expr}, task.frames)",
                )
                self.sync(env, w, find)
                w.line(
                    find,
                    f"return machine._apply_deliver(machine, task, {fexpr}, [{argsx}])",
                )

            t = self.inline_prim_call(node.test, env, w, ind, emit_fb)
        if t is not None:
            self.stats.tests_inlined += 1
            saved = env.synced
            w.line(ind, f"if {t} is not False:")
            self.emit_tail(node.then, env, w, ind + 1)
            env.synced = saved
            self.emit_tail(node.els, env, w, ind)
            env.synced = saved
            return
        thenf = self.emit_fn(node.then)
        elsf = self.emit_fn(node.els)
        w.line(
            ind,
            f"task.frames = {self.helper('_IfFrame', w)}"
            f"({self.use_fn(thenf, w)}, {self.use_fn(elsf, w)}, "
            f"{env.expr}, task.frames)",
        )
        self.emit_tail(node.test, env, w, ind)

    def tail_seq(self, node: Seq, env: _Env, w: _Fn, ind: int) -> None:
        if len(node.exprs) == 1:
            self.emit_tail(node.exprs[0], env, w, ind)
            return
        children = [self.emit_fn(e) for e in node.exprs[1:]]
        rest = ", ".join(self.use_fn(c, w) for c in children)
        w.line(
            ind,
            f"task.frames = {self.helper('_SeqFrame', w)}"
            f"(({rest},), {env.expr}, task.frames)",
        )
        self.emit_tail(node.exprs[0], env, w, ind)

    def tail_local_set(self, node: LocalSet, env: _Env, w: _Fn, ind: int) -> None:
        ax = self.emit_value(node.expr, env, w, ind)
        if ax is not None:
            target = env.expr + ".parent" * node.depth
            w.line(ind, f"{target}.values[{node.index}] = {ax}")
            w.line(
                ind,
                f"return ({self.helper('_VALUE', w)}, {self.helper('_UNSPEC', w)})",
            )
            return
        w.line(
            ind,
            f"task.frames = {self.helper('_LocalSetFrame', w)}"
            f"({node.depth}, {node.index}, {env.expr}, task.frames)",
        )
        self.emit_tail(node.expr, env, w, ind)

    def tail_global_set(self, node: GlobalSet, env: _Env, w: _Fn, ind: int) -> None:
        cell = self.bind(node.cell, w)
        ax = self.emit_value(node.expr, env, w, ind)
        if ax is not None:
            # Same order as the closure compiler: value first, then the
            # bound check, then the write.
            t = w.temp()
            w.line(ind, f"{t} = {ax}")
            w.line(ind, f"if {cell}.value is {self.helper('_UNBOUND', w)}:")
            w.line(
                ind + 1,
                f"raise {self.helper('_UnboundVar', w)}({node.cell.name.name!r})",
            )
            w.line(ind, f"{cell}.value = {t}")
            w.line(
                ind,
                f"return ({self.helper('_VALUE', w)}, {self.helper('_UNSPEC', w)})",
            )
            return
        w.line(
            ind,
            f"task.frames = {self.helper('_GlobalSetFrame', w)}({cell}, task.frames)",
        )
        self.emit_tail(node.expr, env, w, ind)

    def tail_define(self, node: DefineTop, env: _Env, w: _Fn, ind: int) -> None:
        name = self.bind(node.name, w)
        ax = self.emit_value(node.expr, env, w, ind)
        if ax is not None:
            w.line(ind, f"{env.expr}.globals.define({name}, {ax})")
            w.line(
                ind,
                f"return ({self.helper('_VALUE', w)}, {self.helper('_UNSPEC', w)})",
            )
            return
        w.line(
            ind,
            f"task.frames = {self.helper('_DefineFrame', w)}"
            f"({name}, {env.expr}, task.frames)",
        )
        self.emit_tail(node.expr, env, w, ind)

    def tail_pcall(self, node: Pcall, env: _Env, w: _Fn, ind: int) -> None:
        children = [self.emit_fn(e) for e in node.exprs]
        n = len(children)
        ev = self.helper("_EVAL", w)
        w.line(
            ind,
            f"_j = {self.helper('_Join', w)}({n}, task.frames, task.link)",
        )
        w.line(ind, f"{self.helper('_replace_child', w)}(task.link, _j)")
        w.line(ind, f"task.state = {self.helper('_DEAD', w)}")
        fl = self.helper("_ForkLink", w)
        tk = self.helper("_Task", w)
        for index, child in enumerate(children):
            w.line(
                ind,
                f"_b = {tk}(({ev}, {self.use_fn(child, w)}), {env.expr}, None, "
                f"{fl}(_j, {index}))",
            )
            w.line(ind, f"_j.children[{index}] = _b")
            w.line(ind, "machine.spawn_task(_b)")
        w.line(ind, "machine.notify_fork(_j)")
        w.line(ind, "return None")


def _build_triv(
    node: Node, em: _Emitter, ns: dict[str, Any]
) -> Callable[[Any], Any] | None:
    """The ``(env) -> value`` trivial-operand closure for an emitted
    function's node (mirrors the closure compiler's ``triv`` contract,
    consulted by the VALUE-arm pending fold)."""
    kind = type(node)
    if kind is Const:
        value = node.value
        return lambda env: value
    if kind is LocalRef:
        depth = node.depth
        index = node.index
        if depth == 0:
            return lambda env: env.values[index]

        def local_triv(env: Any) -> Any:
            d = depth
            while d:
                env = env.parent
                d -= 1
            return env.values[index]

        return local_triv
    if kind is GlobalRef:
        cell = node.cell

        def global_triv(env: Any) -> Any:
            value = cell.value
            if value is UNBOUND:
                raise UnboundVariableError(cell.name.name)
            return value

        return global_triv
    if kind is Lambda:
        body = ns[em.lambda_body_fn[id(node)]]
        params, rest, name, nslots = node.params, node.rest, node.name, node.nslots
        effects = node.effects
        return lambda env: Closure(params, rest, body, env, name, nslots, effects)
    return None


def _emit(node: Node, stats: CodegenStats) -> tuple[_Emitter, str, str]:
    em = _Emitter(stats)
    if (
        type(node) is DefineTop
        and type(node.expr) is Lambda
        and node.expr.rest is None
        and node.expr.nslots == len(node.expr.params)
    ):
        em.self_name = node.name
        em.self_lambda = node.expr
    main = em.emit_fn(node)
    return em, main, "\n\n".join(em.fns)


def emitted_source(node: Node, stats: CodegenStats | None = None) -> str:
    """The Python source codegen emits for ``node`` (REPL ``,codegen``
    preview; no compile, exec or cache interaction)."""
    _, _, source = _emit(node, stats if stats is not None else CodegenStats())
    return source


def codegen_node(node: Node, stats: CodegenStats | None = None) -> Callable:
    """Emit, compile (or fetch by ``ir-hash-v1`` digest) and
    instantiate the code thunk for one resolved top-level node."""
    if stats is None:
        stats = CodegenStats()
    t0 = perf_counter()
    try:
        em, main, source = _emit(node, stats)
        digest = stable_hash(node)
        cached = _CODE_CACHE.get(digest)
        if cached is not None and cached[0] == source:
            _CODE_CACHE.move_to_end(digest)
            code = cached[1]
            stats.hits += 1
        else:
            code = compile(source, f"<codegen:{digest[:12]}>", "exec")
            _CODE_CACHE[digest] = (source, code)
            _CODE_CACHE.move_to_end(digest)
            stats.misses += 1
            while len(_CODE_CACHE) > _CACHE_CAPACITY:
                _CODE_CACHE.popitem(last=False)
                stats.evictions += 1
        ns = dict(em.bindings)
        exec(code, ns)
        for fname, fnode in em.fn_meta:
            fn = ns[fname]
            fn.node = fnode
            fn.triv = _build_triv(fnode, em, ns)
        return ns[main]
    finally:
        stats.emit_us += int((perf_counter() - t0) * 1_000_000)


def codegen_program(nodes: list[Node], stats: CodegenStats | None = None) -> list:
    """Emit a resolved program (a list of top-level nodes).

    Like :func:`repro.ir.compile.compile_program`, the input must be
    the resolver's dialect over the *same* ``GlobalEnv`` the machine
    runs on — emitted code captures global cells by identity.
    """
    if stats is None:
        stats = CodegenStats()
    return [codegen_node(node, stats) for node in nodes]
