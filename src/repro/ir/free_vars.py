"""Free-variable analysis over the IR.

Used by tests (to check expander output), by the pretty printer, and by
the Section 6 bridge when translating IR into λ-calculus terms.
"""

from __future__ import annotations

from repro.datum import Symbol
from repro.ir.nodes import (
    App,
    Const,
    DefineTop,
    If,
    Lambda,
    Node,
    Pcall,
    Seq,
    SetBang,
    Var,
)

__all__ = ["free_variables"]


def free_variables(node: Node) -> frozenset[Symbol]:
    """The set of variables referenced but not bound within ``node``."""
    out: set[Symbol] = set()
    # Explicit stack of (node, bound-set) to stay safe on deep IR.
    stack: list[tuple[Node, frozenset[Symbol]]] = [(node, frozenset())]
    while stack:
        current, bound = stack.pop()
        if isinstance(current, Const):
            continue
        if isinstance(current, Var):
            if current.name not in bound:
                out.add(current.name)
            continue
        if isinstance(current, Lambda):
            inner = bound | set(current.params)
            if current.rest is not None:
                inner = inner | {current.rest}
            stack.append((current.body, frozenset(inner)))
            continue
        if isinstance(current, App):
            stack.append((current.fn, bound))
            stack.extend((arg, bound) for arg in current.args)
            continue
        if isinstance(current, If):
            stack.append((current.test, bound))
            stack.append((current.then, bound))
            stack.append((current.els, bound))
            continue
        if isinstance(current, SetBang):
            if current.name not in bound:
                out.add(current.name)
            stack.append((current.expr, bound))
            continue
        if isinstance(current, Seq):
            stack.extend((e, bound) for e in current.exprs)
            continue
        if isinstance(current, DefineTop):
            stack.append((current.expr, bound))
            continue
        if isinstance(current, Pcall):
            stack.extend((e, bound) for e in current.exprs)
            continue
        raise TypeError(f"unknown IR node: {current!r}")
    return frozenset(out)
