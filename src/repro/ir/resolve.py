"""The resolver: lexical addressing as a compile stage.

``resolve_program`` runs between the expander and the machine.  It
walks the eight expander-emitted node kinds and rewrites every
variable reference and assignment into its *resolved* form:

* a name bound by an enclosing ``Lambda`` becomes
  ``LocalRef(depth, index)`` / ``LocalSet(depth, index, expr)`` — the
  machine walks ``depth`` parent ribs and indexes a flat slot list,
  with no symbol hashing on the hot path;
* any other name becomes ``GlobalRef(cell)`` / ``GlobalSet(cell,
  expr)``, where ``cell`` is the mutable one-slot box interned in the
  :class:`~repro.machine.environment.GlobalEnv` — a global reference
  is one attribute read, and a reference compiled before its
  ``define`` still resolves correctly at first touch because the cell
  is shared, not the value.

Each ``Lambda`` is stamped with ``nslots`` — the slot count of the rib
one application allocates (``len(params)``, plus one slot collecting
the rest argument).  Thunks (no params, no rest) get ``nslots == 0``
and allocate nothing: the resolver skips their rib in the depth
accounting, so ``apply_procedure`` can reuse the closure's captured
environment directly.

The scope discipline mirrors :mod:`repro.ir.free_vars` (the proven
walker for "is this name lambda-bound here?"); the resolver only adds
*where* — the ``(depth, index)`` coordinates.

Resolved lambdas are also where the capture/effect phase
(:mod:`repro.analysis.effects`) hangs its facts: ``annotate_program``
runs right after ``resolve_program`` and stamps each ``Lambda`` with an
:class:`~repro.analysis.effects.EffectInfo`; the resolver itself only
passes any pre-existing ``effects`` through unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.datum import Symbol
from repro.ir.nodes import (
    App,
    Const,
    DefineTop,
    GlobalRef,
    GlobalSet,
    If,
    Lambda,
    LocalRef,
    LocalSet,
    Node,
    Pcall,
    Seq,
    SetBang,
    Var,
)
if TYPE_CHECKING:  # pragma: no cover - avoids an ir <-> machine cycle
    from repro.machine.environment import GlobalEnv

__all__ = ["ResolverStats", "resolve_program", "resolve_node"]


@dataclass
class ResolverStats:
    """Counters accumulated across every ``resolve_program`` call of an
    interpreter (surfaced by the REPL's ``,stats``)."""

    locals_resolved: int = 0
    globals_resolved: int = 0
    lambdas_resolved: int = 0
    cells_interned: int = 0
    cell_cache_hits: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "resolver_locals": self.locals_resolved,
            "resolver_globals": self.globals_resolved,
            "resolver_lambdas": self.lambdas_resolved,
            "resolver_cells_interned": self.cells_interned,
            "resolver_cell_cache_hits": self.cell_cache_hits,
        }


class _Resolver:
    """One resolve run: a scope stack of ribs (innermost last), each
    rib a ``name -> index`` dict."""

    __slots__ = ("globals", "stats", "scope")

    def __init__(self, globals_: "GlobalEnv", stats: ResolverStats):
        self.globals = globals_
        self.stats = stats
        self.scope: list[dict[Symbol, int]] = []

    # -- name resolution ---------------------------------------------------

    def _local_address(self, name: Symbol) -> tuple[int, int] | None:
        scope = self.scope
        for depth in range(len(scope)):
            rib = scope[-1 - depth]
            index = rib.get(name)
            if index is not None:
                return depth, index
        return None

    def _global_cell(self, name: Symbol):
        if name in self.globals.cells:
            self.stats.cell_cache_hits += 1
        else:
            self.stats.cells_interned += 1
        return self.globals.cell(name)

    # -- the walk ----------------------------------------------------------

    def resolve(self, node: Node) -> Node:
        kind = type(node)
        if kind is Const:
            return node
        if kind is Var:
            address = self._local_address(node.name)
            if address is not None:
                self.stats.locals_resolved += 1
                return LocalRef(address[0], address[1], node.name)
            self.stats.globals_resolved += 1
            return GlobalRef(self._global_cell(node.name))
        if kind is Lambda:
            return self._resolve_lambda(node)
        if kind is App:
            return App(
                self.resolve(node.fn), tuple(self.resolve(a) for a in node.args)
            )
        if kind is If:
            return If(
                self.resolve(node.test),
                self.resolve(node.then),
                self.resolve(node.els),
            )
        if kind is SetBang:
            expr = self.resolve(node.expr)
            address = self._local_address(node.name)
            if address is not None:
                self.stats.locals_resolved += 1
                return LocalSet(address[0], address[1], expr, node.name)
            self.stats.globals_resolved += 1
            return GlobalSet(self._global_cell(node.name), expr)
        if kind is Seq:
            return Seq(tuple(self.resolve(e) for e in node.exprs))
        if kind is DefineTop:
            # Intern the cell *now* so references compiled earlier or
            # later in the same program share it; the DefineFrame
            # writes through GlobalEnv.define, i.e. the same cell.
            self._global_cell(node.name)
            return DefineTop(node.name, self.resolve(node.expr))
        if kind is Pcall:
            return Pcall(tuple(self.resolve(e) for e in node.exprs))
        raise TypeError(f"resolver: unknown IR node: {node!r}")

    def _resolve_lambda(self, node: Lambda) -> Lambda:
        self.stats.lambdas_resolved += 1
        nslots = len(node.params) + (1 if node.rest is not None else 0)
        if nslots == 0:
            # A thunk allocates no rib, so it contributes no depth.
            body = self.resolve(node.body)
            return Lambda(node.params, node.rest, body, node.name, 0, node.effects)
        rib = {name: index for index, name in enumerate(node.params)}
        if node.rest is not None:
            rib[node.rest] = len(node.params)
        self.scope.append(rib)
        try:
            body = self.resolve(node.body)
        finally:
            self.scope.pop()
        return Lambda(node.params, node.rest, body, node.name, nslots, node.effects)


def resolve_node(
    node: Node, globals_: "GlobalEnv", stats: ResolverStats | None = None
) -> Node:
    """Resolve one top-level node (see :func:`resolve_program`)."""
    return _Resolver(globals_, stats if stats is not None else ResolverStats()).resolve(
        node
    )


def resolve_program(
    nodes: list[Node], globals_: "GlobalEnv", stats: ResolverStats | None = None
) -> list[Node]:
    """Resolve a whole program (a list of top-level nodes).

    Cells are interned into ``globals_`` as a side effect; running the
    resolved IR on a machine over a *different* GlobalEnv would read
    the wrong store, so resolve against the machine's own globals.
    """
    if stats is None:
        stats = ResolverStats()
    resolver = _Resolver(globals_, stats)
    return [resolver.resolve(node) for node in nodes]
