"""Stable structural hashing of IR.

``stable_hash(node)`` digests an IR tree (either dialect — expander
output or resolved) into a hex SHA-256 that is identical across
processes, Python versions and machine word sizes.  The snapshot codec
(:mod:`repro.snapshot`) stamps every serialized ``Lambda`` body and
compiled code thunk with this hash: on restore the hash keys the
recompile cache (one ``compile_node`` per distinct body, so closures
that shared a compiled body keep sharing one) and doubles as an
integrity check on the decoded IR.

Hashing covers everything behaviourally observable:

* node kinds and their structural fields (``depth``/``index``,
  ``nslots``, branch order);
* ``Lambda.name`` — it surfaces in arity-error messages;
* interned symbols by spelling, gensyms by printed name;
* ``GlobalRef``/``GlobalSet`` cells by *name* (cells are interned per
  global table, so name identity is cell identity within a session);
* constants, including quoted structure (pairs, vectors, chars,
  rationals), with shared/cyclic substructure hashed by back-reference
  so the walk terminates.

The debug-only ``name`` field of ``LocalRef``/``LocalSet`` is excluded:
it never reaches user-visible output.
"""

from __future__ import annotations

import hashlib
from fractions import Fraction
from typing import Any

from repro.datum import NIL, Char, MVector, Pair, Symbol
from repro.datum.singletons import EOF_OBJECT, UNSPECIFIED
from repro.ir.nodes import (
    App,
    Const,
    DefineTop,
    GlobalRef,
    GlobalSet,
    If,
    Lambda,
    LocalRef,
    LocalSet,
    Node,
    Pcall,
    Seq,
    SetBang,
    Var,
)

__all__ = ["stable_hash"]

#: Bump when the token stream below changes shape: the hash is stored
#: in snapshots, so decoders must be able to tell hashes apart by era.
_HASH_VERSION = b"ir-hash-v1"


def _sym(symbol: Symbol) -> bytes:
    kind = b"s" if symbol.interned else b"g"
    return kind + b":" + symbol.name.encode("utf-8") + b";"


def stable_hash(node: "Node | Any") -> str:
    """Hex SHA-256 of ``node``'s canonical token stream (iterative —
    safe on arbitrarily deep IR and on shared/cyclic constants)."""
    digest = hashlib.sha256(_HASH_VERSION)
    update = digest.update
    seen: dict[int, int] = {}  # id -> back-reference index, for constants
    stack: list[Any] = [node]
    while stack:
        item = stack.pop()
        if isinstance(item, bytes):  # pre-rendered token
            update(item)
            continue
        kind = item.__class__
        if kind is Const:
            update(b"C(")
            stack.append(b")")
            stack.append(_ConstMark(item.value))
        elif kind is Var:
            update(b"V(" + _sym(item.name) + b")")
        elif kind is Lambda:
            header = "L(%d,%r,%r(" % (
                len(item.params),
                item.rest.name if item.rest is not None else None,
                (item.name, item.nslots),
            )
            update(header.encode("utf-8"))
            for param in item.params:
                update(_sym(param))
            update(b")")
            stack.append(b")")
            stack.append(item.body)
        elif kind is App:
            update(b"A%d(" % len(item.args))
            stack.append(b")")
            for arg in reversed(item.args):
                stack.append(arg)
            stack.append(item.fn)
        elif kind is If:
            update(b"I(")
            stack.append(b")")
            stack.append(item.els)
            stack.append(item.then)
            stack.append(item.test)
        elif kind is SetBang:
            update(b"S(" + _sym(item.name))
            stack.append(b")")
            stack.append(item.expr)
        elif kind is Seq:
            update(b"Q%d(" % len(item.exprs))
            stack.append(b")")
            for expr in reversed(item.exprs):
                stack.append(expr)
        elif kind is DefineTop:
            update(b"D(" + _sym(item.name))
            stack.append(b")")
            stack.append(item.expr)
        elif kind is Pcall:
            update(b"P%d(" % len(item.exprs))
            stack.append(b")")
            for expr in reversed(item.exprs):
                stack.append(expr)
        elif kind is LocalRef:
            update(b"l(%d,%d)" % (item.depth, item.index))
        elif kind is LocalSet:
            update(b"m(%d,%d" % (item.depth, item.index))
            stack.append(b")")
            stack.append(item.expr)
        elif kind is GlobalRef:
            update(b"G(" + _sym(item.cell.name) + b")")
        elif kind is GlobalSet:
            update(b"H(" + _sym(item.cell.name))
            stack.append(b")")
            stack.append(item.expr)
        elif kind is _ConstMark:
            _hash_constant(item.value, update, seen, stack)
        else:
            # A code thunk reaching the hash (compiled engine) hashes
            # as its source node.
            source = getattr(item, "node", None)
            if source is None:
                raise TypeError(f"stable_hash: not an IR node: {item!r}")
            stack.append(source)
    return digest.hexdigest()


class _ConstMark:
    """Work-stack marker: hash ``value`` as constant data."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value


def _hash_constant(
    value: Any,
    update: Any,
    seen: dict[int, int],
    stack: list[Any],
) -> None:
    """Emit tokens for one constant; composite children are pushed as
    further :class:`_ConstMark` entries."""
    if value is None:
        update(b"n")
    elif value is True:
        update(b"t")
    elif value is False:
        update(b"f")
    elif value is NIL:
        update(b"0")
    elif value is UNSPECIFIED:
        update(b"u")
    elif value is EOF_OBJECT:
        update(b"e")
    elif isinstance(value, int):
        update(b"i" + str(value).encode("ascii") + b";")
    elif isinstance(value, float):
        update(b"d" + repr(value).encode("ascii") + b";")
    elif isinstance(value, Fraction):
        update(
            b"r"
            + str(value.numerator).encode("ascii")
            + b"/"
            + str(value.denominator).encode("ascii")
            + b";"
        )
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        update(b"x%d:" % len(encoded))
        update(encoded)
    elif isinstance(value, Symbol):
        update(_sym(value))
    elif isinstance(value, Char):
        update(b"c" + value.value.encode("utf-8") + b";")
    elif isinstance(value, Pair):
        marker = seen.get(id(value))
        if marker is not None:
            update(b"@%d;" % marker)
            return
        seen[id(value)] = len(seen)
        update(b"p(")
        stack.append(b")")
        stack.append(_ConstMark(value.cdr))
        stack.append(_ConstMark(value.car))
    elif isinstance(value, MVector):
        marker = seen.get(id(value))
        if marker is not None:
            update(b"@%d;" % marker)
            return
        seen[id(value)] = len(seen)
        update(b"v%d(" % len(value.items))
        stack.append(b")")
        for item in reversed(value.items):
            stack.append(_ConstMark(item))
    else:
        raise TypeError(f"stable_hash: unhashable constant {value!r}")
