"""The closure compiler: resolved IR → code thunks.

``compile_program`` is the third pipeline stage, running after the
resolver (reader → expand → resolve → **compile** → machine).  It
translates each resolved IR node, once, into a Python closure — a
*code thunk* with signature ``code(machine, task)`` — that performs
exactly the transition the tree-walking stepper would have performed
for that node, with everything the stepper recomputes per step
(type-keyed dispatch, attribute loads, trivial-operand classification)
pre-resolved into the closure's captured variables.  This is the
functional-correspondence move of Biernacka, Biernacki & Danvy: the
compiled form is *derived from* the abstract machine, so it pushes the
same immutable :mod:`~repro.machine.frames` chains and the same
``LabelLink``/``Join`` control points.  Capture and reinstatement
(:mod:`repro.machine.tree`, :mod:`repro.control.spawn`) never look
inside a frame's expression slots, so they are untouched: compilation
is orthogonal to the paper's Section 7 claims, and the O(control
points) bound (bench E9) is preserved verbatim.

What the compiler pre-computes:

* ``LocalRef`` — the rib walk is specialised per depth (depth 0 and 1
  are direct attribute chains); the slot index is a captured int.
* ``GlobalRef``/``GlobalSet`` — the interned cell is captured; a
  reference is one attribute read at run time.
* ``App`` — operand *trivialness* (references, constants, resolved
  lambdas: anything that cannot push frames, fork, capture, or observe
  the scheduler) is decided **at compile time**.  A fully trivial
  application compiles to a single code thunk that evaluates operator
  and operands and applies immediately — no ``AppFrame`` is ever
  allocated.  A mixed application pre-builds its frame plan: the
  trivial prefix is folded into the thunk, the pending tuple holds the
  remaining operand thunks, and evaluation of the first non-trivial
  operand is fused into the same machine step.
* ``If`` — a trivial test folds into a direct branch jump (no
  ``IfFrame``); ``Seq``/``LocalSet``/``GlobalSet``/``DefineTop``
  likewise fold trivial subexpressions.
* ``Lambda`` — the body is compiled once; every closure created from
  the node shares the compiled body (``Closure.body`` holds code).

Every code thunk carries two attributes: ``triv`` — ``None``, or a
``(env) -> value`` closure usable when the node is a trivial operand —
and ``node``, the source IR node (debugging / introspection).  Frame
expression slots may therefore hold either IR nodes or code thunks;
the machine's compiled stepper (:func:`repro.machine.step.step_compiled`)
dispatches on ``FunctionType`` and falls back to the shared node
dispatch, so values (closures included) cross freely between engines.

Fusion never recurses through an application: ``apply_procedure`` only
ever *schedules* a closure body, so a loop costs at least one machine
step per iteration and the scheduler's quantum preemption is
preserved.  Python-stack depth during one fused step is bounded by the
static nesting depth of the source expression — the same bound the
expander and resolver already impose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.datum import UNSPECIFIED
from repro.errors import CompileError, UnboundVariableError
from repro.ir.nodes import (
    App,
    Const,
    DefineTop,
    GlobalRef,
    GlobalSet,
    If,
    Lambda,
    LocalRef,
    LocalSet,
    Node,
    Pcall,
    Seq,
    SetBang,
    Var,
)
from repro.machine.environment import UNBOUND
from repro.machine.frames import (
    AppFrame,
    DefineFrame,
    GlobalSetFrame,
    IfFrame,
    LocalSetFrame,
    SeqFrame,
)
from repro.machine.links import ForkLink, Join
from repro.machine.task import EVAL, VALUE, Task, TaskState
from repro.machine.tree import replace_child
from repro.machine.values import Closure

__all__ = ["Code", "CompileStats", "compile_node", "compile_program"]

#: A compiled node: ``code(machine, task)`` performs one (fused)
#: machine transition and returns the next control registers as a
#: ``(tag, payload)`` pair — or ``None`` after machine surgery (fork,
#: control operation), telling the run loop to reload from the task.
#: Attributes: ``code.triv`` (``(env) -> value`` or None), ``code.node``
#: (the source IR node).
Code = Callable[[Any, Task], "tuple[Any, Any] | None"]


@dataclass
class CompileStats:
    """Counters accumulated across every ``compile_program`` call of an
    interpreter (surfaced by the REPL's ``,stats``)."""

    nodes_compiled: int = 0
    lambdas_compiled: int = 0
    #: Fully trivial applications collapsed into a single frameless step.
    apps_inlined: int = 0
    #: ``if`` tests folded into a direct branch jump (no ``IfFrame``).
    tests_inlined: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "compile_nodes": self.nodes_compiled,
            "compile_lambdas": self.lambdas_compiled,
            "compile_apps_inlined": self.apps_inlined,
            "compile_tests_inlined": self.tests_inlined,
        }


def _finish(run: Code, node: Node, triv: Callable[[Any], Any] | None) -> Code:
    run.triv = triv  # type: ignore[attr-defined]
    run.node = node  # type: ignore[attr-defined]
    return run


class _Compiler:
    __slots__ = ("stats",)

    def __init__(self, stats: CompileStats):
        self.stats = stats

    def compile(self, node: Node) -> Code:
        self.stats.nodes_compiled += 1
        kind = type(node)
        method = _COMPILE_DISPATCH.get(kind)
        if method is None:
            if kind is Var or kind is SetBang:
                raise CompileError(
                    f"closure compiler requires resolved IR; got unresolved "
                    f"{kind.__name__}: {node!r} (run repro.ir.resolve first)"
                )
            raise CompileError(f"cannot compile IR node: {node!r}")
        return method(self, node)

    # -- leaves --------------------------------------------------------------

    def _compile_const(self, node: Const) -> Code:
        value = node.value

        def run(machine: Any, task: Task) -> Any:
            return (VALUE, value)

        return _finish(run, node, lambda env: value)

    def _compile_local_ref(self, node: LocalRef) -> Code:
        depth = node.depth
        index = node.index
        if depth == 0:

            def triv(env: Any) -> Any:
                return env.values[index]

            def run(machine: Any, task: Task) -> Any:
                return (VALUE, task.env.values[index])

        elif depth == 1:

            def triv(env: Any) -> Any:
                return env.parent.values[index]

            def run(machine: Any, task: Task) -> Any:
                return (VALUE, task.env.parent.values[index])

        else:

            def triv(env: Any) -> Any:
                d = depth
                while d:
                    env = env.parent
                    d -= 1
                return env.values[index]

            def run(machine: Any, task: Task) -> Any:
                env = task.env
                d = depth
                while d:
                    env = env.parent
                    d -= 1
                return (VALUE, env.values[index])

        return _finish(run, node, triv)

    def _compile_global_ref(self, node: GlobalRef) -> Code:
        cell = node.cell

        def triv(env: Any) -> Any:
            value = cell.value
            if value is UNBOUND:
                raise UnboundVariableError(cell.name.name)
            return value

        def run(machine: Any, task: Task) -> Any:
            value = cell.value
            if value is UNBOUND:
                raise UnboundVariableError(cell.name.name)
            return (VALUE, value)

        return _finish(run, node, triv)

    def _compile_lambda(self, node: Lambda) -> Code:
        if node.nslots is None:
            raise CompileError(
                f"closure compiler requires resolved IR; lambda {node.name or ''!s} "
                "has no nslots (run repro.ir.resolve first)"
            )
        self.stats.lambdas_compiled += 1
        body = self.compile(node.body)
        params, rest, name, nslots = node.params, node.rest, node.name, node.nslots
        effects = node.effects

        def triv(env: Any) -> Any:
            return Closure(params, rest, body, env, name, nslots, effects)

        def run(machine: Any, task: Task) -> Any:
            return (VALUE, Closure(params, rest, body, task.env, name, nslots, effects))

        return _finish(run, node, triv)

    # -- compounds -----------------------------------------------------------

    def _compile_app(self, node: App) -> Code:
        fn_code = self.compile(node.fn)
        arg_codes = tuple(self.compile(arg) for arg in node.args)
        fn_triv = fn_code.triv  # type: ignore[attr-defined]
        if fn_triv is None:
            # Operator needs real evaluation: classic frame plan, with
            # the operator's first transition fused into this step.
            def run(machine: Any, task: Task) -> Any:
                task.frames = AppFrame((), arg_codes, task.env, task.frames)
                return fn_code(machine, task)

            return _finish(run, node, None)

        trivs = [code.triv for code in arg_codes]  # type: ignore[attr-defined]
        split = 0
        while split < len(trivs) and trivs[split] is not None:
            split += 1
        if split == len(arg_codes):
            # Fully trivial: evaluate operator and operands in place and
            # apply immediately — no AppFrame, one machine step.  The
            # dominant shapes are specialized further: a ``GlobalRef``
            # operator becomes an inline cell load, and ``LocalRef``
            # depth-0 / ``Const`` operands become inline slot reads and
            # captured constants, so the hot arithmetic applications
            # (``(- n 1)``, ``(< y x)``…) run without a single triv
            # closure call.
            self.stats.apps_inlined += 1
            specialized = self._specialize_trivial_app(node, trivs)
            if specialized is not None:
                return _finish(specialized, node, None)
            if not trivs:

                def run(machine: Any, task: Task) -> Any:
                    return machine._apply_deliver(machine, task, fn_triv(task.env), [])

            elif len(trivs) == 1:
                t0 = trivs[0]

                def run(machine: Any, task: Task) -> Any:
                    env = task.env
                    return machine._apply_deliver(machine, task, fn_triv(env), [t0(env)])

            elif len(trivs) == 2:
                t0, t1 = trivs

                def run(machine: Any, task: Task) -> Any:
                    env = task.env
                    return machine._apply_deliver(
                        machine, task, fn_triv(env), [t0(env), t1(env)]
                    )

            elif len(trivs) == 3:
                t0, t1, t2 = trivs

                def run(machine: Any, task: Task) -> Any:
                    env = task.env
                    return machine._apply_deliver(
                        machine, task, fn_triv(env), [t0(env), t1(env), t2(env)]
                    )

            else:
                all_trivs = tuple(trivs)

                def run(machine: Any, task: Task) -> Any:
                    env = task.env
                    return machine._apply_deliver(
                        machine,
                        task,
                        fn_triv(env),
                        [t(env) for t in all_trivs],
                    )

            return _finish(run, node, None)

        # Mixed: fold the trivial prefix into this step, push the
        # pre-built frame plan, and fuse evaluation of the first
        # non-trivial operand.  A ``GlobalRef`` operator is inlined as
        # a cell load here too.
        first = arg_codes[split]
        pending = arg_codes[split + 1 :]
        cell = node.fn.cell if type(node.fn) is GlobalRef else None
        if split == 0:
            if cell is not None:

                def run(machine: Any, task: Task) -> Any:
                    fn = cell.value
                    if fn is UNBOUND:
                        raise UnboundVariableError(cell.name.name)
                    env = task.env
                    task.frames = AppFrame((fn,), pending, env, task.frames)
                    return first(machine, task)

            else:

                def run(machine: Any, task: Task) -> Any:
                    env = task.env
                    task.frames = AppFrame((fn_triv(env),), pending, env, task.frames)
                    return first(machine, task)

        else:
            prefix = tuple(trivs[:split])
            if cell is not None:

                def run(machine: Any, task: Task) -> Any:
                    fn = cell.value
                    if fn is UNBOUND:
                        raise UnboundVariableError(cell.name.name)
                    env = task.env
                    done = [fn]
                    for t in prefix:
                        done.append(t(env))
                    task.frames = AppFrame(tuple(done), pending, env, task.frames)
                    return first(machine, task)

            else:

                def run(machine: Any, task: Task) -> Any:
                    env = task.env
                    done = [fn_triv(env)]
                    for t in prefix:
                        done.append(t(env))
                    task.frames = AppFrame(tuple(done), pending, env, task.frames)
                    return first(machine, task)

        return _finish(run, node, None)

    @staticmethod
    def _specialize_trivial_app(node: App, trivs: list) -> Code | None:
        """Build a shape-specialized thunk for a fully trivial
        application with a ``GlobalRef`` operator, or return ``None``.

        The generic fully-trivial thunk pays one closure call per
        operator/operand.  For the shapes that dominate hot loops —
        global operator applied to depth-0 locals and constants — the
        loads are inlined into the thunk body instead: the operator is
        one cell read (plus the UNBOUND check), a depth-0 local is one
        slot read, a constant is a captured Python value.  Arities 1
        and 2 get the full treatment; other arities still inline the
        operator cell and fall back to triv calls per operand.
        """
        if type(node.fn) is not GlobalRef:
            return None
        cell = node.fn.cell

        def plan(arg: Node, triv: Callable[[Any], Any]) -> tuple[str, Any]:
            kind = type(arg)
            if kind is Const:
                return ("c", arg.value)
            if kind is LocalRef and arg.depth == 0:
                return ("l0", arg.index)
            return ("t", triv)

        plans = [plan(arg, triv) for arg, triv in zip(node.args, trivs)]

        if len(plans) == 1:
            k0, v0 = plans[0]
            if k0 == "l0":

                def run(machine: Any, task: Task) -> Any:
                    fn = cell.value
                    if fn is UNBOUND:
                        raise UnboundVariableError(cell.name.name)
                    return machine._apply_deliver(
                        machine, task, fn, [task.env.values[v0]]
                    )

            elif k0 == "c":

                def run(machine: Any, task: Task) -> Any:
                    fn = cell.value
                    if fn is UNBOUND:
                        raise UnboundVariableError(cell.name.name)
                    return machine._apply_deliver(machine, task, fn, [v0])

            else:

                def run(machine: Any, task: Task) -> Any:
                    fn = cell.value
                    if fn is UNBOUND:
                        raise UnboundVariableError(cell.name.name)
                    return machine._apply_deliver(
                        machine, task, fn, [v0(task.env)]
                    )

            return run

        if len(plans) == 2:
            (k0, v0), (k1, v1) = plans
            shape = k0 + k1
            if shape == "l0l0":

                def run(machine: Any, task: Task) -> Any:
                    fn = cell.value
                    if fn is UNBOUND:
                        raise UnboundVariableError(cell.name.name)
                    values = task.env.values
                    return machine._apply_deliver(
                        machine, task, fn, [values[v0], values[v1]]
                    )

            elif shape == "l0c":

                def run(machine: Any, task: Task) -> Any:
                    fn = cell.value
                    if fn is UNBOUND:
                        raise UnboundVariableError(cell.name.name)
                    return machine._apply_deliver(
                        machine, task, fn, [task.env.values[v0], v1]
                    )

            elif shape == "cl0":

                def run(machine: Any, task: Task) -> Any:
                    fn = cell.value
                    if fn is UNBOUND:
                        raise UnboundVariableError(cell.name.name)
                    return machine._apply_deliver(
                        machine, task, fn, [v0, task.env.values[v1]]
                    )

            elif shape == "cc":

                def run(machine: Any, task: Task) -> Any:
                    fn = cell.value
                    if fn is UNBOUND:
                        raise UnboundVariableError(cell.name.name)
                    return machine._apply_deliver(machine, task, fn, [v0, v1])

            else:
                t0 = trivs[0]
                t1 = trivs[1]

                def run(machine: Any, task: Task) -> Any:
                    fn = cell.value
                    if fn is UNBOUND:
                        raise UnboundVariableError(cell.name.name)
                    env = task.env
                    return machine._apply_deliver(
                        machine, task, fn, [t0(env), t1(env)]
                    )

            return run

        if not plans:

            def run(machine: Any, task: Task) -> Any:
                fn = cell.value
                if fn is UNBOUND:
                    raise UnboundVariableError(cell.name.name)
                return machine._apply_deliver(machine, task, fn, [])

            return run

        all_trivs = tuple(trivs)

        def run(machine: Any, task: Task) -> Any:
            fn = cell.value
            if fn is UNBOUND:
                raise UnboundVariableError(cell.name.name)
            env = task.env
            return machine._apply_deliver(
                machine, task, fn, [t(env) for t in all_trivs]
            )

        return run

    def _compile_if(self, node: If) -> Code:
        test_code = self.compile(node.test)
        then_code = self.compile(node.then)
        els_code = self.compile(node.els)
        test_triv = test_code.triv  # type: ignore[attr-defined]
        if test_triv is not None:
            # Trivial test: decide and jump in one step, no IfFrame.
            self.stats.tests_inlined += 1

            def run(machine: Any, task: Task) -> Any:
                if test_triv(task.env) is not False:
                    return then_code(machine, task)
                return els_code(machine, task)

        else:

            def run(machine: Any, task: Task) -> Any:
                task.frames = IfFrame(then_code, els_code, task.env, task.frames)
                return test_code(machine, task)

        return _finish(run, node, None)

    def _compile_seq(self, node: Seq) -> Code:
        codes = tuple(self.compile(expr) for expr in node.exprs)
        if len(codes) == 1:
            return codes[0]
        first = codes[0]
        rest = codes[1:]

        def run(machine: Any, task: Task) -> Any:
            task.frames = SeqFrame(rest, task.env, task.frames)
            return first(machine, task)

        return _finish(run, node, None)

    def _compile_local_set(self, node: LocalSet) -> Code:
        depth = node.depth
        index = node.index
        expr_code = self.compile(node.expr)
        expr_triv = expr_code.triv  # type: ignore[attr-defined]
        if expr_triv is not None:

            def run(machine: Any, task: Task) -> Any:
                env = task.env
                value = expr_triv(env)
                d = depth
                while d:
                    env = env.parent
                    d -= 1
                env.values[index] = value
                return (VALUE, UNSPECIFIED)

        else:

            def run(machine: Any, task: Task) -> Any:
                task.frames = LocalSetFrame(depth, index, task.env, task.frames)
                return expr_code(machine, task)

        return _finish(run, node, None)

    def _compile_global_set(self, node: GlobalSet) -> Code:
        cell = node.cell
        expr_code = self.compile(node.expr)
        expr_triv = expr_code.triv  # type: ignore[attr-defined]
        if expr_triv is not None:

            def run(machine: Any, task: Task) -> Any:
                value = expr_triv(task.env)
                if cell.value is UNBOUND:
                    raise UnboundVariableError(cell.name.name)
                cell.value = value
                return (VALUE, UNSPECIFIED)

        else:

            def run(machine: Any, task: Task) -> Any:
                task.frames = GlobalSetFrame(cell, task.frames)
                return expr_code(machine, task)

        return _finish(run, node, None)

    def _compile_define(self, node: DefineTop) -> Code:
        name = node.name
        expr_code = self.compile(node.expr)
        expr_triv = expr_code.triv  # type: ignore[attr-defined]
        if expr_triv is not None:

            def run(machine: Any, task: Task) -> Any:
                env = task.env
                env.globals.define(name, expr_triv(env))
                return (VALUE, UNSPECIFIED)

        else:

            def run(machine: Any, task: Task) -> Any:
                task.frames = DefineFrame(name, task.env, task.frames)
                return expr_code(machine, task)

        return _finish(run, node, None)

    def _compile_pcall(self, node: Pcall) -> Code:
        codes = tuple(self.compile(expr) for expr in node.exprs)
        count = len(codes)

        def run(machine: Any, task: Task) -> Any:
            join = Join(count, task.frames, task.link)
            replace_child(task.link, join)
            task.state = TaskState.DEAD
            for index, code in enumerate(codes):
                branch = Task((EVAL, code), task.env, None, ForkLink(join, index))
                join.children[index] = branch
                machine.spawn_task(branch)
            machine.notify_fork(join)
            return None

        return _finish(run, node, None)


_COMPILE_DISPATCH: dict[type, Callable[[_Compiler, Any], Code]] = {
    Const: _Compiler._compile_const,
    LocalRef: _Compiler._compile_local_ref,
    GlobalRef: _Compiler._compile_global_ref,
    Lambda: _Compiler._compile_lambda,
    App: _Compiler._compile_app,
    If: _Compiler._compile_if,
    Seq: _Compiler._compile_seq,
    LocalSet: _Compiler._compile_local_set,
    GlobalSet: _Compiler._compile_global_set,
    DefineTop: _Compiler._compile_define,
    Pcall: _Compiler._compile_pcall,
}


def compile_node(node: Node, stats: CompileStats | None = None) -> Code:
    """Compile one resolved top-level node to a code thunk."""
    return _Compiler(stats if stats is not None else CompileStats()).compile(node)


def compile_program(
    nodes: list[Node], stats: CompileStats | None = None
) -> list[Code]:
    """Compile a resolved program (a list of top-level nodes).

    The input must be the resolver's dialect (``LocalRef``/``GlobalRef``
    etc.); the expander's ``Var``/``SetBang`` raise
    :class:`~repro.errors.CompileError`.  Compiled code captures global
    cells by identity, so — exactly like :func:`repro.ir.resolve.
    resolve_program` — run the output on a machine over the *same*
    ``GlobalEnv`` the resolver interned into.
    """
    if stats is None:
        stats = CompileStats()
    compiler = _Compiler(stats)
    return [compiler.compile(node) for node in nodes]
