"""``spawn``, process controllers and process continuations.

This is the paper's contribution (Sections 4, 5 and 7):

* ``(spawn p)`` establishes a fresh **root** (a labeled stack boundary)
  and invokes ``p`` with the root's **controller**.
* ``(c f)`` — applying the controller — is valid only if the root lies
  on the path from the application to the top of the process tree.  It
  prunes the *smallest complete subtree containing both the root and
  the application* (suspending any concurrently running branches of
  that subtree), packages it as a process continuation ``k`` with the
  application point as hole, and applies ``f`` to ``k`` in the
  continuation above the root.
* ``(k v)`` — applying the process continuation — grafts a fresh copy
  of the subtree (root included, so the controller is valid again) onto
  the current continuation and resumes all of its tasks, delivering
  ``v`` at the hole.  It composes; it never aborts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import DeadControllerError
from repro.machine.links import Label, LabelLink
from repro.machine.task import APPLY, Task, TaskState
from repro.machine.tree import capture_subtree, reinstate, replace_child
from repro.machine.values import MachineApplicable, check_arity

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.scheduler import Machine

__all__ = ["ProcessController", "ProcessContinuation", "spawn_primitive"]


class ProcessController(MachineApplicable):
    """The controller passed to a spawned procedure.

    Applying it captures-and-aborts back to (and including) the nearest
    live instance of its root.
    """

    __slots__ = ("label",)

    def __init__(self, label: Label):
        self.label = label

    def machine_apply(self, machine: "Machine", task: Task, args: list[Any]) -> None:
        check_arity(f"controller {self.label.name}", len(args), 1, 1)
        receiver = args[0]
        link = _find_own_label(task, self.label)
        if link is None:
            raise DeadControllerError(
                f"controller {self.label.name}: its root is not in the "
                "continuation of this application (the process returned, "
                "was aborted, or the application happened outside the "
                "process subtree)"
            )
        cont_frames, cont_link = link.cont_frames, link.cont_link
        capture = capture_subtree(machine, link, task, mode="move")
        machine.notify_capture(task, "controller")
        continuation = ProcessContinuation(capture)
        successor = Task(
            (APPLY, receiver, [continuation]), task.env, cont_frames, cont_link  # type: ignore[arg-type]
        )
        replace_child(cont_link, successor)  # type: ignore[arg-type]
        machine.spawn_task(successor)

    def __repr__(self) -> str:
        return f"#<process-controller {self.label.name}>"


def _find_own_label(task: Task, label: Label) -> LabelLink | None:
    from repro.machine.tree import find_label_link

    return find_label_link(task, lambda candidate: candidate is label)


class ProcessContinuation(MachineApplicable):
    """A captured process subtree, applied as a one-argument procedure.

    Multi-shot: each application grafts an independent copy (control
    points cloned, frames shared — Section 7's cost model).
    """

    __slots__ = ("capture",)

    def __init__(self, capture: Any):
        self.capture = capture

    def machine_apply(self, machine: "Machine", task: Task, args: list[Any]) -> None:
        check_arity("process continuation", len(args), 1, 1)
        value = args[0]
        # The invoking task's continuation becomes the parent of the
        # grafted subtree; the task itself is consumed by the graft.
        task.state = TaskState.DEAD
        machine.notify_reinstate(task, "process")
        reinstate(machine, self.capture, value, task.frames, task.link)

    def control_points(self) -> int:
        """Labels + forks inside the captured subtree (introspection)."""
        return self.capture.control_points()

    def __repr__(self) -> str:
        return f"#<process-continuation {self.capture.root.label.name}>"


def spawn_primitive(machine: "Machine", task: Task, args: list[Any]) -> None:
    """``(spawn p)``: plant a fresh root above the current point and
    apply ``p`` to the new root's controller."""
    procedure = args[0]
    label = Label()
    link = LabelLink(label, task.frames, task.link, child=task)
    replace_child(task.link, link)
    task.frames = None
    task.link = link
    task.tag = APPLY
    task.payload = (procedure, [ProcessController(label)])
