"""Traditional ``call/cc`` — the Section 3 baselines.

The paper's point in Section 3 is that once concurrency exists, the
"current continuation" is ambiguous: it either reaches back to the root
of the whole process tree or stays within the current leaf.  Both
readings are implemented here so the inadequacy arguments can be
reproduced as executable tests and benchmarks:

* :func:`callcc_primitive` (``call/cc``) — **whole-tree** policy: the
  captured continuation is a snapshot of the entire process tree with
  the application point as hole; invoking it aborts everything and
  restores the snapshot.  In sequential programs this is exactly R3RS
  ``call/cc`` (multi-shot included).
* :func:`callcc_leaf_primitive` (``call/cc-leaf``) — **leaf** policy:
  captures only the invoking task's own control state by reference.
  Local uses inside one branch work; uses that cross branches leave an
  orphaned branch behind or hit a completed fork, raising the
  descriptive errors that stand in for the paper's "does not in general
  make sense".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import ControlError
from repro.machine.links import TOMBSTONE, HaltLink
from repro.machine.task import APPLY, VALUE, Task, TaskState
from repro.machine.tree import (
    abandon_position,
    capture_subtree,
    child_of,
    reinstate,
    replace_child,
)
from repro.machine.values import MachineApplicable, check_arity

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.frames import Frame
    from repro.machine.links import Link
    from repro.machine.scheduler import Machine

__all__ = [
    "RootContinuation",
    "LeafContinuation",
    "callcc_primitive",
    "callcc_leaf_primitive",
]


class RootContinuation(MachineApplicable):
    """A whole-tree continuation: abortive, multi-shot."""

    __slots__ = ("capture",)

    def __init__(self, capture: Any):
        self.capture = capture

    def machine_apply(self, machine: "Machine", task: Task, args: list[Any]) -> None:
        check_arity("continuation", len(args), 1, 1)
        value = args[0]
        # Abort the main tree (future trees are independent, Section
        # 8), then restore the snapshot at the root.
        machine.kill_main_tree_tasks()
        task.state = TaskState.DEAD
        halt = HaltLink(machine)
        machine.root_entity = None
        machine.notify_reinstate(task, "whole-tree")
        reinstate(machine, self.capture, value, None, halt)
        # The reinstated snapshot's root becomes the new implicit root
        # label (so nested whole-tree call/cc keeps working).
        machine.root_label_link = machine.root_entity

    def __repr__(self) -> str:
        return "#<continuation (whole-tree)>"


def callcc_primitive(machine: "Machine", task: Task, args: list[Any]) -> None:
    """``(call/cc f)`` with the whole-tree policy."""
    receiver = args[0]
    root = machine.root_label_link
    if root is None:  # pragma: no cover - machine always plants a root
        raise ControlError("call/cc: no root label")
    capture = capture_subtree(machine, root, task, mode="copy")
    machine.notify_capture(task, "call/cc")
    task.tag = APPLY
    task.payload = (receiver, [RootContinuation(capture)])


class LeafContinuation(MachineApplicable):
    """A branch-local continuation captured by reference.

    Sound only while its capture context is still the live context of
    some branch; the machine raises :class:`ControlError` on the
    incoherent uses, reproducing Section 3's failure modes instead of
    silently corrupting the tree.
    """

    __slots__ = ("frames", "link")

    def __init__(self, frames: "Frame | None", link: "Link"):
        self.frames = frames
        self.link = link

    def machine_apply(self, machine: "Machine", task: Task, args: list[Any]) -> None:
        check_arity("leaf continuation", len(args), 1, 1)
        value = args[0]
        occupant = child_of(self.link)
        if occupant is not task:
            if isinstance(occupant, Task):
                # Another task currently owns the captured position:
                # abort it (this leaf's continuation is being replaced).
                occupant.state = TaskState.DEAD
            elif occupant is not None and occupant is not TOMBSTONE:
                raise ControlError(
                    "leaf continuation: the captured branch has since "
                    "forked or spawned; a leaf-local continuation cannot "
                    "describe it (Section 3)"
                )
            if task.link is not self.link:
                abandon_position(machine, task)
        task.frames = self.frames
        task.link = self.link
        replace_child(self.link, task)
        task.tag = VALUE
        task.payload = value
        machine.notify_reinstate(task, "leaf")

    def __repr__(self) -> str:
        return "#<continuation (leaf)>"


def callcc_leaf_primitive(machine: "Machine", task: Task, args: list[Any]) -> None:
    """``(call/cc-leaf f)`` with the leaf policy."""
    receiver = args[0]
    continuation = LeafContinuation(task.frames, task.link)
    machine.notify_capture(task, "call/cc-leaf")
    task.tag = APPLY
    task.payload = (receiver, [continuation])
