"""Felleisen's ``F`` and the prompt ``#`` — the delimited baseline.

Section 3 of the paper reviews these operators and finds them wanting
for tree-structured concurrency: the continuation captured by ``F``
extends only to the *last* prompt (prompts shadow one another), so
control over a larger region requires knowing every prompt in between.
We implement them faithfully so that critique is executable:

* ``(call-with-prompt thunk)`` (surface syntax ``(prompt e ...)``)
  plants a :class:`PromptLabel` — a label that every ``F`` recognises.
* ``(F f)`` captures the continuation up to — **not including** — the
  nearest prompt as a *functional* (composable) continuation, aborts up
  to the prompt (leaving the prompt in place), and applies ``f`` to the
  captured continuation there.

Invoking the functional continuation composes the captured context onto
the current one.  Per Felleisen's semantics the reinstated context does
*not* re-establish the prompt; the graft is sealed with a fresh
anonymous label that neither ``F`` nor any controller recognises.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import PromptMissingError
from repro.machine.links import ForkLink, Join, Label, LabelLink, PromptLabel
from repro.machine.task import APPLY, Task, TaskState
from repro.machine.tree import (
    Capture,
    capture_subtree,
    find_label_link,
    reinstate,
)
from repro.machine.values import MachineApplicable, check_arity

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.scheduler import Machine

__all__ = [
    "FunctionalContinuation",
    "call_with_prompt_primitive",
    "fcontrol_primitive",
]


class FunctionalContinuation(MachineApplicable):
    """A composable continuation captured by ``F``.  Multi-shot."""

    __slots__ = ("capture",)

    def __init__(self, capture: Capture):
        self.capture = capture

    def machine_apply(self, machine: "Machine", task: Task, args: list[Any]) -> None:
        check_arity("functional continuation", len(args), 1, 1)
        value = args[0]
        task.state = TaskState.DEAD
        machine.notify_reinstate(task, "functional")
        reinstate(
            machine,
            self.capture,
            value,
            task.frames,
            task.link,
            fresh_label=Label("fk"),
        )

    def __repr__(self) -> str:
        return "#<functional-continuation>"


def call_with_prompt_primitive(machine: "Machine", task: Task, args: list[Any]) -> None:
    """``(call-with-prompt thunk)``: plant a prompt, run the thunk."""
    thunk = args[0]
    label = PromptLabel()
    link = LabelLink(label, task.frames, task.link, child=task)
    from repro.machine.tree import replace_child

    replace_child(task.link, link)
    task.frames = None
    task.link = link
    task.tag = APPLY
    task.payload = (thunk, [])


def fcontrol_primitive(machine: "Machine", task: Task, args: list[Any]) -> None:
    """``(F f)``: capture to the nearest prompt, abort to it, apply
    ``f`` to the captured functional continuation under the prompt."""
    receiver = args[0]
    prompt_link = find_label_link(task, lambda label: isinstance(label, PromptLabel))
    if prompt_link is None:
        raise PromptMissingError("F: no enclosing prompt")
    # Detach the region strictly below the prompt and hang it under a
    # synthetic root so the uniform capture machinery applies.  The
    # prompt link itself stays in the tree.
    region = prompt_link.child
    synthetic = LabelLink(Label("fk"), None, None, child=region)
    _set_parent(region, synthetic)
    capture = capture_subtree(machine, synthetic, task, mode="move")
    machine.notify_capture(task, "F")
    successor = Task(
        (APPLY, receiver, [FunctionalContinuation(capture)]),
        task.env,
        None,
        prompt_link,
    )
    prompt_link.child = successor
    machine.spawn_task(successor)


def _set_parent(entity: Any, link: LabelLink) -> None:
    """Rewire an entity's upward pointer to ``link``."""
    if isinstance(entity, Task):
        entity.link = link
    elif isinstance(entity, (LabelLink, Join)):
        entity.cont_link = link
    elif isinstance(entity, ForkLink):  # pragma: no cover - defensive
        raise TypeError("fork link is not an entity")
    # None / tombstone: nothing to rewire.
