"""Install the control operators into a global environment."""

from __future__ import annotations

from repro.datum import intern
from repro.machine.environment import GlobalEnv
from repro.machine.values import ControlPrimitive

from repro.control.callcc import callcc_leaf_primitive, callcc_primitive
from repro.control.fcontrol import call_with_prompt_primitive, fcontrol_primitive
from repro.control.engines import register_engine_primitives
from repro.control.futures import register_future_primitives
from repro.control.spawn import spawn_primitive

__all__ = ["register_control_primitives"]


def register_control_primitives(globals_: GlobalEnv) -> None:
    """Bind ``spawn``, the ``call/cc`` policies, ``F`` and
    ``call-with-prompt`` in ``globals_``."""
    entries = [
        ("spawn", spawn_primitive, 1, 1),
        ("call/cc", callcc_primitive, 1, 1),
        ("call-with-current-continuation", callcc_primitive, 1, 1),
        ("call/cc-leaf", callcc_leaf_primitive, 1, 1),
        ("F", fcontrol_primitive, 1, 1),
        ("fcontrol", fcontrol_primitive, 1, 1),
        ("call-with-prompt", call_with_prompt_primitive, 1, 1),
    ]
    for name, fn, low, high in entries:
        globals_.define(intern(name), ControlPrimitive(name, fn, low, high))
    register_future_primitives(globals_)
    register_engine_primitives(globals_)
