"""Engines in the Scheme machine — reference [6] at the machine level.

Dybvig & Hieb's "Engines from Continuations" builds bounded
computations from continuation capture plus a timer.  Here the timer is
the machine's step counter and the captured computation is an entire
paused process tree: each engine owns a private :class:`Machine`
(sharing the caller's global environment — the store is one), stepped
in fuel-sized slices.

Scheme API::

    (make-engine thunk)                  ; → engine
    (engine-run engine fuel success failure)
        ;; runs ≤ fuel machine steps:
        ;;   completes → (success value remaining-fuel)
        ;;   expires   → (failure engine)   ; same engine, re-armed
    (engine? x)

Engines may spawn, fork and use controllers internally — a whole
process tree is suspended between slices.  A controller created inside
an engine is invalid outside it (separate trees, Section 8's isolation,
enforced structurally).  Engines nest: an engine can run engines.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.counters import SerialCounter
from repro.datum import intern
from repro.errors import SchemeError, WrongTypeError
from repro.machine.environment import GlobalEnv
from repro.machine.task import APPLY, VALUE, Task
from repro.machine.values import ControlPrimitive

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.scheduler import Machine

__all__ = ["EngineValue", "register_engine_primitives"]

_ids = SerialCounter()


class EngineValue:
    """A paused bounded computation (a private machine mid-run)."""

    __slots__ = ("uid", "machine", "spent", "mileage")

    def __init__(self, machine: "Machine"):
        self.uid = next(_ids)
        self.machine = machine
        self.spent = False
        self.mileage = 0

    def __repr__(self) -> str:
        state = "spent" if self.spent else f"mileage={self.mileage}"
        return f"#<engine {self.uid} {state}>"


def _make_engine(machine: "Machine", task: Task, args: list[Any]) -> None:
    from repro.machine.scheduler import Machine

    thunk = args[0]
    sub = Machine(
        machine.globals,
        policy=machine.policy,
        quantum=machine.quantum,
        engine=machine.engine,
    )
    sub.begin_apply(thunk, [])
    task.tag = VALUE
    task.payload = EngineValue(sub)


def _engine_run(machine: "Machine", task: Task, args: list[Any]) -> None:
    engine, fuel, success, failure = args
    if not isinstance(engine, EngineValue):
        raise WrongTypeError(f"engine-run: not an engine: {engine!r}")
    if isinstance(fuel, bool) or not isinstance(fuel, int) or fuel <= 0:
        raise SchemeError(f"engine-run: fuel must be a positive integer, got {fuel!r}")
    if engine.spent:
        raise SchemeError("engine-run: engine already completed")
    sub = engine.machine
    # The sub-machine runs entirely inside one step of the outer
    # machine, so the outer wall-clock deadline (the host's per-request
    # budget) must be visible to it — otherwise a large fuel could
    # outlive the deadline unpreempted.
    sub.deadline = machine.deadline
    start = sub.steps_total
    halted = sub.step_n(fuel)
    used = sub.steps_total - start
    engine.mileage += used
    if halted:
        engine.spent = True
        value = sub.finish()  # collects the halt value, parks futures
        task.tag = APPLY
        task.payload = (success, [value, fuel - used])
    else:
        task.tag = APPLY
        task.payload = (failure, [engine])


def _is_engine(machine: "Machine", task: Task, args: list[Any]) -> None:
    task.tag = VALUE
    task.payload = isinstance(args[0], EngineValue)


def _engine_mileage(machine: "Machine", task: Task, args: list[Any]) -> None:
    engine = args[0]
    if not isinstance(engine, EngineValue):
        raise WrongTypeError(f"engine-mileage: not an engine: {engine!r}")
    task.tag = VALUE
    task.payload = engine.mileage


def register_engine_primitives(globals_: GlobalEnv) -> None:
    """Bind ``make-engine``, ``engine-run``, ``engine?``,
    ``engine-mileage``."""
    entries = [
        ("make-engine", _make_engine, 1, 1),
        ("engine-run", _engine_run, 4, 4),
        ("engine?", _is_engine, 1, 1),
        ("engine-mileage", _engine_mileage, 1, 1),
    ]
    for name, fn, low, high in entries:
        globals_.define(intern(name), ControlPrimitive(name, fn, low, high))
