"""Multilisp-style futures in the abstract machine — Section 8's
"forest of trees".

``(future thunk)`` starts ``thunk`` as an **independent** process: a
new tree in the forest, rooted at its own halt.  It immediately returns
a *placeholder*.  ``(touch ph)`` yields the placeholder's value,
blocking the touching task until the future's tree delivers it
(``touch`` on a non-placeholder value is the identity, as in Multilisp
where strict operations touch implicitly).  ``(placeholder? x)`` and
``(future-done? ph)`` inspect without blocking.

The Section 8 design point falls out structurally: a process controller
can never affect another tree, because walking up from a future's task
reaches that future's halt without ever meeting a foreign root —
``tests/control/test_machine_futures.py`` pins this down.

Future trees **survive top-level form boundaries**: a future started in
one REPL form can be touched in a later one; the scheduler parks
unfinished future tasks between forms.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.counters import SerialCounter
from repro.datum import intern
from repro.errors import WrongTypeError
from repro.machine.environment import GlobalEnv
from repro.machine.links import HaltLink
from repro.machine.task import APPLY, VALUE, Task, TaskState
from repro.machine.values import ControlPrimitive

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.scheduler import Machine

__all__ = ["FuturePlaceholder", "register_future_primitives"]

_ids = SerialCounter()


class FuturePlaceholder:
    """The eventual value of a ``future``."""

    __slots__ = ("uid", "resolved", "value", "waiters")

    def __init__(self) -> None:
        self.uid = next(_ids)
        self.resolved = False
        self.value: Any = None
        self.waiters: list[Task] = []

    def resolve(self, machine: "Machine", value: Any) -> None:
        """Deliver the future's value; wake every still-waiting waiter
        (a waiter whose form has since finished was marked DEAD by the
        scheduler and must stay dead)."""
        self.resolved = True
        self.value = value
        for waiter in self.waiters:
            if waiter.state is not TaskState.WAITING:
                continue
            waiter.state = TaskState.RUNNABLE
            waiter.tag = VALUE
            waiter.payload = value
            machine.waiting_tasks.discard(waiter)
            machine.enqueue(waiter)
        self.waiters.clear()

    def __repr__(self) -> str:
        state = "determined" if self.resolved else "undetermined"
        return f"#<placeholder {self.uid} {state}>"


def _future(machine: "Machine", task: Task, args: list[Any]) -> None:
    thunk = args[0]
    placeholder = FuturePlaceholder()
    halt = HaltLink(machine, placeholder)
    root = Task((APPLY, thunk, []), task.env, None, halt)
    halt.child = root
    machine.spawn_task(root)
    machine.register_future_root(root)
    task.tag = VALUE
    task.payload = placeholder


def _touch(machine: "Machine", task: Task, args: list[Any]) -> None:
    value = args[0]
    if not isinstance(value, FuturePlaceholder):
        # Multilisp: touching a non-placeholder is the identity.
        task.tag = VALUE
        task.payload = value
        return
    if value.resolved:
        task.tag = VALUE
        task.payload = value.value
        return
    task.state = TaskState.WAITING
    value.waiters.append(task)
    machine.waiting_tasks.add(task)


def _is_placeholder(machine: "Machine", task: Task, args: list[Any]) -> None:
    task.tag = VALUE
    task.payload = isinstance(args[0], FuturePlaceholder)


def _future_done(machine: "Machine", task: Task, args: list[Any]) -> None:
    placeholder = args[0]
    if not isinstance(placeholder, FuturePlaceholder):
        raise WrongTypeError(f"future-done?: not a placeholder: {placeholder!r}")
    task.tag = VALUE
    task.payload = placeholder.resolved


def register_future_primitives(globals_: GlobalEnv) -> None:
    """Bind ``future``, ``touch``, ``placeholder?``, ``future-done?``."""
    entries = [
        ("future", _future, 1, 1),
        ("touch", _touch, 1, 1),
        ("placeholder?", _is_placeholder, 1, 1),
        ("future-done?", _future_done, 1, 1),
    ]
    for name, fn, low, high in entries:
        globals_.define(intern(name), ControlPrimitive(name, fn, low, high))
