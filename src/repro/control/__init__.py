"""Control operators.

* :mod:`repro.control.spawn` — the paper's contribution: ``spawn``,
  process controllers and process continuations (Sections 4–5, 7).
* :mod:`repro.control.callcc` — traditional ``call/cc`` baselines, in
  both of Section 3's flavours (whole-tree and leaf-local).
* :mod:`repro.control.fcontrol` — Felleisen's ``F`` and the prompt
  ``#`` (Section 3's delimited-control baseline).

:func:`register_control_primitives` installs them all into a global
environment.
"""

from repro.control.spawn import (
    ProcessController,
    ProcessContinuation,
    spawn_primitive,
)
from repro.control.callcc import (
    RootContinuation,
    LeafContinuation,
    callcc_primitive,
    callcc_leaf_primitive,
)
from repro.control.fcontrol import (
    FunctionalContinuation,
    call_with_prompt_primitive,
    fcontrol_primitive,
)
from repro.control.registry import register_control_primitives

__all__ = [
    "ProcessController",
    "ProcessContinuation",
    "spawn_primitive",
    "RootContinuation",
    "LeafContinuation",
    "callcc_primitive",
    "callcc_leaf_primitive",
    "FunctionalContinuation",
    "call_with_prompt_primitive",
    "fcontrol_primitive",
    "register_control_primitives",
]
