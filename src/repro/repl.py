"""Interactive REPL and command-line interface.

    python -m repro                   # interactive REPL
    python -m repro program.ss        # run a file
    python -m repro -e "(+ 1 2)"      # evaluate and print
    python -m repro --examples        # list the paper's programs
    python -m repro --engine dict ... # pick an execution engine
    python -m repro --no-resolve ...  # alias for --engine dict (A/B runs)
    python -m repro --no-analysis ... # skip the capture/effect phase (A/B)
    python -m repro --deadline 0.5    # per-evaluation wall-clock budget

REPL meta-commands:

    ,help            this message
    ,load <name>     load a paper example by name (,load sum-of-products)
    ,examples        list paper example names
    ,stats           engine + machine + compile-stage counters (forks,
                     captures, locals resolved, nodes compiled,
                     analysis.* facts and grants, ...); with --profile
                     also the VM run-loop counters (quanta, spill
                     causes, write-backs avoided)
    ,tree            render the last process-tree statistics
    ,trace <expr>    evaluate with a control-event trace
    ,analyze <expr>  capture/effect analysis: per-form facts and the
                     pure/capture-heavy/spawning classification, plus
                     the controller escape report for spawn sites
    ,codegen <expr>  show the Python source the codegen engine emits
                     for a form (against this REPL's live globals and
                     macros) and its ir-hash code-cache status
    ,quit            exit
"""

from __future__ import annotations

import argparse
import sys
from typing import Any

from repro.api import Interpreter
from repro.datum import UNSPECIFIED, scheme_repr
from repro.errors import ReproError
from repro.lib import paper_examples

__all__ = ["main", "Repl"]

_BANNER = """repro — Continuations and Concurrency (Hieb & Dybvig, PPoPP 1990)
Scheme with spawn / controllers / process continuations / pcall.
Type ,help for meta-commands, ,quit to exit.
"""


class Repl:
    """A line-oriented REPL with multi-line form buffering."""

    def __init__(
        self,
        interp: Interpreter | None = None,
        out: Any = None,
        *,
        deadline: float | None = None,
        eval_max_steps: int | None = None,
    ):
        self.interp = interp if interp is not None else Interpreter(echo_output=False)
        self.out = out if out is not None else sys.stdout
        self.buffer = ""
        # Per-evaluation budgets (the host-runtime mechanism): each
        # entered form gets this wall-clock allowance / step budget; a
        # miss fails that evaluation only, the REPL keeps going.
        self.deadline = deadline
        self.eval_max_steps = eval_max_steps

    # -- plumbing --------------------------------------------------------

    def _print(self, text: str = "") -> None:
        print(text, file=self.out)

    def _balanced(self, text: str) -> bool:
        """Cheap paren balance check for multi-line entry (strings and
        comments handled)."""
        depth = 0
        in_string = False
        index = 0
        while index < len(text):
            ch = text[index]
            if in_string:
                if ch == "\\":
                    index += 1
                elif ch == '"':
                    in_string = False
            elif ch == '"':
                in_string = True
            elif ch == ";":
                while index < len(text) and text[index] != "\n":
                    index += 1
            elif ch in "([":
                depth += 1
            elif ch in ")]":
                depth -= 1
            index += 1
        return depth <= 0 and not in_string

    # -- commands ---------------------------------------------------------

    def handle_meta(self, line: str) -> bool:
        """Process a ,command; returns False when the REPL should exit."""
        parts = line[1:].split(None, 1)
        command = parts[0] if parts else "help"
        argument = parts[1].strip() if len(parts) > 1 else ""
        if command in ("quit", "q", "exit"):
            return False
        if command == "help":
            self._print(__doc__ or "")
        elif command == "examples":
            for name, (_, kind) in paper_examples.ALL.items():
                self._print(f"  {name:32s} ({kind})")
        elif command == "load":
            if not argument:
                self._print("usage: ,load <example-name>")
            else:
                try:
                    self.interp.load_paper_example(argument)
                    self._print(f"loaded {argument}")
                except KeyError:
                    self._print(f"unknown example: {argument} (try ,examples)")
                except ValueError as exc:
                    self._print(str(exc))
        elif command == "stats":
            self._print(f"  {'engine':16s} {self.interp.engine}")
            for key, value in self.interp.stats.items():
                self._print(f"  {key:16s} {value}")
        elif command == "tree":
            from repro.machine.inspect import tree_summary

            summary = tree_summary(self.interp.machine.root_entity)
            for key, value in summary.items():
                self._print(f"  {key:12s} {value}")
        elif command == "trace":
            if not argument:
                self._print("usage: ,trace <expression>")
            else:
                from repro.machine.trace import Tracer

                with Tracer(self.interp.machine) as tracer:
                    self.eval_and_print(argument)
                self._print(tracer.render())
        elif command == "analyze":
            if not argument:
                self._print("usage: ,analyze <expression>")
            else:
                from repro.analysis import analyze, spawn_report

                try:
                    # Facts against this REPL's live globals and macros,
                    # exactly what submit would compute for it.
                    report = analyze(argument, session=self.interp.session)
                    self._print(report.summary())
                    self._print(spawn_report(argument))
                except ReproError as exc:
                    self._print(f"error: {exc}")
        elif command == "codegen":
            if not argument:
                self._print("usage: ,codegen <expression>")
            else:
                self._show_codegen(argument)
        else:
            self._print(f"unknown command ,{command} (try ,help)")
        return True

    def _show_codegen(self, source: str) -> None:
        """,codegen — the emitted Python for each top-level form, plus
        the ir-hash code-cache verdict (mirrors ,analyze: the form is
        expanded and resolved against this REPL's live session)."""
        from repro.expander import expand_program
        from repro.ir import resolve_program, stable_hash
        from repro.ir.codegen import cache_info, emitted_source, is_cached
        from repro.reader import read_all

        session = self.interp.session
        try:
            forms = read_all(source)
            nodes = expand_program(forms, session.expand_env)
            nodes = resolve_program(nodes, session.globals)
            if session.analysis:
                from repro.analysis import annotate_program

                annotate_program(nodes, session.globals)
            for node in nodes:
                digest = stable_hash(node)
                status = "hit" if is_cached(node) else "miss"
                self._print(f"; ir-hash {digest[:16]}… cache {status}")
                self._print(emitted_source(node))
        except ReproError as exc:
            self._print(f"error: {exc}")
            return
        info = cache_info()
        self._print(f"; code cache {info['size']}/{info['capacity']} entries")

    def eval_and_print(self, source: str) -> None:
        try:
            values = self.interp.run(
                source, max_steps=self.eval_max_steps, deadline=self.deadline
            )
        except ReproError as exc:
            self._print(f"error: {exc}")
            return
        except RecursionError:
            self._print("error: expansion recursion limit")
            return
        output = self.interp.output_text()
        if output:
            self._print(output.rstrip("\n"))
            self.interp.clear_output()
        for value in values:
            if value is not UNSPECIFIED and value is not None:
                self._print(scheme_repr(value))

    # -- loop --------------------------------------------------------------

    def feed_line(self, line: str) -> bool:
        """Feed one input line; returns False when the REPL should exit."""
        if not self.buffer and line.strip().startswith(","):
            return self.handle_meta(line.strip())
        self.buffer += line + "\n"
        if self._balanced(self.buffer):
            source, self.buffer = self.buffer, ""
            if source.strip():
                self.eval_and_print(source)
        return True

    def prompt(self) -> str:
        return "... " if self.buffer else ">>> "

    def run_interactive(self) -> None:  # pragma: no cover - terminal loop
        self._print(_BANNER)
        while True:
            try:
                line = input(self.prompt())
            except EOFError:
                self._print()
                return
            except KeyboardInterrupt:
                self._print("\n(interrupted; buffer cleared)")
                self.buffer = ""
                continue
            if not self.feed_line(line):
                return


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scheme with process continuations (Hieb & Dybvig 1990)",
    )
    parser.add_argument("file", nargs="?", help="Scheme file to run")
    parser.add_argument("-e", "--eval", dest="expr", help="evaluate and print")
    parser.add_argument("--examples", action="store_true", help="list paper examples")
    parser.add_argument(
        "--policy",
        default="round-robin",
        choices=["round-robin", "random", "serial"],
        help="pcall scheduling policy",
    )
    parser.add_argument("--seed", type=int, default=None, help="random-policy seed")
    parser.add_argument(
        "--max-steps", type=int, default=None, help="machine step budget (lifetime)"
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-evaluation wall-clock deadline; a miss fails that "
        "evaluation only (the host-runtime budget mechanism)",
    )
    parser.add_argument(
        "--eval-max-steps",
        type=int,
        default=None,
        metavar="N",
        help="per-evaluation step budget, enforced exactly (raises "
        "StepBudgetExceeded for that evaluation only)",
    )
    parser.add_argument(
        "--engine",
        default=None,
        choices=["dict", "resolved", "compiled", "codegen"],
        help="execution engine: 'compiled' (default; resolved IR "
        "closure-compiled to code thunks), 'codegen' (resolved IR "
        "emitted as Python source, compile()d once and cached by "
        "ir-hash), 'resolved' (tree-walk the resolved IR), or 'dict' "
        "(the original dict-chain interpreter)",
    )
    parser.add_argument(
        "--no-resolve",
        action="store_true",
        help="alias for --engine dict: skip the lexical-addressing "
        "resolver pass (dict-chain environments; the benchable "
        "ablation baseline)",
    )
    parser.add_argument(
        "--no-analysis",
        action="store_true",
        help="skip the capture/effect analysis phase (repro.analysis."
        "effects): no lambda facts, no request classification, no "
        "enlarged quanta for proven single-task forms — the ablation "
        "baseline for benchmarks/bench_analysis.py",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="keep VM run-loop counters (quanta, spill causes, "
        "write-backs avoided); shown by ,stats",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="record control events and quantum timings (repro.obs) "
        "and write a chrome://tracing / Perfetto JSON trace to PATH "
        "on exit",
    )
    args = parser.parse_args(argv)

    if args.examples:
        for name, (_, kind) in paper_examples.ALL.items():
            print(f"  {name:32s} ({kind})")
        return 0

    engine = args.engine
    if engine is None:
        engine = "dict" if args.no_resolve else "compiled"
    elif args.no_resolve and engine != "dict":
        parser.error("--no-resolve contradicts --engine " + engine)
    interp = Interpreter(
        policy=args.policy,
        seed=args.seed,
        max_steps=args.max_steps,
        echo_output=False,
        engine=engine,
        profile=args.profile,
        record=args.trace_out is not None,
        analysis=not args.no_analysis,
    )
    repl = Repl(interp, deadline=args.deadline, eval_max_steps=args.eval_max_steps)

    def finish() -> int:
        if args.trace_out is not None and interp.recorder is not None:
            import json

            with open(args.trace_out, "w", encoding="utf-8") as out:
                json.dump(interp.recorder.to_chrome_trace(), out)
            print(
                f"wrote {len(interp.recorder)} events to {args.trace_out} "
                "(open in chrome://tracing or ui.perfetto.dev)",
                file=sys.stderr,
            )
        return 0

    if args.expr is not None:
        repl.eval_and_print(args.expr)
        return finish()
    if args.file is not None:
        with open(args.file) as handle:
            source = handle.read()
        repl.eval_and_print(source)
        return finish()
    try:
        repl.run_interactive()  # pragma: no cover - terminal loop
    finally:
        finish()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
