"""The public API: :class:`Interpreter`.

    >>> from repro import Interpreter
    >>> interp = Interpreter()
    >>> interp.eval("(+ 1 2)")
    3
    >>> interp.run("(define (twice f x) (f (f x)))")
    >>> interp.eval("(twice (lambda (n) (* n n)) 3)")
    81

``Interpreter`` wires together the reader, the expander, the machine,
the primitive library, the control operators and the Scheme prelude.
Paper programs can be loaded by name via :meth:`load_paper_example`.
"""

from __future__ import annotations

from typing import Any

from repro.datum import scheme_repr
from repro.expander import ExpandEnv, expand_program
from repro.control import register_control_primitives
from repro.ir import CompileStats, ResolverStats, compile_program, resolve_program
from repro.lib import PRELUDE, paper_examples
from repro.lib.derived import LIBRARIES
from repro.machine.environment import GlobalEnv
from repro.machine.scheduler import Machine, SchedulerPolicy
from repro.primitives import OutputBuffer, install_primitives
from repro.reader import read_all

__all__ = ["Interpreter"]


class Interpreter:
    """A complete Scheme-with-process-continuations system.

    Parameters
    ----------
    policy:
        Scheduling policy for ``pcall`` branches: ``"round-robin"``
        (default, deterministic), ``"random"`` (seeded by ``seed``) or
        ``"serial"``.
    seed:
        RNG seed for the random policy.
    quantum:
        Steps a task runs before the scheduler rotates (round-robin).
    max_steps:
        Optional global step budget; exceeding it raises
        :class:`repro.errors.StepBudgetExceeded`.
    prelude:
        Load the Scheme prelude (list utilities, tree helpers).  On by
        default; switch off for a bare machine.
    echo_output:
        Also print ``display`` output to real stdout.
    engine:
        Execution engine, one of ``"dict"``, ``"resolved"``,
        ``"compiled"`` (see :data:`repro.machine.scheduler.ENGINES`).
        Defaults to ``"compiled"``: the full pipeline reader → expand →
        resolve → compile → machine.  ``"resolved"`` stops after the
        resolver and tree-walks the resolved IR; ``"dict"`` is the
        original dict-chain interpreter (the seed baseline).  All three
        agree on every program — ``benchmarks/run_all.py`` runs the
        three-way A/B.
    resolve:
        Backward-compatible alias: ``resolve=False`` selects the
        ``"dict"`` engine (the ``--no-resolve`` CLI flag).  Ignored
        when ``engine`` is given explicitly.
    batched:
        Run tasks in quantum batches with the control registers held in
        Python locals (the default).  ``batched=False`` selects the
        unbatched ablation driver — one reference-stepper call per
        transition with the PR-2 apply path — used by the benchmark A/B
        column (see DESIGN.md S21).
    profile:
        Keep VM run-loop counters (quanta, spill causes, write-backs
        avoided) in ``machine.vm_stats``; surfaced through
        :attr:`stats` and the REPL's ``,stats``.
    """

    def __init__(
        self,
        policy: str | SchedulerPolicy = SchedulerPolicy.ROUND_ROBIN,
        seed: int | None = None,
        quantum: int = 16,
        max_steps: int | None = None,
        prelude: bool = True,
        echo_output: bool = False,
        resolve: bool = True,
        engine: str | None = None,
        batched: bool = True,
        profile: bool = False,
    ):
        if engine is None:
            engine = "compiled" if resolve else "dict"
        self.engine = engine
        self.resolve = engine != "dict"
        self.resolver_stats = ResolverStats()
        self.compile_stats = CompileStats()
        self.globals = GlobalEnv()
        self.output = install_primitives(self.globals, OutputBuffer(echo=echo_output))
        register_control_primitives(self.globals)
        self.machine = Machine(
            self.globals,
            policy=policy,
            seed=seed,
            quantum=quantum,
            max_steps=None,  # the budget applies to user code only
            engine=engine,
            batched=batched,
            profile=profile,
        )
        self.expand_env = ExpandEnv()
        self._loaded_examples: set[str] = set()
        if prelude:
            self.run(PRELUDE)
        self.machine.steps_total = 0
        self.machine.max_steps = max_steps

    # -- evaluation -----------------------------------------------------

    def run(self, source: str) -> list[Any]:
        """Read, expand, resolve and — on the compiled engine —
        closure-compile every form in ``source``, then evaluate.

        Returns the list of values (definitions yield the unspecified
        value)."""
        forms = read_all(source)
        nodes = expand_program(forms, self.expand_env)
        if self.resolve:
            nodes = resolve_program(nodes, self.globals, self.resolver_stats)
            if self.engine == "compiled":
                nodes = compile_program(nodes, self.compile_stats)
        return self.machine.run(nodes)

    def eval(self, source: str) -> Any:
        """Evaluate ``source`` and return the value of its *last* form."""
        results = self.run(source)
        if not results:
            return None
        return results[-1]

    def eval_to_string(self, source: str) -> str:
        """Evaluate and render the result with ``write`` syntax."""
        return scheme_repr(self.eval(source))

    # -- conveniences ----------------------------------------------------

    def definitions(self, source: str) -> None:
        """Alias of :meth:`run` for readability at call sites that load
        definitions only."""
        self.run(source)

    def load_paper_example(self, name: str) -> None:
        """Load one of the paper's programs (and its prerequisites) by
        name; see :data:`repro.lib.paper_examples.ALL` for names."""
        prerequisites = {
            "product-callcc": ["product0"],
            "product-callcc-leaf": ["product0"],
            "product-of-products-callcc": ["product0"],
            "sum-of-products": ["product0", "spawn/exit"],
            "product-of-products-spawn": ["product0", "spawn/exit"],
            "first-true": ["spawn/exit"],
            "parallel-or": ["spawn/exit", "first-true"],
            "search-all": ["parallel-search"],
        }
        for dep in prerequisites.get(name, []):
            self.load_paper_example(dep)
        if name in self._loaded_examples:
            return
        source, kind = paper_examples.ALL[name]
        if kind == "definitions":
            self.run(source)
            self._loaded_examples.add(name)
        else:
            raise ValueError(
                f"{name} is an expression, not definitions; evaluate it "
                "with interp.eval(paper_examples.ALL[name][0])"
            )

    def load_file(self, path: str) -> list[Any]:
        """Read and run a Scheme source file; returns the form values."""
        with open(path, encoding="utf-8") as handle:
            return self.run(handle.read())

    def load_library(self, name: str) -> None:
        """Load a derived Scheme library: ``exceptions``,
        ``generators``, ``coroutines``, ``parallel`` or ``amb``
        (see :mod:`repro.lib.derived`)."""
        key = f"lib:{name}"
        if key in self._loaded_examples:
            return
        try:
            source = LIBRARIES[name]
        except KeyError:
            raise ValueError(
                f"unknown library {name!r}; available: {sorted(LIBRARIES)}"
            ) from None
        self.run(source)
        self._loaded_examples.add(key)

    def output_text(self) -> str:
        """Everything ``display``/``write``/``newline`` produced so far."""
        return self.output.getvalue()

    def clear_output(self) -> None:
        self.output.clear()

    @property
    def stats(self) -> dict[str, int]:
        """Machine counters (forks, captures, reinstatements, ...)
        plus — when the resolver is on — its compile-stage counters
        (locals resolved, global cells interned, cache hits), plus the
        closure compiler's counters on the compiled engine."""
        out = dict(self.machine.stats)
        if self.resolve:
            out.update(self.resolver_stats.as_dict())
        if self.engine == "compiled":
            out.update(self.compile_stats.as_dict())
        if self.machine.profile:
            out.update(self.machine.vm_stats)
        return out
