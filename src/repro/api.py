"""The public API: :class:`Interpreter`, a single-session façade.

    >>> from repro import Interpreter
    >>> interp = Interpreter()
    >>> interp.eval("(+ 1 2)")
    3
    >>> interp.definitions("(define (twice f x) (f (f x)))")
    >>> interp.eval("(twice (lambda (n) (* n n)) 3)")
    81

An :class:`Interpreter` is a thin wrapper over one
:class:`repro.host.Session` — the same object the multi-session
:class:`repro.host.Host` schedules N at a time — so everything the host
runtime offers (per-request step budgets and wall-clock deadlines,
suspendable evaluation, cooperative cancellation) is available on the
single-interpreter surface too:

    >>> from repro.errors import StepBudgetExceeded
    >>> try:
    ...     interp.eval("(let loop ([n 0]) (loop (+ n 1)))", max_steps=1000)
    ... except StepBudgetExceeded as exc:
    ...     exc.steps
    1000

Paper programs load by name via :meth:`load_paper_example`.  The
canonical constructor surface — shared verbatim by ``Session`` and
documented once, here (``docs/API.md`` mirrors it) — accepts enums or
their string values interchangeably for ``engine`` and ``policy``:

    >>> from repro import Engine
    >>> Interpreter(engine=Engine.DICT, prelude=False).engine
    'dict'
    >>> Interpreter(engine="dict", prelude=False).engine
    'dict'
"""

from __future__ import annotations

from typing import Any

from repro.host.handle import EvalHandle
from repro.host.session import Session
from repro.machine.scheduler import Engine, SchedulerPolicy, normalize_engine
from repro.obs.recorder import Recorder

__all__ = ["Interpreter"]


class Interpreter:
    """A complete Scheme-with-process-continuations system.

    Parameters
    ----------
    policy:
        Scheduling policy for ``pcall`` branches:
        :class:`~repro.machine.scheduler.SchedulerPolicy` or its string
        value — ``"round-robin"`` (default, deterministic), ``"random"``
        (seeded by ``seed``) or ``"serial"``.
    seed:
        RNG seed for the random policy.
    quantum:
        Steps a task runs before the scheduler rotates (round-robin).
    max_steps:
        Optional *lifetime* step budget for the interpreter; exceeding
        it raises :class:`repro.errors.StepBudgetExceeded`.  Per-call
        budgets are the ``max_steps``/``deadline`` keywords on
        :meth:`eval` and :meth:`run`.
    prelude:
        Load the Scheme prelude (list utilities, tree helpers).  On by
        default; switch off for a bare machine.
    echo_output:
        Also print ``display`` output to real stdout.
    engine:
        Execution engine: :class:`~repro.machine.scheduler.Engine` or
        its string value — ``"dict"``, ``"resolved"``, ``"compiled"``,
        ``"codegen"`` (see :data:`repro.machine.scheduler.ENGINES`).
        Defaults to ``"compiled"``: the pipeline reader → expand →
        resolve → compile → machine.  ``"codegen"`` goes one stage
        further — resolved IR is emitted as straight-line Python
        source, ``compile()``d once and cached by ``ir-hash-v1``
        digest (:mod:`repro.ir.codegen`, DESIGN.md S26).
        ``"resolved"`` stops after the resolver and tree-walks the
        resolved IR; ``"dict"`` is the original dict-chain interpreter
        (the seed baseline).  All four agree on every program —
        ``benchmarks/run_all.py`` runs the engine A/B.
    batched:
        Run tasks in quantum batches with the control registers held in
        Python locals (the default).  ``batched=False`` selects the
        unbatched ablation driver — one reference-stepper call per
        transition with the PR-2 apply path — used by the benchmark A/B
        column (see DESIGN.md S21).
    profile:
        Keep VM run-loop counters (quanta, spill causes, write-backs
        avoided) in ``machine.vm_stats``; surfaced through
        :attr:`stats` and the REPL's ``,stats``.
    record:
        Observability (see ``docs/OBSERVABILITY.md``): ``True`` attaches
        a fresh :class:`~repro.obs.Recorder` ring buffer, or pass an
        existing :class:`~repro.obs.Recorder` to share one across
        machines.  Control events (captures, reinstatements, forks,
        label pops, join fires) and per-quantum timings stream into it;
        export with ``interp.recorder.to_chrome_trace()`` or
        ``interp.recorder.render()``.  Default None: zero overhead.
    analysis:
        Run the capture/effect analysis phase
        (:mod:`repro.analysis.effects`, ``docs/ANALYSIS.md``) on every
        submit: lambdas are stamped with conservative facts
        (capture-free, spawn-free, controller-confined, known-total),
        requests are classified pure / capture-heavy / spawning, and
        forms proven single-task run with an enlarged scheduler
        quantum.  On by default; ``analysis=False`` (the REPL's
        ``--no-analysis``) is the ablation baseline and always ignored
        on the ``dict`` engine.  Semantics are identical either way —
        ``benchmarks/bench_analysis.py`` gates on it.
    max_pending:
        Bound on queued + in-flight :meth:`submit` evaluations (passed
        to the underlying :class:`~repro.host.session.Session`);
        beyond it submit raises :class:`~repro.errors.HostSaturated` —
        the same backpressure contract as every other frontend.
    """

    def __init__(
        self,
        policy: str | SchedulerPolicy = SchedulerPolicy.ROUND_ROBIN,
        seed: int | None = None,
        quantum: int = 16,
        max_steps: int | None = None,
        prelude: bool = True,
        echo_output: bool = False,
        engine: str | Engine | None = None,
        batched: bool = True,
        profile: bool = False,
        record: "Recorder | bool | None" = None,
        analysis: bool = True,
        max_pending: int = 64,
    ):
        # The resolve= sentinel (deprecated since 1.1) is gone as of
        # 1.4.0: engine="dict" is the only spelling of the dict-chain
        # ablation.  Passing resolve= now raises TypeError like any
        # unknown keyword.
        if engine is None:
            engine = "compiled"
        engine = normalize_engine(engine)
        self.session = Session(
            policy=policy,
            seed=seed,
            quantum=quantum,
            max_steps=max_steps,
            prelude=prelude,
            echo_output=echo_output,
            engine=engine,
            batched=batched,
            profile=profile,
            record=record,
            analysis=analysis,
            max_pending=max_pending,
        )
        # The wiring is the session's; these are the historical
        # attribute surface (tests, the REPL and the tracer reach for
        # interp.machine and friends directly).
        self.engine = self.session.engine
        self.machine = self.session.machine
        self.globals = self.session.globals
        self.output = self.session.output
        self.expand_env = self.session.expand_env
        self.resolver_stats = self.session.resolver_stats
        self.compile_stats = self.session.compile_stats
        self.analysis = self.session.analysis
        self.analysis_stats = self.session.analysis_stats

    @property
    def resolve(self) -> bool:
        """Whether the resolver pass runs (every engine but ``dict``)."""
        return self.engine != "dict"

    @property
    def recorder(self) -> Recorder | None:
        """The attached observability recorder (None unless the
        interpreter was built with ``record=``)."""
        return self.session.recorder

    # -- evaluation -----------------------------------------------------

    def run(
        self,
        source: str,
        *,
        max_steps: int | None = None,
        deadline: float | None = None,
    ) -> list[Any]:
        """Read, expand, resolve and — on the compiled engine —
        closure-compile every form in ``source``, then evaluate.

        Returns the list of values (definitions yield the unspecified
        value).  ``max_steps`` bounds this call's machine steps
        (enforced exactly; raises
        :class:`~repro.errors.StepBudgetExceeded`); ``deadline`` is a
        wall-clock allowance in seconds (raises
        :class:`~repro.errors.DeadlineExceeded` within one machine
        quantum of expiry).  Both tighten, never loosen, the
        interpreter's lifetime ``max_steps``."""
        return self.session.drive(
            self.session.submit(source, max_steps=max_steps, deadline=deadline)
        )

    def eval(
        self,
        source: str,
        *,
        max_steps: int | None = None,
        deadline: float | None = None,
    ) -> Any:
        """Evaluate ``source`` and return the value of its *last* form;
        budget keywords as for :meth:`run`."""
        results = self.run(source, max_steps=max_steps, deadline=deadline)
        if not results:
            return None
        return results[-1]

    def eval_to_string(self, source: str) -> str:
        """Evaluate and render the result with ``write`` syntax."""
        return self.session.eval_to_string(source)

    def submit(
        self,
        source: str,
        *,
        max_steps: int | None = None,
        deadline: float | None = None,
        tenant: str | None = None,
    ) -> EvalHandle:
        """Queue ``source`` without running it; returns the handle
        (resolve it with ``handle.result()`` or by pumping
        :attr:`session`).  The keyword surface is the shared submit
        contract (``docs/API.md``).  This is the incremental path —
        see :class:`repro.host.Session`."""
        return self.session.submit(
            source, max_steps=max_steps, deadline=deadline, tenant=tenant
        )

    # -- conveniences ----------------------------------------------------

    def definitions(self, source: str) -> None:
        """Alias of :meth:`run` for readability at call sites that load
        definitions only."""
        self.session.run(source)

    def load_paper_example(self, name: str) -> None:
        """Load one of the paper's programs (and its prerequisites) by
        name; see :data:`repro.lib.paper_examples.ALL` for names."""
        self.session.load_paper_example(name)

    def load_file(self, path: str) -> list[Any]:
        """Read and run a Scheme source file; returns the form values."""
        return self.session.load_file(path)

    def load_library(self, name: str) -> None:
        """Load a derived Scheme library: ``exceptions``,
        ``generators``, ``coroutines``, ``parallel`` or ``amb``
        (see :mod:`repro.lib.derived`)."""
        self.session.load_library(name)

    def output_text(self) -> str:
        """Everything ``display``/``write``/``newline`` produced so far."""
        return self.session.output_text()

    def clear_output(self) -> None:
        self.session.clear_output()

    @property
    def stats(self) -> dict[str, int]:
        """Machine counters (forks, captures, reinstatements, ...)
        plus — when the resolver is on — its compile-stage counters,
        plus the closure compiler's counters on the compiled engine,
        plus the session serving counters.  Pipeline counters appear
        under namespaced keys (``resolver.*``, ``compile.*``, ``vm.*``)
        with the historical flat names kept as aliases."""
        return self.session.stats
