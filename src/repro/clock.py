"""One injectable monotonic clock for deadline and quota arithmetic.

Every place the serving stack does *deadline math* — "has this request's
wall-clock budget elapsed", "when will a quota token exist again" —
must read a **monotonic** clock, and must read it through an
**injectable** seam so tests can drive it deterministically and so a
wall-clock jump (NTP step, VM suspend/resume, a user changing the
system time) can never fire or suppress a deadline.  This module is
that seam:

* :data:`MONOTONIC` — the production clock (``time.monotonic``).  It is
  the only clock the gateway's quota buckets, the gateway's
  ``retry_after_ms`` computation, and the cluster's dispatch/deadline
  arithmetic consult.
* :class:`ManualClock` — a hand-advanced clock for tests: construct it,
  pass it as ``clock=``, and ``advance()`` it; real time passing (or
  jumping) has no effect on anything computed against it.

The rule of thumb, enforced by the clock-skew regression tests
(``tests/gateway/test_clock.py``):

* **deadlines and quotas** → the injected monotonic clock (this module);
* **duration measurement** (latency histograms, bench timings) →
  ``time.perf_counter``, which is also monotonic but may tick on a
  different epoch, so its readings must never be *compared* against
  deadline timestamps — only subtracted from its own readings;
* **``time.time()``** → never, in either role.
"""

from __future__ import annotations

from time import monotonic as MONOTONIC

__all__ = ["MONOTONIC", "ManualClock"]


class ManualClock:
    """A monotonic clock a test advances by hand.

    Calling the instance returns the current reading; :meth:`advance`
    moves it forward.  Attempting to move it backwards raises — the
    whole point of the seam is that the code under test may assume
    monotonicity.
    """

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds``; returns the new reading."""
        if seconds < 0:
            raise ValueError(f"a monotonic clock cannot go backwards ({seconds})")
        self.now += seconds
        return self.now

    def __repr__(self) -> str:
        return f"#<manual-clock {self.now:.6f}>"
