"""Admission control for the gateway: token buckets and inflight caps.

All admission state lives on the gateway's asyncio thread — admission
checks happen in the connection handlers and releases are routed back
to the loop via ``call_soon_threadsafe`` — so none of this needs locks.
Refusals are *load shedding*: the caller gets a structured ``busy``
reply with a ``retry_after_ms`` hint and nothing is buffered on its
behalf (see ``docs/SERVING.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import monotonic
from typing import Callable

__all__ = ["GatewayLimits", "TokenBucket", "QuotaTable"]

#: Slack against float error in refill arithmetic (e.g. a clock delta
#: of 0.1s at rate 10/s refilling 0.9999999999 tokens must count as 1).
_EPS = 1e-9


@dataclass(frozen=True)
class GatewayLimits:
    """The gateway's admission envelope.

    ``max_inflight`` bounds concurrently-admitted requests across all
    tenants; ``tenant_max_inflight`` bounds one tenant (requests with
    no ``tenant`` share the ``"-"`` bucket).  ``tenant_rate``/``burst``
    configure a per-tenant token bucket in requests/second (``None``
    disables rate limiting).  ``max_frame_bytes`` is the per-frame wire
    limit and ``retry_after_ms`` the hint attached to refusals that
    have no better estimate (rate refusals compute a real one from the
    bucket's refill time).
    """

    max_inflight: int = 256
    tenant_max_inflight: int = 64
    tenant_rate: float | None = None  # requests/second; None = unlimited
    tenant_burst: int = 16
    max_frame_bytes: int = 256 * 1024
    retry_after_ms: int = 25


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, capacity
    ``burst``; starts full.  ``try_acquire`` never blocks — on refusal
    it returns the wait until a token will exist, which becomes the
    wire's ``retry_after_ms``.  ``clock`` is injectable for tests."""

    __slots__ = ("rate", "burst", "tokens", "updated", "clock")

    def __init__(
        self,
        rate: float,
        burst: int = 1,
        *,
        clock: Callable[[], float] = monotonic,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.rate = float(rate)
        self.burst = max(1, int(burst))
        self.tokens = float(self.burst)
        self.clock = clock
        self.updated = clock()

    def _refill(self) -> None:
        now = self.clock()
        self.tokens = min(self.burst, self.tokens + (now - self.updated) * self.rate)
        self.updated = now

    def try_acquire(self) -> tuple[bool, float]:
        """``(True, 0.0)`` and spend a token, or ``(False, wait)``
        where ``wait`` is the seconds until one token refills."""
        self._refill()
        if self.tokens >= 1.0 - _EPS:
            self.tokens = max(0.0, self.tokens - 1.0)
            return True, 0.0
        return False, (1.0 - self.tokens) / self.rate


class QuotaTable:
    """Per-tenant admission bookkeeping against a
    :class:`GatewayLimits`: global + per-tenant inflight counters and
    lazily-created per-tenant token buckets.

    :meth:`admit` either admits (the caller *must* eventually
    :meth:`release` with the same tenant) or returns a refusal
    ``(reason, retry_after_seconds)``.
    """

    def __init__(
        self,
        limits: GatewayLimits,
        *,
        clock: Callable[[], float] = monotonic,
    ):
        self.limits = limits
        self.clock = clock
        self.inflight = 0
        self.tenant_inflight: dict[str, int] = {}
        self._buckets: dict[str, TokenBucket] = {}

    @staticmethod
    def _key(tenant: str | None) -> str:
        return tenant if tenant is not None else "-"

    def admit(self, tenant: str | None) -> tuple[str, float] | None:
        """``None`` on admission; ``(reason, retry_after_s)`` on
        refusal.  Reasons: ``"inflight"`` (global cap),
        ``"tenant-inflight"``, ``"tenant-rate"``."""
        limits = self.limits
        if self.inflight >= limits.max_inflight:
            return "inflight", limits.retry_after_ms / 1000.0
        key = self._key(tenant)
        if self.tenant_inflight.get(key, 0) >= limits.tenant_max_inflight:
            return "tenant-inflight", limits.retry_after_ms / 1000.0
        if limits.tenant_rate is not None:
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = self._buckets[key] = TokenBucket(
                    limits.tenant_rate, limits.tenant_burst, clock=self.clock
                )
            ok, wait = bucket.try_acquire()
            if not ok:
                return "tenant-rate", wait
        self.inflight += 1
        self.tenant_inflight[key] = self.tenant_inflight.get(key, 0) + 1
        return None

    def release(self, tenant: str | None) -> None:
        """Return one admitted slot (called when its request reaches a
        terminal state)."""
        key = self._key(tenant)
        self.inflight = max(0, self.inflight - 1)
        left = self.tenant_inflight.get(key, 0) - 1
        if left <= 0:
            self.tenant_inflight.pop(key, None)
        else:
            self.tenant_inflight[key] = left
