"""``repro.gateway`` — the network front door.

An asyncio TCP gateway speaking newline-delimited JSON in front of a
:class:`~repro.host.host.Host` or :class:`~repro.cluster.cluster.Cluster`
backend, with per-tenant quotas, bounded inflight, and structured load
shedding (``busy`` + ``retry_after_ms``) instead of unbounded
buffering.  The machinery below stays synchronous: one pump thread
drives the backend; the event loop owns only sockets and admission.
See ``docs/SERVING.md`` for the wire protocol and shed contract.
"""

from repro.gateway.client import GatewayClient, GatewayClientPool
from repro.gateway.metrics import GatewayMetrics
from repro.gateway.protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    OPS,
    decode_frame,
    encode_frame,
    error_frame,
)
from repro.gateway.quota import GatewayLimits, QuotaTable, TokenBucket
from repro.gateway.server import Gateway

__all__ = [
    "ERROR_CODES",
    "Gateway",
    "GatewayClient",
    "GatewayClientPool",
    "GatewayLimits",
    "GatewayMetrics",
    "MAX_FRAME_BYTES",
    "OPS",
    "QuotaTable",
    "TokenBucket",
    "decode_frame",
    "encode_frame",
    "error_frame",
]
