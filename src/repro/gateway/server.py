"""The :class:`Gateway`: an asyncio front door over a Host or Cluster.

The gateway owns a TCP listener speaking the NDJSON protocol of
:mod:`repro.gateway.protocol` and a *backend* — a
:class:`~repro.host.host.Host` or :class:`~repro.cluster.cluster.Cluster`
— that actually evaluates.  The split of work between threads is the
whole design:

* **The asyncio thread** owns every socket, the request registry, the
  admission state (:class:`~repro.gateway.quota.QuotaTable`) and the
  metrics.  Connection handlers parse frames, admit or shed, and await
  futures.  Nothing here ever blocks on evaluation.
* **The pump thread** owns the backend.  The host tier is deliberately
  synchronous and not thread-safe (ROADMAP: the machine stays
  synchronous; concurrency lives in the continuation algebra), so all
  backend calls — submit, cancel, stats, ``host.tick()`` — run here,
  fed by a command queue.  The same thread scans in-flight handles for
  state transitions and marshals them back to the loop with
  ``call_soon_threadsafe``.  A Cluster backend brings its own
  dispatcher thread, so its pump only scans.

Backpressure is structural: a submit is either *admitted* (counted
against the tenant's and the gateway's inflight caps, token bucket
debited) or *shed* with a ``busy`` reply carrying ``retry_after_ms`` —
including when the backend itself refuses with
:class:`~repro.errors.HostSaturated`.  The gateway never buffers work
it has not admitted, so memory stays bounded no matter the offered
load.  See ``docs/SERVING.md`` for the wire contract and
``benchmarks/bench_gateway.py`` for the overload harness.
"""

from __future__ import annotations

import asyncio
import itertools
import queue as queue_mod
import threading
from time import perf_counter
from typing import Any, Callable

from repro.clock import MONOTONIC
from repro.cluster.cluster import Cluster
from repro.cluster.handle import ClusterHandle
from repro.errors import FrameError, GatewayError, HostSaturated, ShardDied
from repro.gateway.metrics import GatewayMetrics
from repro.gateway.protocol import OPS, decode_frame, encode_frame, error_frame
from repro.gateway.quota import GatewayLimits, QuotaTable
from repro.host.handle import EvalHandle, HandleState
from repro.host.host import Host
from repro.obs.recorder import Recorder

__all__ = ["Gateway"]

_gateway_ids = itertools.count()

#: Pump-thread nap while completely idle (no commands, no busy backend,
#: no tracked handles) — the latency floor for a cold submit.
_IDLE_WAIT = 0.002

_TERMINAL = (HandleState.DONE, HandleState.FAILED, HandleState.CANCELLED)


def _failure_info(exc: BaseException) -> dict[str, str]:
    return {"type": type(exc).__name__, "message": str(exc)}


class _HostBackend:
    """Adapter: a :class:`Host` as a gateway backend.  Every method
    runs on the pump thread (the host is not thread-safe); unknown
    session names auto-create a session from ``session_defaults``."""

    needs_pump = True

    def __init__(self, host: Host, session_defaults: dict[str, Any] | None):
        self.host = host
        self.session_defaults = dict(session_defaults or {})
        self.session_defaults.setdefault("prelude", False)

    def submit(
        self,
        session: str,
        source: str,
        *,
        max_steps: int | None,
        deadline: float | None,
        tenant: str | None,
    ) -> EvalHandle:
        if session not in self.host._by_name:
            self.host.session(name=session, **self.session_defaults)
        return self.host.submit(
            session, source, max_steps=max_steps, deadline=deadline, tenant=tenant
        )

    def pump(self) -> bool:
        if self.host.idle:
            return False
        self.host.tick()
        return True

    def cancel(self, handle: EvalHandle) -> bool:
        return handle.cancel()

    def state_of(self, handle: EvalHandle) -> tuple[HandleState, int]:
        return handle.state, handle.steps

    def output_mark(self, handle: EvalHandle) -> int:
        """The session's output cursor at submit time: parts already
        produced belong to *earlier* requests, not this one."""
        return len(handle.session.output.parts)

    def drain_output(self, handle: EvalHandle, cursor: int) -> tuple[str, int]:
        """Output produced since ``cursor``, plus the new cursor.  The
        host runs in-process, so deltas stream *during* execution."""
        parts = handle.session.output.parts
        if len(parts) <= cursor:
            return "", cursor
        return "".join(parts[cursor:]), len(parts)

    def outcome(self, handle: EvalHandle) -> dict[str, Any]:
        """Terminal payload fields: printed value or failure info."""
        if handle.state is HandleState.DONE:
            from repro.datum.printer import scheme_repr

            values = handle.values
            return {"value": scheme_repr(values[-1]) if values else None}
        exc = handle.exception()
        return {"error": _failure_info(exc) if exc is not None else None}

    def stats(self) -> dict[str, Any]:
        return dict(self.host.stats)

    def histograms(self) -> dict[str, Any]:
        return self.host.histograms()


class _ClusterBackend:
    """Adapter: a :class:`Cluster` as a gateway backend.  The cluster
    front is thread-safe (its own dispatcher thread does the blocking
    shard round-trips), so the pump thread only scans handles."""

    needs_pump = False

    def __init__(self, cluster: Cluster):
        self.cluster = cluster

    def submit(
        self,
        session: str,
        source: str,
        *,
        max_steps: int | None,
        deadline: float | None,
        tenant: str | None,
    ) -> ClusterHandle:
        return self.cluster.submit_async(
            session, source, max_steps=max_steps, deadline=deadline, tenant=tenant
        )

    def pump(self) -> bool:  # pragma: no cover - trivial
        return False

    def cancel(self, handle: ClusterHandle) -> bool:
        return handle.cancel()

    def state_of(self, handle: ClusterHandle) -> tuple[HandleState, int]:
        return handle.state, handle.steps

    def output_mark(self, handle: ClusterHandle) -> int:
        return 0

    def drain_output(self, handle: ClusterHandle, cursor: int) -> tuple[str, int]:
        """Session output for this request.  The shard protocol returns
        the output delta *with* the result, so there is exactly one
        drain — once the in-band result lands, just before the terminal
        state event reaches the wire."""
        result = handle._result
        if cursor == 0 and result is not None and result.output:
            return result.output, 1
        return "", cursor

    def outcome(self, handle: ClusterHandle) -> dict[str, Any]:
        result = handle._result
        if handle.state is HandleState.DONE:
            payload: dict[str, Any] = {
                "value": result.value if result is not None else None
            }
            if result is not None and result.recovered:
                payload["recovered"] = True
            return payload
        if result is not None and not result.ok:
            # In-band shard failure: surface the original error type,
            # not the ClusterEvalError wrapper.
            payload = {
                "error": {
                    "type": result.error_type or "error",
                    "message": result.error or "",
                }
            }
            if result.recovered:
                payload["recovered"] = True
            return payload
        exc = handle.exception()
        payload = {"error": _failure_info(exc) if exc is not None else None}
        if isinstance(exc, ShardDied):
            # A shard died and no snapshot could replay the session:
            # the frame is still answered (failure transparency), but
            # the caller must know the session state is gone.
            payload["recovered"] = False
        return payload

    def stats(self) -> dict[str, Any]:
        return dict(self.cluster.stats)

    def histograms(self) -> dict[str, Any]:
        return self.cluster.histograms()


class _Request:
    """One admitted request, tracked from admission to terminal state."""

    __slots__ = (
        "rid",
        "tenant",
        "stream",
        "conn",
        "handle",
        "last_state",
        "output_cursor",
        "admitted_ts",
        "waiters",
        "terminal",
        "released",
    )

    def __init__(self, rid: int, tenant: str | None, stream: bool, conn: "_Connection"):
        self.rid = rid
        self.tenant = tenant
        self.stream = stream
        self.conn: "_Connection | None" = conn
        self.handle: Any = None
        self.last_state = HandleState.PENDING
        self.output_cursor = 0  # backend-defined position in the session output
        self.admitted_ts = perf_counter()
        self.waiters: list[asyncio.Future] = []  # blocking `result` ops
        self.terminal: dict[str, Any] | None = None  # final state payload
        self.released = False


class _Connection:
    """Per-connection state: the writer plus the requests it owns."""

    __slots__ = ("writer", "requests", "closed", "lock")

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.requests: set[int] = set()
        self.closed = False
        self.lock = asyncio.Lock()  # serialise interleaved writes

    async def send(self, frame: dict[str, Any]) -> None:
        if self.closed:
            return
        try:
            async with self.lock:
                self.writer.write(encode_frame(frame))
                await self.writer.drain()
        except (ConnectionError, RuntimeError):
            self.closed = True


class Gateway:
    """An asyncio NDJSON gateway in front of a Host or Cluster.

    Parameters
    ----------
    backend:
        A :class:`~repro.host.host.Host` or
        :class:`~repro.cluster.cluster.Cluster`.  The gateway drives it
        from a dedicated pump thread; the caller must not use it
        concurrently while the gateway is running.
    host / port:
        Listen address.  ``port=0`` (default) binds an ephemeral port;
        read the bound one from :attr:`port` after :meth:`start`.
    limits:
        The admission envelope (:class:`~repro.gateway.quota.GatewayLimits`).
    session_defaults:
        Host backends only: constructor kwargs for sessions the gateway
        auto-creates on first submit (``prelude=False`` unless
        overridden).  Cluster backends carry their own.
    record:
        Observability: ``True`` builds a fresh
        :class:`~repro.obs.recorder.Recorder`, or pass one; each
        admitted request lands as a ``gateway.request`` complete event
        (admission → terminal state) on the ``gateway`` track.
    clock:
        The monotonic clock for quota/deadline arithmetic (see
        :mod:`repro.clock`).  Injectable so tests can drive token
        refill deterministically; defaults to ``time.monotonic``.
        Latency *measurement* stays on ``perf_counter`` regardless.

    Usage::

        async with Gateway(Host(), port=0) as gw:
            client = await GatewayClient.connect(gw.host, gw.port)
            ...
    """

    def __init__(
        self,
        backend: Host | Cluster,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        limits: GatewayLimits | None = None,
        session_defaults: dict[str, Any] | None = None,
        record: "Recorder | bool | None" = None,
        name: str | None = None,
        clock: Callable[[], float] = MONOTONIC,
    ):
        if isinstance(backend, Host):
            self.backend: Any = _HostBackend(backend, session_defaults)
        elif isinstance(backend, Cluster):
            if session_defaults:
                raise ValueError(
                    "session_defaults belongs to the Cluster constructor "
                    "for cluster backends"
                )
            self.backend = _ClusterBackend(backend)
        else:
            raise TypeError(
                f"backend must be a Host or Cluster, got {type(backend).__name__}"
            )
        self.name = name if name is not None else f"gateway-{next(_gateway_ids)}"
        self.host = host
        self.port = port
        self.limits = limits if limits is not None else GatewayLimits()
        self.metrics = GatewayMetrics()
        if record is True:
            self.recorder: Recorder | None = Recorder()
        elif record is False:
            self.recorder = None
        else:
            self.recorder = record
        self.quota = QuotaTable(self.limits, clock=clock)
        self._requests: dict[int, _Request] = {}
        self._rids = itertools.count(1)
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._cmds: queue_mod.Queue[Callable[[], None]] = queue_mod.Queue()
        self._pump: threading.Thread | None = None
        self._stop = threading.Event()
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> "Gateway":
        """Bind the listener and start the pump thread; returns self."""
        if self._server is not None:
            raise GatewayError(f"gateway {self.name} already started")
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=self.limits.max_frame_bytes + 1,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._pump = threading.Thread(
            target=self._pump_loop, name=f"{self.name}-pump", daemon=True
        )
        self._pump.start()
        return self

    async def close(self) -> None:
        """Stop accepting, drop connections, stop the pump thread
        (idempotent).  The backend object survives and is usable again
        once closed."""
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._stop.set()
        if self._pump is not None:
            await asyncio.get_running_loop().run_in_executor(None, self._pump.join)

    async def __aenter__(self) -> "Gateway":
        return await self.start()

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- the pump thread -------------------------------------------------

    def _pump_loop(self) -> None:
        backend = self.backend
        while not self._stop.is_set():
            worked = False
            while True:
                try:
                    self._cmds.get_nowait()()
                    worked = True
                except queue_mod.Empty:
                    break
            if backend.needs_pump and backend.pump():
                worked = True
            if self._scan():
                worked = True
            if not worked:
                # Idle: block on the command queue so a fresh submit
                # wakes us immediately instead of after a sleep.
                try:
                    self._cmds.get(timeout=_IDLE_WAIT)()
                except queue_mod.Empty:
                    pass

    def _scan(self) -> bool:
        """Detect handle-state transitions and marshal them to the
        loop.  Runs on the pump thread; the registry dict itself is
        only *mutated* on the loop thread, and iteration over a
        snapshot tolerates concurrent removal."""
        changed = False
        for req in list(self._requests.values()):
            handle = req.handle
            if handle is None or req.terminal is not None:
                continue
            state, steps = self.backend.state_of(handle)
            if req.stream and req.conn is not None:
                # Drain *after* reading the state: if the state read saw
                # terminal, the session has finished writing, so this
                # drain is complete and its event is queued to the loop
                # ahead of the terminal state event below.
                text, cursor = self.backend.drain_output(handle, req.output_cursor)
                if text:
                    req.output_cursor = cursor
                    changed = True
                    self._call_soon(self._on_output, req, text)
            if state is req.last_state:
                continue
            req.last_state = state
            changed = True
            payload: dict[str, Any] = {"state": state.value, "steps": steps}
            if state in _TERMINAL:
                payload.update(self.backend.outcome(handle))
            self._call_soon(self._on_state, req, payload)
        return changed

    def _call_soon(self, fn: Callable[..., None], *args: Any) -> None:
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(fn, *args)
            except RuntimeError:  # pragma: no cover - loop shut down
                pass

    def _run_on_pump(self, fn: Callable[[], Any]) -> "asyncio.Future[Any]":
        """Run ``fn`` on the pump thread; resolve an asyncio future
        with its result (or exception) back on the loop."""
        assert self._loop is not None
        fut: asyncio.Future[Any] = self._loop.create_future()

        def command() -> None:
            try:
                result = fn()
            except BaseException as exc:  # noqa: BLE001 - marshalled
                self._call_soon(self._settle, fut, None, exc)
            else:
                self._call_soon(self._settle, fut, result, None)

        self._cmds.put(command)
        return fut

    @staticmethod
    def _settle(
        fut: "asyncio.Future[Any]", result: Any, exc: BaseException | None
    ) -> None:
        if fut.cancelled():
            return
        if exc is not None:
            fut.set_exception(exc)
        else:
            fut.set_result(result)

    # -- state delivery (loop thread) ------------------------------------

    def _on_output(self, req: _Request, text: str) -> None:
        """Forward a session-output delta as an ``output`` event frame."""
        conn = req.conn
        if conn is None or conn.closed or req.terminal is not None:
            return
        self.metrics.output_events += 1
        asyncio.ensure_future(
            conn.send({"event": "output", "request": req.rid, "text": text})
        )

    def _on_state(self, req: _Request, payload: dict[str, Any]) -> None:
        terminal = payload["state"] in ("done", "failed", "cancelled")
        if terminal:
            req.terminal = payload
            self._finish(req, payload)
        conn = req.conn
        if req.stream and conn is not None and not conn.closed:
            event = {"event": "state", "request": req.rid, **payload}
            asyncio.ensure_future(conn.send(event))
        if terminal:
            # `result` ops wait for a terminal state only; intermediate
            # transitions are observable via poll/stream.
            for fut in req.waiters:
                if not fut.done():
                    fut.set_result(payload)
            req.waiters.clear()
            if conn is None or conn.closed:
                # Nobody can ever fetch this result; drop the record.
                self._requests.pop(req.rid, None)

    def _finish(self, req: _Request, payload: dict[str, Any]) -> None:
        """Terminal-state accounting: quota release, counters, obs."""
        if req.released:
            return
        req.released = True
        self.quota.release(req.tenant)
        state = payload["state"]
        if state == "done":
            self.metrics.completed += 1
        elif state == "failed":
            self.metrics.failed += 1
        else:
            self.metrics.cancelled += 1
        recovered = payload.get("recovered")
        if recovered is True:
            # A shard died under this request and a snapshot replay on
            # a respawned worker still produced the answer.
            self.metrics.recovery_replays += 1
        elif recovered is False:
            self.metrics.recovery_failures += 1
        dur = perf_counter() - req.admitted_ts
        self.metrics.request_us.observe(dur * 1e6)
        rec = self.recorder
        if rec is not None and rec.enabled:
            # X-events only: the pump thread shares this recorder, so
            # the gateway never touches the (thread-unsafe) span stack.
            rec.complete(
                "gateway.request",
                req.admitted_ts,
                dur,
                detail=f"{req.tenant or '-'} {state}",
            )

    # -- the connection handler (loop thread) ----------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        self.metrics.connections += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # The line outgrew the stream limit: the connection
                    # is no longer line-synchronised — refuse and close.
                    self.metrics.protocol_errors += 1
                    await conn.send(
                        error_frame(
                            None,
                            "oversize",
                            f"frame exceeds {self.limits.max_frame_bytes} bytes",
                        )
                    )
                    return
                except ConnectionError:
                    return
                if not line:
                    return  # EOF
                if line.strip() == b"":
                    continue
                try:
                    frame = decode_frame(
                        line, max_bytes=self.limits.max_frame_bytes
                    )
                except FrameError as exc:
                    self.metrics.protocol_errors += 1
                    await conn.send(error_frame(None, exc.code, str(exc)))
                    if exc.code == "oversize":
                        return
                    continue
                self.metrics.frames += 1
                await self._dispatch(conn, frame)
        finally:
            conn.closed = True
            self.metrics.disconnects += 1
            self._abandon(conn)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def _abandon(self, conn: _Connection) -> None:
        """The client left: cancel its non-terminal requests (no leaked
        work) and drop its terminal records (no leaked memory)."""
        for rid in list(conn.requests):
            req = self._requests.get(rid)
            if req is None:
                continue
            if req.terminal is not None:
                self._requests.pop(rid, None)
            else:
                req.conn = None  # events have nowhere to go
                handle = req.handle
                if handle is not None:
                    self.metrics.disconnect_cancels += 1
                    self._cmds.put(lambda h=handle: self.backend.cancel(h))
        conn.requests.clear()

    async def _dispatch(self, conn: _Connection, frame: dict[str, Any]) -> None:
        fid = frame.get("id")
        op = frame.get("op")
        if op not in OPS:
            self.metrics.protocol_errors += 1
            await conn.send(error_frame(fid, "unknown-op", f"unknown op {op!r}"))
            return
        try:
            if op == "submit":
                await self._op_submit(conn, fid, frame)
            elif op == "poll":
                await self._op_poll(conn, fid, frame)
            elif op == "result":
                await self._op_result(conn, fid, frame)
            elif op == "cancel":
                await self._op_cancel(conn, fid, frame)
            elif op == "stats":
                await self._op_stats(conn, fid)
            else:  # ping
                await conn.send({"id": fid, "ok": True, "pong": True})
        except _Invalid as exc:
            self.metrics.protocol_errors += 1
            await conn.send(error_frame(fid, "invalid", str(exc)))
        except Exception as exc:  # noqa: BLE001 - the connection survives
            await conn.send(error_frame(fid, "internal", f"{type(exc).__name__}: {exc}"))

    # -- ops -------------------------------------------------------------

    async def _op_submit(
        self, conn: _Connection, fid: Any, frame: dict[str, Any]
    ) -> None:
        session = frame.get("session")
        source = frame.get("source")
        if not isinstance(session, str) or not session:
            raise _Invalid("submit needs a non-empty string 'session'")
        if not isinstance(source, str):
            raise _Invalid("submit needs a string 'source'")
        max_steps = frame.get("max_steps")
        if max_steps is not None and (not isinstance(max_steps, int) or max_steps <= 0):
            raise _Invalid("'max_steps' must be a positive integer")
        deadline_ms = frame.get("deadline_ms")
        if deadline_ms is not None and (
            not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0
        ):
            raise _Invalid("'deadline_ms' must be a positive number")
        tenant = frame.get("tenant")
        if tenant is not None and not isinstance(tenant, str):
            raise _Invalid("'tenant' must be a string")
        stream = bool(frame.get("stream", False))

        refusal = self.quota.admit(tenant)
        if refusal is not None:
            reason, wait = refusal
            self.metrics.shed += 1
            await conn.send(
                error_frame(
                    fid,
                    "busy",
                    f"gateway {self.name}: {reason} limit reached",
                    retry_after_ms=max(1, int(wait * 1000)),
                )
            )
            return

        rid = next(self._rids)
        req = _Request(rid, tenant, stream, conn)
        deadline = None if deadline_ms is None else deadline_ms / 1000.0

        def _do_submit() -> tuple[Any, int]:
            # One pump-thread round trip: submit *and* mark the output
            # cursor, so output the session produced before this request
            # (or during the gap) is never replayed to this client.
            handle = self.backend.submit(
                session,
                source,
                max_steps=max_steps,
                deadline=deadline,
                tenant=tenant,
            )
            return handle, self.backend.output_mark(handle)

        try:
            req.handle, req.output_cursor = await self._run_on_pump(_do_submit)
        except HostSaturated as exc:
            # The backend itself refused: same shed contract as a
            # quota refusal — structured busy, nothing buffered.
            self.quota.release(tenant)
            self.metrics.shed += 1
            await conn.send(
                error_frame(
                    fid,
                    "busy",
                    str(exc),
                    retry_after_ms=self.limits.retry_after_ms,
                )
            )
            return
        except Exception as exc:  # noqa: BLE001 - contained backend fault
            self.quota.release(tenant)
            await conn.send(
                error_frame(fid, "internal", f"{type(exc).__name__}: {exc}")
            )
            return
        self.metrics.submits += 1
        self._requests[rid] = req
        conn.requests.add(rid)
        await conn.send(
            {"id": fid, "ok": True, "request": rid, "state": req.last_state.value}
        )

    def _lookup(self, frame: dict[str, Any]) -> _Request:
        rid = frame.get("request")
        req = self._requests.get(rid) if isinstance(rid, int) else None
        if req is None:
            raise _Unknown(f"not tracking request {rid!r}")
        return req

    async def _op_poll(self, conn: _Connection, fid: Any, frame: dict[str, Any]) -> None:
        try:
            req = self._lookup(frame)
        except _Unknown as exc:
            await conn.send(error_frame(fid, "unknown-request", str(exc)))
            return
        if req.terminal is not None:
            payload = req.terminal
        else:
            state, steps = self.backend.state_of(req.handle)
            payload = {"state": state.value, "steps": steps}
        await conn.send({"id": fid, "ok": True, "request": req.rid, **payload})

    async def _op_result(
        self, conn: _Connection, fid: Any, frame: dict[str, Any]
    ) -> None:
        try:
            req = self._lookup(frame)
        except _Unknown as exc:
            await conn.send(error_frame(fid, "unknown-request", str(exc)))
            return
        timeout_ms = frame.get("timeout_ms")
        if timeout_ms is not None and (
            not isinstance(timeout_ms, (int, float)) or timeout_ms <= 0
        ):
            raise _Invalid("'timeout_ms' must be a positive number")
        t0 = perf_counter()
        payload = req.terminal
        if payload is None:
            assert self._loop is not None
            fut: asyncio.Future[dict[str, Any]] = self._loop.create_future()
            req.waiters.append(fut)
            try:
                timeout = None if timeout_ms is None else timeout_ms / 1000.0
                payload = await asyncio.wait_for(fut, timeout)
            except asyncio.TimeoutError:
                if fut in req.waiters:
                    req.waiters.remove(fut)
                state, steps = self.backend.state_of(req.handle)
                await conn.send(
                    {
                        "id": fid,
                        "ok": True,
                        "request": req.rid,
                        "state": state.value,
                        "steps": steps,
                        "timeout": True,
                    }
                )
                return
        self.metrics.result_wait_us.observe((perf_counter() - t0) * 1e6)
        await conn.send({"id": fid, "ok": True, "request": req.rid, **payload})

    async def _op_cancel(
        self, conn: _Connection, fid: Any, frame: dict[str, Any]
    ) -> None:
        try:
            req = self._lookup(frame)
        except _Unknown as exc:
            await conn.send(error_frame(fid, "unknown-request", str(exc)))
            return
        if req.terminal is not None:
            await conn.send(
                {"id": fid, "ok": True, "request": req.rid, "cancelled": False}
            )
            return
        handle = req.handle
        cancelled = await self._run_on_pump(lambda: self.backend.cancel(handle))
        await conn.send(
            {"id": fid, "ok": True, "request": req.rid, "cancelled": bool(cancelled)}
        )

    async def _op_stats(self, conn: _Connection, fid: Any) -> None:
        backend_stats = await self._run_on_pump(self.backend.stats)
        stats = dict(backend_stats)
        stats.update(self.metrics.as_dict())
        stats["gateway.inflight"] = self.quota.inflight
        await conn.send({"id": fid, "ok": True, "stats": stats})

    # -- introspection ---------------------------------------------------

    @property
    def stats(self) -> dict[str, int]:
        """Gateway counters (``gateway.*``); backend stats stay on the
        backend object (or come over the wire via the ``stats`` op)."""
        out = self.metrics.as_dict()
        out["gateway.inflight"] = self.quota.inflight
        out["gateway.tracked_requests"] = len(self._requests)
        return out

    def histograms(self) -> dict[str, Any]:
        """Latency distribution summaries, JSON-ready."""
        return self.metrics.histograms()

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("open" if self._server else "new")
        return (
            f"#<gateway {self.name} {self.host}:{self.port} {state} "
            f"inflight={self.quota.inflight}>"
        )


class _Invalid(Exception):
    """A well-formed frame with bad fields (becomes an ``invalid`` reply)."""


class _Unknown(Exception):
    """An unrecognised request id (becomes ``unknown-request``)."""
