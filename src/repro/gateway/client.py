"""An asyncio client for the gateway wire protocol.

:class:`GatewayClient` owns one TCP connection and multiplexes any
number of concurrent requests over it: a background reader task
dispatches replies to per-call futures by frame ``id`` and routes
``stream: true`` state events to per-request queues.  Refusals map
back to the same exception types the in-process frontends raise —
``busy`` becomes :class:`~repro.errors.GatewayBusy` (a
:class:`~repro.errors.HostSaturated`), so retry loops written against
a local :class:`~repro.host.host.Host` work unchanged against a
remote gateway::

    client = await GatewayClient.connect(gw.host, gw.port)
    rid = await client.submit("alice", "(+ 1 2)")
    assert await client.result(rid) == "3"
    await client.close()
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, AsyncIterator

from repro.errors import (
    FrameError,
    GatewayBusy,
    GatewayClosed,
    GatewayRequestError,
)
from repro.gateway.protocol import MAX_FRAME_BYTES, decode_frame, encode_frame

__all__ = ["GatewayClient"]


class GatewayClient:
    """One NDJSON connection to a :class:`~repro.gateway.server.Gateway`.

    All methods are coroutine-safe: many tasks may share one client
    (frame ids disambiguate the replies).  Use
    :meth:`GatewayClient.connect` to build one.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ):
        self._reader = reader
        self._writer = writer
        self._max_frame_bytes = max_frame_bytes
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future[dict[str, Any]]] = {}
        self._events: dict[int, asyncio.Queue[dict[str, Any]]] = {}
        self._write_lock = asyncio.Lock()
        self._closed = False
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> "GatewayClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=max_frame_bytes + 1
        )
        return cls(reader, writer, max_frame_bytes=max_frame_bytes)

    async def close(self) -> None:
        """Close the connection (idempotent); outstanding calls fail
        with :class:`~repro.errors.GatewayClosed`."""
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._fail_pending(GatewayClosed("connection closed"))

    async def __aenter__(self) -> "GatewayClient":
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    # -- the reader task -------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    raise GatewayClosed("server closed the connection")
                frame = decode_frame(line, max_bytes=self._max_frame_bytes)
                if frame.get("event") == "state":
                    rid = frame.get("request")
                    queue = self._events.get(rid)
                    if queue is not None:
                        queue.put_nowait(frame)
                    continue
                fut = self._pending.pop(frame.get("id"), None)
                if fut is not None and not fut.done():
                    fut.set_result(frame)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - fan the failure out
            self._closed = True
            self._fail_pending(
                exc
                if isinstance(exc, (GatewayClosed, FrameError))
                else GatewayClosed(f"connection lost: {exc}")
            )

    def _fail_pending(self, exc: BaseException) -> None:
        for fut in self._pending.values():
            if not fut.done():
                fut.set_exception(exc)
        self._pending.clear()
        for queue in self._events.values():
            queue.put_nowait({"event": "state", "state": "lost", "error": str(exc)})

    # -- the call primitive ----------------------------------------------

    async def call(self, op: str, **fields: Any) -> dict[str, Any]:
        """Send one ``op`` frame and await its reply (raw dict, ``ok``
        already verified — refusals raise, see :meth:`_raise_for`)."""
        if self._closed:
            raise GatewayClosed("client is closed")
        fid = next(self._ids)
        frame = {"op": op, "id": fid}
        frame.update((k, v) for k, v in fields.items() if v is not None)
        fut: asyncio.Future[dict[str, Any]] = asyncio.get_running_loop().create_future()
        self._pending[fid] = fut
        async with self._write_lock:
            self._writer.write(encode_frame(frame))
            await self._writer.drain()
        reply = await fut
        if not reply.get("ok", False):
            self._raise_for(reply)
        return reply

    @staticmethod
    def _raise_for(reply: dict[str, Any]) -> None:
        error = reply.get("error") or {}
        code = error.get("code", "internal")
        message = error.get("message", "request refused")
        if code == "busy":
            raise GatewayBusy(
                message,
                retry_after_ms=int(error.get("retry_after_ms", 0)),
            )
        raise GatewayRequestError(message, code=code)

    # -- the shared submit contract --------------------------------------

    async def submit(
        self,
        session: str,
        source: str,
        *,
        max_steps: int | None = None,
        deadline: float | None = None,
        tenant: str | None = None,
        stream: bool = False,
    ) -> int:
        """Submit ``source`` for evaluation on ``session``; returns the
        server's request id.  The keyword surface is the shared submit
        contract (``docs/API.md``); ``deadline`` is seconds, converted
        to ``deadline_ms`` on the wire.  Refused submits raise
        :class:`~repro.errors.GatewayBusy` (sheds, carrying
        ``retry_after_ms``) or :class:`~repro.errors.GatewayRequestError`.

        With ``stream=True`` the server pushes each handle-state
        transition; consume them via :meth:`events`.
        """
        if stream:
            # Register the queue *before* the reply can race in.
            pre: asyncio.Queue[dict[str, Any]] = asyncio.Queue()
        reply = await self.call(
            "submit",
            session=session,
            source=source,
            max_steps=max_steps,
            deadline_ms=None if deadline is None else deadline * 1000.0,
            tenant=tenant,
            stream=True if stream else None,
        )
        rid = reply["request"]
        if stream:
            self._events[rid] = pre
        return rid

    async def poll(self, request: int) -> dict[str, Any]:
        """The request's current state: ``{"state": ..., "steps": ...}``
        plus value/error fields once terminal."""
        reply = await self.call("poll", request=request)
        return {k: v for k, v in reply.items() if k not in ("id", "ok", "request")}

    async def result(self, request: int, *, timeout: float | None = None) -> str | None:
        """Block until the request is terminal and return its printed
        value.  Failures raise :class:`~repro.errors.GatewayRequestError`
        with code ``eval-error`` (or ``cancelled``);  an elapsed
        ``timeout`` (seconds) raises :class:`TimeoutError` with the
        request still running."""
        reply = await self.call(
            "result",
            request=request,
            timeout_ms=None if timeout is None else timeout * 1000.0,
        )
        if reply.get("timeout"):
            raise TimeoutError(
                f"request {request} still {reply.get('state')} after {timeout}s"
            )
        state = reply.get("state")
        if state == "done":
            return reply.get("value")
        error = reply.get("error") or {}
        code = "cancelled" if state == "cancelled" else "eval-error"
        raise GatewayRequestError(
            f"request {request} {state}: "
            f"{error.get('type', '?')}: {error.get('message', '')}",
            code=code,
        )

    async def cancel(self, request: int) -> bool:
        """Ask the server to cancel; True if it was still cancellable."""
        reply = await self.call("cancel", request=request)
        return bool(reply.get("cancelled"))

    async def stats(self) -> dict[str, Any]:
        """The combined backend + gateway stats dict."""
        reply = await self.call("stats")
        return reply["stats"]

    async def ping(self) -> bool:
        reply = await self.call("ping")
        return bool(reply.get("pong"))

    async def eval(
        self,
        session: str,
        source: str,
        *,
        max_steps: int | None = None,
        deadline: float | None = None,
        tenant: str | None = None,
        timeout: float | None = None,
    ) -> str | None:
        """Submit + result in one call: the remote analogue of
        ``Interpreter.eval`` (the value comes back printed, as a
        string)."""
        rid = await self.submit(
            session, source, max_steps=max_steps, deadline=deadline, tenant=tenant
        )
        return await self.result(rid, timeout=timeout)

    # -- streaming -------------------------------------------------------

    async def events(self, request: int) -> AsyncIterator[dict[str, Any]]:
        """Yield state-transition events for a ``stream=True`` submit,
        ending after the terminal one (``done``/``failed``/
        ``cancelled``; a dropped connection yields a synthetic
        ``lost``)."""
        queue = self._events.get(request)
        if queue is None:
            raise GatewayRequestError(
                f"request {request} was not submitted with stream=True",
                code="invalid",
            )
        try:
            while True:
                event = await queue.get()
                yield event
                if event.get("state") in ("done", "failed", "cancelled", "lost"):
                    return
        finally:
            self._events.pop(request, None)
