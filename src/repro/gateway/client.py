"""An asyncio client for the gateway wire protocol.

:class:`GatewayClient` owns one TCP connection and multiplexes any
number of concurrent requests over it: a background reader task
dispatches replies to per-call futures by frame ``id`` and routes
``stream: true`` events (``state`` transitions and session ``output``
deltas) to per-request queues.  Refusals map back to the same
exception types the in-process frontends raise — ``busy`` becomes
:class:`~repro.errors.GatewayBusy` (a
:class:`~repro.errors.HostSaturated`), so retry loops written against
a local :class:`~repro.host.host.Host` work unchanged against a
remote gateway::

    client = await GatewayClient.connect(gw.host, gw.port)
    rid = await client.submit("alice", "(+ 1 2)")
    assert await client.result(rid) == "3"
    await client.close()

:class:`GatewayClientPool` holds *N* such connections with
auto-reconnect (jittered exponential backoff) and optional *hedged*
evals: when a submit's first attempt has not answered within a
p99-derived delay, a second attempt is launched on a different
connection and the first terminal answer wins — the loser is
cancelled server-side.  Hedging is opt-in per call (or per pool)
because it only suits idempotent sources; see ``docs/SERVING.md``.
"""

from __future__ import annotations

import asyncio
import itertools
import random
from collections import deque
from time import perf_counter
from typing import Any, AsyncIterator

from repro.errors import (
    FrameError,
    GatewayBusy,
    GatewayClosed,
    GatewayRequestError,
)
from repro.gateway.protocol import MAX_FRAME_BYTES, decode_frame, encode_frame

__all__ = ["GatewayClient", "GatewayClientPool"]


def _swallow(task: "asyncio.Future[Any]") -> None:
    """Done-callback that retrieves a fire-and-forget task's outcome so
    asyncio never logs "exception was never retrieved"."""
    if not task.cancelled():
        task.exception()


class GatewayClient:
    """One NDJSON connection to a :class:`~repro.gateway.server.Gateway`.

    All methods are coroutine-safe: many tasks may share one client
    (frame ids disambiguate the replies).  Use
    :meth:`GatewayClient.connect` to build one.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ):
        self._reader = reader
        self._writer = writer
        self._max_frame_bytes = max_frame_bytes
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future[dict[str, Any]]] = {}
        self._events: dict[int, asyncio.Queue[dict[str, Any]]] = {}
        self._write_lock = asyncio.Lock()
        self._closed = False
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> "GatewayClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=max_frame_bytes + 1
        )
        return cls(reader, writer, max_frame_bytes=max_frame_bytes)

    async def close(self) -> None:
        """Close the connection (idempotent); outstanding calls fail
        with :class:`~repro.errors.GatewayClosed`."""
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._fail_pending(GatewayClosed("connection closed"))

    async def __aenter__(self) -> "GatewayClient":
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    # -- the reader task -------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    raise GatewayClosed("server closed the connection")
                frame = decode_frame(line, max_bytes=self._max_frame_bytes)
                if "event" in frame:
                    # Any event kind ("state", "output", future ones)
                    # rides the same per-request queue, in wire order.
                    rid = frame.get("request")
                    queue = self._events.get(rid)
                    if queue is not None:
                        queue.put_nowait(frame)
                    continue
                fut = self._pending.pop(frame.get("id"), None)
                if fut is not None and not fut.done():
                    fut.set_result(frame)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - fan the failure out
            self._closed = True
            self._fail_pending(
                exc
                if isinstance(exc, (GatewayClosed, FrameError))
                else GatewayClosed(f"connection lost: {exc}")
            )

    def _fail_pending(self, exc: BaseException) -> None:
        for fut in self._pending.values():
            if not fut.done():
                fut.set_exception(exc)
        self._pending.clear()
        for queue in self._events.values():
            queue.put_nowait({"event": "state", "state": "lost", "error": str(exc)})

    # -- the call primitive ----------------------------------------------

    async def call(self, op: str, **fields: Any) -> dict[str, Any]:
        """Send one ``op`` frame and await its reply (raw dict, ``ok``
        already verified — refusals raise, see :meth:`_raise_for`)."""
        if self._closed:
            raise GatewayClosed("client is closed")
        fid = next(self._ids)
        frame = {"op": op, "id": fid}
        frame.update((k, v) for k, v in fields.items() if v is not None)
        fut: asyncio.Future[dict[str, Any]] = asyncio.get_running_loop().create_future()
        self._pending[fid] = fut
        async with self._write_lock:
            self._writer.write(encode_frame(frame))
            await self._writer.drain()
        reply = await fut
        if not reply.get("ok", False):
            self._raise_for(reply)
        return reply

    @staticmethod
    def _raise_for(reply: dict[str, Any]) -> None:
        error = reply.get("error") or {}
        code = error.get("code", "internal")
        message = error.get("message", "request refused")
        if code == "busy":
            raise GatewayBusy(
                message,
                retry_after_ms=int(error.get("retry_after_ms", 0)),
            )
        raise GatewayRequestError(message, code=code)

    # -- the shared submit contract --------------------------------------

    async def submit(
        self,
        session: str,
        source: str,
        *,
        max_steps: int | None = None,
        deadline: float | None = None,
        tenant: str | None = None,
        stream: bool = False,
    ) -> int:
        """Submit ``source`` for evaluation on ``session``; returns the
        server's request id.  The keyword surface is the shared submit
        contract (``docs/API.md``); ``deadline`` is seconds, converted
        to ``deadline_ms`` on the wire.  Refused submits raise
        :class:`~repro.errors.GatewayBusy` (sheds, carrying
        ``retry_after_ms``) or :class:`~repro.errors.GatewayRequestError`.

        With ``stream=True`` the server pushes each handle-state
        transition; consume them via :meth:`events`.
        """
        if stream:
            # Register the queue *before* the reply can race in.
            pre: asyncio.Queue[dict[str, Any]] = asyncio.Queue()
        reply = await self.call(
            "submit",
            session=session,
            source=source,
            max_steps=max_steps,
            deadline_ms=None if deadline is None else deadline * 1000.0,
            tenant=tenant,
            stream=True if stream else None,
        )
        rid = reply["request"]
        if stream:
            self._events[rid] = pre
        return rid

    async def poll(self, request: int) -> dict[str, Any]:
        """The request's current state: ``{"state": ..., "steps": ...}``
        plus value/error fields once terminal."""
        reply = await self.call("poll", request=request)
        return {k: v for k, v in reply.items() if k not in ("id", "ok", "request")}

    async def result(self, request: int, *, timeout: float | None = None) -> str | None:
        """Block until the request is terminal and return its printed
        value.  Failures raise :class:`~repro.errors.GatewayRequestError`
        with code ``eval-error`` (or ``cancelled``);  an elapsed
        ``timeout`` (seconds) raises :class:`TimeoutError` with the
        request still running."""
        reply = await self.call(
            "result",
            request=request,
            timeout_ms=None if timeout is None else timeout * 1000.0,
        )
        if reply.get("timeout"):
            raise TimeoutError(
                f"request {request} still {reply.get('state')} after {timeout}s"
            )
        state = reply.get("state")
        if state == "done":
            return reply.get("value")
        error = reply.get("error") or {}
        code = "cancelled" if state == "cancelled" else "eval-error"
        raise GatewayRequestError(
            f"request {request} {state}: "
            f"{error.get('type', '?')}: {error.get('message', '')}",
            code=code,
        )

    async def cancel(self, request: int) -> bool:
        """Ask the server to cancel; True if it was still cancellable."""
        reply = await self.call("cancel", request=request)
        return bool(reply.get("cancelled"))

    async def stats(self) -> dict[str, Any]:
        """The combined backend + gateway stats dict."""
        reply = await self.call("stats")
        return reply["stats"]

    async def ping(self) -> bool:
        reply = await self.call("ping")
        return bool(reply.get("pong"))

    async def eval(
        self,
        session: str,
        source: str,
        *,
        max_steps: int | None = None,
        deadline: float | None = None,
        tenant: str | None = None,
        timeout: float | None = None,
    ) -> str | None:
        """Submit + result in one call: the remote analogue of
        ``Interpreter.eval`` (the value comes back printed, as a
        string)."""
        rid = await self.submit(
            session, source, max_steps=max_steps, deadline=deadline, tenant=tenant
        )
        return await self.result(rid, timeout=timeout)

    # -- streaming -------------------------------------------------------

    async def events(self, request: int) -> AsyncIterator[dict[str, Any]]:
        """Yield events for a ``stream=True`` submit — state
        transitions (``"event": "state"``) interleaved with session
        output deltas (``"event": "output"``, carrying ``text``) —
        ending after the terminal state event (``done``/``failed``/
        ``cancelled``; a dropped connection yields a synthetic
        ``lost``).  Output events have no ``state`` key, so they never
        end the iteration."""
        queue = self._events.get(request)
        if queue is None:
            raise GatewayRequestError(
                f"request {request} was not submitted with stream=True",
                code="invalid",
            )
        try:
            while True:
                event = await queue.get()
                yield event
                if event.get("state") in ("done", "failed", "cancelled", "lost"):
                    return
        finally:
            self._events.pop(request, None)


class GatewayClientPool:
    """*N* gateway connections behind one client surface.

    The pool round-robins submits across its connections, transparently
    reconnects a dead one (jittered exponential backoff, so a restarted
    gateway is not stampeded), and can *hedge* idempotent evals: if the
    first attempt has not produced a terminal answer within
    :meth:`hedge_delay` seconds (by default the pool's observed p99 eval
    latency), a second attempt is launched on a *different* connection;
    the first terminal answer wins and the loser is cancelled — locally
    and, fire-and-forget, server-side.  Hedging trades duplicate work
    for tail latency, so it is opt-in (``hedge=True`` on the pool or per
    ``eval`` call) and must only be used for idempotent sources.

    Counters (``client.hedge.*``, ``client.pool.*``) are exposed via
    :meth:`pool_stats`.  Usage::

        pool = await GatewayClientPool.connect(gw.host, gw.port, size=4)
        value = await pool.eval("alice", "(+ 1 2)", hedge=True)
        await pool.close()
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        size: int = 4,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        hedge: bool = False,
        hedge_delay: "float | str" = "auto",
        reconnect_base: float = 0.05,
        reconnect_cap: float = 2.0,
        rng: random.Random | None = None,
    ):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.host = host
        self.port = port
        self.size = size
        self._max_frame_bytes = max_frame_bytes
        self._hedge = hedge
        self._hedge_delay_cfg = hedge_delay
        self._reconnect_base = reconnect_base
        self._reconnect_cap = reconnect_cap
        self._rng = rng if rng is not None else random.Random()
        self._clients: list[GatewayClient | None] = [None] * size
        self._route: dict[int, int] = {}  # request id -> connection slot
        self._latencies: deque[float] = deque(maxlen=512)  # eval round trips, s
        self._rr = itertools.count()
        self._reconnecting: set[int] = set()
        self._closed = False
        self.counters: dict[str, int] = {
            "client.hedge.launched": 0,  # backup attempts actually started
            "client.hedge.wins": 0,  # evals where the backup answered first
            "client.hedge.cancelled": 0,  # loser attempts cancelled server-side
            "client.pool.reconnects": 0,  # connections re-established
        }

    @classmethod
    async def connect(
        cls, host: str, port: int, *, size: int = 4, **kwargs: Any
    ) -> "GatewayClientPool":
        """Open ``size`` connections; fails fast if any refuses."""
        pool = cls(host, port, size=size, **kwargs)
        try:
            for i in range(size):
                pool._clients[i] = await GatewayClient.connect(
                    host, port, max_frame_bytes=pool._max_frame_bytes
                )
        except BaseException:
            await pool.close()
            raise
        return pool

    async def close(self) -> None:
        """Close every connection (idempotent); reconnectors stand down."""
        self._closed = True
        for i, client in enumerate(self._clients):
            self._clients[i] = None
            if client is not None:
                await client.close()

    async def __aenter__(self) -> "GatewayClientPool":
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    # -- connection management -------------------------------------------

    def _mark_dead(self, idx: int) -> None:
        """Retire a connection and start its background reconnector."""
        client = self._clients[idx]
        self._clients[idx] = None
        if client is not None and not client._closed:
            task = asyncio.ensure_future(client.close())
            task.add_done_callback(_swallow)
        if not self._closed and idx not in self._reconnecting:
            self._reconnecting.add(idx)
            asyncio.ensure_future(self._reconnect(idx))

    async def _reconnect(self, idx: int) -> None:
        attempt = 0
        try:
            while not self._closed:
                # Jittered exponential backoff: a herd of pools hitting
                # a restarted gateway spreads out instead of stampeding.
                delay = min(
                    self._reconnect_cap, self._reconnect_base * (2**attempt)
                ) * (0.5 + self._rng.random())
                await asyncio.sleep(delay)
                if self._closed:
                    return
                try:
                    client = await GatewayClient.connect(
                        self.host, self.port, max_frame_bytes=self._max_frame_bytes
                    )
                except (ConnectionError, OSError):
                    attempt += 1
                    continue
                if self._closed:
                    await client.close()
                    return
                self._clients[idx] = client
                self.counters["client.pool.reconnects"] += 1
                return
        finally:
            self._reconnecting.discard(idx)

    async def _acquire(self, avoid: int | None = None) -> tuple[int, GatewayClient]:
        """A live connection, round-robin; prefers slots != ``avoid``
        (hedging wants connection diversity) but will reuse it rather
        than fail.  Naps while every slot is mid-reconnect."""
        while True:
            if self._closed:
                raise GatewayClosed("pool is closed")
            for _ in range(self.size):
                idx = next(self._rr) % self.size
                if idx == avoid:
                    continue
                client = self._clients[idx]
                if client is None:
                    continue
                if client._closed:
                    self._mark_dead(idx)
                    continue
                return idx, client
            if avoid is not None:
                avoid = None  # a shared connection beats no connection
                continue
            await asyncio.sleep(0.01)

    # -- the client surface ----------------------------------------------

    async def submit(
        self,
        session: str,
        source: str,
        *,
        max_steps: int | None = None,
        deadline: float | None = None,
        tenant: str | None = None,
        stream: bool = False,
    ) -> int:
        """The shared submit contract over whichever connection is
        next; connection failures retry on another (``busy`` sheds
        propagate — backpressure is the caller's signal, not ours)."""
        rid, _ = await self._submit_routed(
            session,
            source,
            max_steps=max_steps,
            deadline=deadline,
            tenant=tenant,
            stream=stream,
        )
        return rid

    async def _submit_routed(
        self,
        session: str,
        source: str,
        *,
        max_steps: int | None,
        deadline: float | None,
        tenant: str | None,
        stream: bool = False,
        avoid: int | None = None,
        box: dict[str, int] | None = None,
    ) -> tuple[int, int]:
        last_exc: BaseException | None = None
        for _ in range(self.size + 1):
            idx, client = await self._acquire(avoid=avoid)
            if box is not None:
                # Publish the slot *before* the submit round-trip: a
                # hedging caller must know which connection to avoid
                # even while this submit is still in flight on a slow
                # one (that slow reply is exactly why it is hedging).
                box["idx"] = idx
                box.pop("rid", None)
            try:
                rid = await client.submit(
                    session,
                    source,
                    max_steps=max_steps,
                    deadline=deadline,
                    tenant=tenant,
                    stream=stream,
                )
            except (GatewayBusy, GatewayRequestError):
                raise
            except (GatewayClosed, ConnectionError, OSError) as exc:
                last_exc = exc
                self._mark_dead(idx)
                continue
            self._route[rid] = idx
            if box is not None:
                box["rid"] = rid
            return rid, idx
        raise last_exc if last_exc is not None else GatewayClosed(
            "no gateway connection available"
        )

    def _client_for(self, request: int) -> GatewayClient:
        """The connection a request was submitted on (request ids are
        per-gateway, but the server drops a request's record when its
        submitting connection dies, so cross-connection lookups are
        best-effort only)."""
        idx = self._route.get(request)
        if idx is not None:
            client = self._clients[idx]
            if client is not None and not client._closed:
                return client
        for client in self._clients:
            if client is not None and not client._closed:
                return client
        raise GatewayClosed(f"no live connection for request {request}")

    async def poll(self, request: int) -> dict[str, Any]:
        return await self._client_for(request).poll(request)

    async def result(self, request: int, *, timeout: float | None = None) -> str | None:
        client = self._client_for(request)
        try:
            value = await client.result(request, timeout=timeout)
        except TimeoutError:
            raise  # still running: keep the route for the retry
        except GatewayRequestError:
            self._route.pop(request, None)
            raise
        self._route.pop(request, None)
        return value

    async def cancel(self, request: int) -> bool:
        return await self._client_for(request).cancel(request)

    async def stats(self) -> dict[str, Any]:
        """Server-side stats (via any live connection) merged with the
        pool's own ``client.*`` counters."""
        _, client = await self._acquire()
        stats = await client.stats()
        stats.update(self.pool_stats())
        return stats

    def pool_stats(self) -> dict[str, int]:
        out = dict(self.counters)
        out["client.pool.size"] = self.size
        out["client.pool.live"] = sum(
            1 for c in self._clients if c is not None and not c._closed
        )
        return out

    async def ping(self) -> bool:
        _, client = await self._acquire()
        return await client.ping()

    # -- hedged eval ------------------------------------------------------

    def hedge_delay(self) -> float:
        """Seconds to wait before launching the backup attempt: the
        configured float, or (``"auto"``) the pool's observed p99 eval
        latency — 50ms until 16 samples exist, never below 1ms."""
        cfg = self._hedge_delay_cfg
        if cfg != "auto":
            return float(cfg)
        if len(self._latencies) < 16:
            return 0.05
        ordered = sorted(self._latencies)
        p99 = ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]
        return max(0.001, p99)

    async def eval(
        self,
        session: str,
        source: str,
        *,
        max_steps: int | None = None,
        deadline: float | None = None,
        tenant: str | None = None,
        timeout: float | None = None,
        hedge: bool | None = None,
    ) -> str | None:
        """Submit + result, with optional hedging (``hedge=None`` uses
        the pool default).  Only hedge idempotent sources: a hedged
        eval may execute twice."""
        use_hedge = self._hedge if hedge is None else hedge
        kwargs = dict(
            max_steps=max_steps, deadline=deadline, tenant=tenant, timeout=timeout
        )
        if not use_hedge:
            return await self._eval_once(session, source, **kwargs)
        return await self._eval_hedged(session, source, **kwargs)

    async def _eval_once(
        self,
        session: str,
        source: str,
        *,
        max_steps: int | None,
        deadline: float | None,
        tenant: str | None,
        timeout: float | None,
        avoid: int | None = None,
        box: dict[str, int] | None = None,
    ) -> str | None:
        """One submit+result attempt, retrying connection loss (the
        server cancels a dead connection's requests, so a resubmit
        cannot double-execute).  ``box`` publishes the live attempt's
        ``rid``/``idx`` so a hedging caller can cancel the loser."""
        last_exc: BaseException | None = None
        for _ in range(self.size + 1):
            t0 = perf_counter()
            rid, idx = await self._submit_routed(
                session,
                source,
                max_steps=max_steps,
                deadline=deadline,
                tenant=tenant,
                avoid=avoid,
                box=box,
            )
            client = self._clients[idx]
            if client is None or client._closed:
                self._route.pop(rid, None)
                continue
            try:
                value = await client.result(rid, timeout=timeout)
            except (GatewayClosed, ConnectionError, OSError) as exc:
                last_exc = exc
                self._mark_dead(idx)
                self._route.pop(rid, None)
                if box is not None:
                    box.pop("rid", None), box.pop("idx", None)
                continue
            self._route.pop(rid, None)
            self._latencies.append(perf_counter() - t0)
            return value
        raise last_exc if last_exc is not None else GatewayClosed(
            "no gateway connection available"
        )

    async def _eval_hedged(self, session: str, source: str, **kwargs: Any) -> str | None:
        primary_box: dict[str, int] = {}
        backup_box: dict[str, int] = {}
        primary = asyncio.ensure_future(
            self._eval_once(session, source, box=primary_box, **kwargs)
        )
        done, _ = await asyncio.wait({primary}, timeout=self.hedge_delay())
        if done:
            return primary.result()
        self.counters["client.hedge.launched"] += 1
        backup = asyncio.ensure_future(
            self._eval_once(
                session,
                source,
                avoid=primary_box.get("idx"),
                box=backup_box,
                **kwargs,
            )
        )
        pending = {primary, backup}
        failures: list[BaseException] = []
        try:
            while pending:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED
                )
                for task in done:
                    exc = task.exception()
                    if exc is not None:
                        failures.append(exc)
                        continue
                    # First clean terminal answer wins.
                    if task is backup:
                        self.counters["client.hedge.wins"] += 1
                    for loser in pending:
                        loser.cancel()
                    self._abort_attempt(
                        primary_box if task is backup else backup_box
                    )
                    return task.result()
            raise failures[0]
        finally:
            for task in (primary, backup):
                if not task.done():
                    task.cancel()
                task.add_done_callback(_swallow)

    def _abort_attempt(self, box: dict[str, int]) -> None:
        """Fire-and-forget server-side cancel of a losing hedge
        attempt — never awaited inline, so a wedged loser connection
        cannot stall the winning answer."""
        rid = box.get("rid")
        idx = box.get("idx")
        if rid is None:
            return
        self._route.pop(rid, None)
        client = self._clients[idx] if idx is not None else None
        if client is not None and not client._closed:
            self.counters["client.hedge.cancelled"] += 1
            task = asyncio.ensure_future(client.cancel(rid))
            task.add_done_callback(_swallow)
