"""The gateway wire protocol: newline-delimited JSON frames.

One TCP connection carries a sequence of *frames*, each a single JSON
object on its own ``\\n``-terminated line (UTF-8, no newlines inside a
frame).  The protocol is deliberately minimal and fully specified in
``docs/SERVING.md``; this module is the shared codec — both the server
and the bundled client encode/decode through it, and the fuzz test in
``tests/gateway/test_protocol.py`` round-trips arbitrary frames through
the same pair of functions.

Client → server frames carry ``op`` and a client-chosen ``id``::

    {"op": "submit", "id": 1, "session": "alice", "source": "(+ 1 2)",
     "max_steps": 10000, "deadline_ms": 500, "tenant": "alice",
     "stream": false}
    {"op": "poll",   "id": 2, "request": 7}
    {"op": "result", "id": 3, "request": 7, "timeout_ms": 1000}
    {"op": "cancel", "id": 4, "request": 7}
    {"op": "stats",  "id": 5}

Server → client frames are either *replies* (exactly one per client
frame, echoing its ``id``) or — for ``stream: true`` submits — *events*
(no ``id``): ``"event": "state"`` announces each handle-state
transition, and ``"event": "output"`` carries the ``display``/``write``
output the evaluation produced since the previous output event (for a
Host backend the deltas stream *during* execution; for a Cluster
backend the shard protocol returns output with the result, so one
output event precedes the terminal state event)::

    {"id": 1, "ok": true, "request": 7, "state": "pending"}
    {"event": "state", "request": 7, "state": "running"}
    {"event": "output", "request": 7, "text": "hello\\n"}
    {"event": "state", "request": 7, "state": "done", "value": "3",
     "steps": 42}
    {"id": 3, "ok": false, "error": {"code": "busy",
     "message": "...", "retry_after_ms": 25}}

Cluster-backed terminal payloads additionally carry ``recovered``
(boolean) whenever a shard death touched the request: ``true`` means
the answer was produced by replaying the session's last snapshot on a
respawned worker, ``false`` means no snapshot existed and the
structured error is all the caller gets — either way the frame is
answered, never dropped (the failure-transparency contract,
``docs/SERVING.md``).

Error codes (the ``error.code`` field of a refused reply):

========== =============================================================
``busy``          load shed — quota or backpressure refusal; carries
                  ``retry_after_ms`` (the 429 of this protocol)
``bad-frame``     unparseable JSON or a non-object frame (recoverable:
                  the stream stays line-synchronised)
``oversize``      frame longer than the negotiated limit (fatal: the
                  server closes the connection, since the stream can no
                  longer be trusted to be line-synchronised)
``unknown-op``    an ``op`` this server does not implement
``unknown-request`` a ``request`` id this server is not tracking
``invalid``       a well-formed frame with missing/mistyped fields
``eval-error``    the evaluation itself failed (in-band, via ``result``)
``cancelled``     the request was cancelled before completing
``internal``      an unexpected server-side fault (the request is dead,
                  the connection survives)
========== =============================================================
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import FrameError

__all__ = [
    "MAX_FRAME_BYTES",
    "OPS",
    "ERROR_CODES",
    "encode_frame",
    "decode_frame",
    "error_frame",
]

#: Default per-frame byte limit (including the trailing newline).  Large
#: enough for multi-kilobyte programs, small enough that one connection
#: cannot balloon server memory: frames beyond it are an ``oversize``
#: protocol error and the connection is closed.
MAX_FRAME_BYTES = 256 * 1024

#: The ops a gateway serves.
OPS = ("submit", "poll", "result", "cancel", "stats", "ping")

#: Every error code a server may put in ``error.code``.
ERROR_CODES = (
    "busy",
    "bad-frame",
    "oversize",
    "unknown-op",
    "unknown-request",
    "invalid",
    "eval-error",
    "cancelled",
    "internal",
)


def encode_frame(frame: dict[str, Any]) -> bytes:
    """One frame as its wire bytes (compact JSON + ``\\n``).

    Raises :class:`~repro.errors.FrameError` if the frame is not
    JSON-serialisable — a caller bug surfaced before it hits the wire.
    """
    try:
        text = json.dumps(frame, separators=(",", ":"), ensure_ascii=False)
    except (TypeError, ValueError) as exc:
        raise FrameError(f"frame not JSON-serialisable: {exc}") from exc
    return text.encode("utf-8") + b"\n"


def decode_frame(line: bytes, *, max_bytes: int = MAX_FRAME_BYTES) -> dict[str, Any]:
    """Decode one wire line back to a frame dict.

    Raises :class:`~repro.errors.FrameError` with ``code="oversize"``
    for an over-long line and ``code="bad-frame"`` for malformed JSON
    or a non-object payload.  (Oversize is checked first: a huge line
    is refused without parsing it.)
    """
    if len(line) > max_bytes:
        raise FrameError(
            f"frame of {len(line)} bytes exceeds the {max_bytes}-byte limit",
            code="oversize",
        )
    try:
        frame = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise FrameError(f"unparseable frame: {exc}") from exc
    if not isinstance(frame, dict):
        raise FrameError(
            f"frame must be a JSON object, got {type(frame).__name__}"
        )
    return frame


def error_frame(
    request_id: Any,
    code: str,
    message: str,
    *,
    retry_after_ms: int | None = None,
) -> dict[str, Any]:
    """Build a refusal reply (``ok: false``) for ``request_id`` (the
    *client's* frame id; ``None`` when the frame was too broken to
    carry one)."""
    error: dict[str, Any] = {"code": code, "message": message}
    if retry_after_ms is not None:
        error["retry_after_ms"] = int(retry_after_ms)
    return {"id": request_id, "ok": False, "error": error}
