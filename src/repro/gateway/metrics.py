"""Gateway counters and latency histograms, following the
``session.*`` / ``host.*`` / ``cluster.*`` conventions of
:mod:`repro.host.metrics`: int-only ``as_dict`` under the ``gateway.*``
namespace, distributions exported separately via ``histograms()`` so
the bench driver folds them into ``BENCH_results.json`` unchanged.
"""

from __future__ import annotations

from typing import Any

from repro.obs.histogram import Histogram

__all__ = ["GatewayMetrics"]


class GatewayMetrics:
    """Counters and distributions for one :class:`~repro.gateway.server.Gateway`.

    Mutated only on the gateway's asyncio thread (terminal-state
    notifications are marshalled there before counting), so reads from
    the same thread are consistent without locks.
    """

    _COUNTERS = (
        "connections",
        "disconnects",
        "frames",
        "submits",
        "completed",
        "failed",
        "cancelled",
        "shed",
        "protocol_errors",
        "disconnect_cancels",
        "output_events",
        "recovery_replays",
        "recovery_failures",
    )

    #: Counters exported under a dotted sub-namespace instead of their
    #: attribute name (``gateway.recovery.*`` is the wire-visible
    #: failure-transparency contract, see docs/SERVING.md).
    _RENAMES = {
        "recovery_replays": "recovery.replays",
        "recovery_failures": "recovery.failures",
    }

    __slots__ = _COUNTERS + ("request_us", "result_wait_us")

    def __init__(self) -> None:
        self.connections = 0  # connections accepted
        self.disconnects = 0  # connections ended (any reason)
        self.frames = 0  # client frames parsed
        self.submits = 0  # submits admitted to the backend
        self.completed = 0  # admitted requests that reached DONE
        self.failed = 0  # admitted requests that reached FAILED
        self.cancelled = 0  # admitted requests that reached CANCELLED
        self.shed = 0  # submits refused with a busy reply
        self.protocol_errors = 0  # bad-frame/oversize/unknown-op/invalid replies
        self.disconnect_cancels = 0  # requests cancelled because their client left
        self.output_events = 0  # streamed session-output event frames sent
        self.recovery_replays = 0  # terminal answers recovered via snapshot replay
        self.recovery_failures = 0  # shard deaths answered with recovered: false
        self.request_us = Histogram()  # admit -> terminal state, per request
        self.result_wait_us = Histogram()  # blocking `result` op wait time

    def as_dict(self, prefix: str = "gateway") -> dict[str, int]:
        return {
            f"{prefix}.{self._RENAMES.get(name, name)}": getattr(self, name)
            for name in self._COUNTERS
        }

    def histograms(self, prefix: str = "gateway") -> dict[str, Any]:
        """The distribution summaries, JSON-ready."""
        return {
            f"{prefix}.request_us": self.request_us.as_dict(),
            f"{prefix}.result_wait_us": self.result_wait_us.as_dict(),
        }
