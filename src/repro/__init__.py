"""repro — a reproduction of Hieb & Dybvig, "Continuations and
Concurrency" (PPoPP 1990).

The package implements **process continuations** (subcontinuations) and
the ``spawn`` operator over an embedded Scheme with tree-structured
concurrency (``pcall``), together with the traditional-continuation
baselines the paper critiques, the formal rewriting semantics of
Section 6, and a Python-native tasklet runtime exposing the same
algebra to plain Python code.

Quick start::

    from repro import Interpreter

    interp = Interpreter()
    interp.load_paper_example("sum-of-products")
    interp.eval("(sum-of-products '(1 2 3) '(4 0 6))")   # => 6

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-claim reproduction index.
"""

from repro.analysis import EffectInfo, ProgramReport, analyze, spawn_report
from repro.api import Interpreter
from repro.errors import (
    ReproError,
    ReaderError,
    ExpandError,
    MachineError,
    SchemeError,
    ControlError,
    InvalidControllerError,
    DeadControllerError,
    PromptMissingError,
    ContinuationReusedError,
    StepBudgetExceeded,
    HostError,
    DeadlineExceeded,
    SessionCancelled,
    HostSaturated,
    SnapshotError,
    SnapshotFormatError,
    ClusterError,
    ClusterEvalError,
    ShardDied,
    GatewayError,
    FrameError,
    GatewayBusy,
    GatewayClosed,
    GatewayRequestError,
)
from repro.host import EvalHandle, HandleState, Host, HostPolicy, Session
from repro.machine.scheduler import Engine, SchedulerPolicy
from repro.obs import Recorder
from repro.snapshot import SNAPSHOT_VERSION, restore_session, snapshot_session
from repro.cluster import Cluster, ClusterHandle, ClusterResult, DirectoryStore, MemoryStore
from repro.gateway import Gateway, GatewayClient, GatewayLimits, TokenBucket

__version__ = "1.4.0"

__all__ = [
    "Interpreter",
    "analyze",
    "spawn_report",
    "EffectInfo",
    "ProgramReport",
    "Host",
    "HostPolicy",
    "Session",
    "EvalHandle",
    "HandleState",
    "Engine",
    "SchedulerPolicy",
    "Recorder",
    "ReproError",
    "ReaderError",
    "ExpandError",
    "MachineError",
    "SchemeError",
    "ControlError",
    "InvalidControllerError",
    "DeadControllerError",
    "PromptMissingError",
    "ContinuationReusedError",
    "StepBudgetExceeded",
    "HostError",
    "DeadlineExceeded",
    "SessionCancelled",
    "HostSaturated",
    "SnapshotError",
    "SnapshotFormatError",
    "ClusterError",
    "ClusterEvalError",
    "ShardDied",
    "GatewayError",
    "FrameError",
    "GatewayBusy",
    "GatewayClosed",
    "GatewayRequestError",
    "SNAPSHOT_VERSION",
    "snapshot_session",
    "restore_session",
    "Cluster",
    "ClusterHandle",
    "ClusterResult",
    "MemoryStore",
    "DirectoryStore",
    "Gateway",
    "GatewayClient",
    "GatewayLimits",
    "TokenBucket",
    "__version__",
]
