"""S-expression reader.

:func:`read_all` turns program text into a list of Scheme data;
:func:`read_one` reads a single datum.  The reader supports the full
surface syntax used in the paper: lists, dotted pairs, vectors,
booleans, characters, strings, exact and inexact numbers, and the
quotation shorthands.
"""

from repro.reader.lexer import Lexer, Token, TokenKind, tokenize
from repro.reader.parser import Parser, read_all, read_one

__all__ = [
    "Lexer",
    "Token",
    "TokenKind",
    "tokenize",
    "Parser",
    "read_all",
    "read_one",
]
