"""Tokenizer for Scheme surface syntax.

Produces a stream of :class:`Token` objects with line/column
information.  Handles:

* parentheses and brackets (``[`` and ``]`` are interchangeable with
  parens, as in the paper's examples);
* the quotation prefixes ``'``, `````, ``,``, ``,@``;
* ``#t`` / ``#f`` booleans, ``#\\x`` characters, ``#(`` vector-open;
* strings with escape sequences;
* line comments ``;`` and block comments ``#| ... |#`` (nested);
* datum comments ``#;``;
* numbers: exact integers, rationals ``a/b``, decimals and exponent
  floats, with sign prefixes.

Anything else that looks like an identifier becomes a symbol token.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Iterator

from repro.datum.chars import NAMED_CHARS, Char
from repro.errors import ReaderError

__all__ = ["TokenKind", "Token", "Lexer", "tokenize"]


class TokenKind(enum.Enum):
    LPAREN = "lparen"
    RPAREN = "rparen"
    VECTOR_OPEN = "vector-open"
    QUOTE = "quote"
    QUASIQUOTE = "quasiquote"
    UNQUOTE = "unquote"
    UNQUOTE_SPLICING = "unquote-splicing"
    DOT = "dot"
    BOOLEAN = "boolean"
    NUMBER = "number"
    STRING = "string"
    CHAR = "char"
    SYMBOL = "symbol"
    DATUM_COMMENT = "datum-comment"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: Any
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.value}, {self.value!r}, {self.line}:{self.column})"


_DELIMITERS = set("()[]\"; \t\n\r")

_STRING_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "\\": "\\",
    '"': '"',
    "a": "\a",
    "b": "\b",
    "0": "\0",
}


def _parse_number(text: str) -> Any | None:
    """Parse ``text`` as a Scheme number, or None if it is not one."""
    if not text:
        return None
    special = {
        "+inf.0": float("inf"),
        "-inf.0": float("-inf"),
        "+nan.0": float("nan"),
        "-nan.0": float("nan"),
    }
    if text in special:
        return special[text]
    body = text
    sign = 1
    if body[0] in "+-":
        if len(body) == 1:
            return None
        if body[0] == "-":
            sign = -1
        body = body[1:]
    def _ascii_digits(text_: str) -> bool:
        # str.isdigit() accepts Unicode digits that int() rejects
        # (e.g. superscripts); require ASCII.
        return bool(text_) and text_.isascii() and text_.isdigit()

    if "/" in body:
        num, _, den = body.partition("/")
        if _ascii_digits(num) and _ascii_digits(den) and int(den) != 0:
            frac = Fraction(sign * int(num), int(den))
            if frac.denominator == 1:
                return frac.numerator
            return frac
        return None
    if _ascii_digits(body):
        return sign * int(body)
    # Float forms: need a digit somewhere, plus '.' or exponent.
    if (
        body.isascii()
        and any(c.isdigit() for c in body)
        and ("." in body or "e" in body or "E" in body)
    ):
        try:
            value = sign * float(body)
        except ValueError:
            return None
        return value
    return None


class Lexer:
    """A character-at-a-time tokenizer with one token of lookahead."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.text[idx] if idx < len(self.text) else ""

    def _advance(self) -> str:
        ch = self.text[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch

    def _error(self, message: str) -> ReaderError:
        return ReaderError(message, self.line, self.column)

    def _skip_atmosphere(self) -> None:
        """Skip whitespace and comments (line and nested block)."""
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\n\r\f":
                self._advance()
            elif ch == ";":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "#" and self._peek(1) == "|":
                start_line, start_col = self.line, self.column
                self._advance()
                self._advance()
                depth = 1
                while depth > 0:
                    if self.pos >= len(self.text):
                        raise ReaderError(
                            "unterminated block comment", start_line, start_col
                        )
                    if self._peek() == "#" and self._peek(1) == "|":
                        self._advance(), self._advance()
                        depth += 1
                    elif self._peek() == "|" and self._peek(1) == "#":
                        self._advance(), self._advance()
                        depth -= 1
                    else:
                        self._advance()
            else:
                return

    def _read_string(self, line: int, column: int) -> Token:
        chars: list[str] = []
        while True:
            if self.pos >= len(self.text):
                raise ReaderError("unterminated string literal", line, column)
            ch = self._advance()
            if ch == '"':
                return Token(TokenKind.STRING, "".join(chars), line, column)
            if ch == "\\":
                if self.pos >= len(self.text):
                    raise ReaderError("unterminated escape in string", line, column)
                esc = self._advance()
                if esc in _STRING_ESCAPES:
                    chars.append(_STRING_ESCAPES[esc])
                elif esc == "x":
                    hex_digits = []
                    while self._peek() and self._peek() != ";":
                        hex_digits.append(self._advance())
                    if self._peek() == ";":
                        self._advance()
                    try:
                        chars.append(chr(int("".join(hex_digits), 16)))
                    except ValueError:
                        raise self._error(f"bad hex escape \\x{''.join(hex_digits)}")
                else:
                    raise self._error(f"unknown string escape \\{esc}")
            else:
                chars.append(ch)

    def _read_char(self, line: int, column: int) -> Token:
        if self.pos >= len(self.text):
            raise ReaderError("unterminated character literal", line, column)
        first = self._advance()
        # A named character continues with letters; a single char ends
        # at a delimiter.
        if first.isalpha():
            name = [first]
            while self._peek() and self._peek() not in _DELIMITERS:
                name.append(self._advance())
            text = "".join(name)
            if len(text) == 1:
                return Token(TokenKind.CHAR, Char(text), line, column)
            lowered = text.lower()
            if lowered in NAMED_CHARS:
                return Token(TokenKind.CHAR, Char(NAMED_CHARS[lowered]), line, column)
            if lowered.startswith("x") and len(lowered) > 1:
                try:
                    return Token(
                        TokenKind.CHAR, Char(chr(int(lowered[1:], 16))), line, column
                    )
                except (ValueError, OverflowError):
                    pass
            raise ReaderError(f"unknown character name #\\{text}", line, column)
        return Token(TokenKind.CHAR, Char(first), line, column)

    def _read_atom(self, line: int, column: int) -> Token:
        chars: list[str] = []
        while self.pos < len(self.text) and self._peek() not in _DELIMITERS:
            chars.append(self._advance())
        text = "".join(chars)
        if text == ".":
            return Token(TokenKind.DOT, ".", line, column)
        number = _parse_number(text)
        if number is not None:
            return Token(TokenKind.NUMBER, number, line, column)
        return Token(TokenKind.SYMBOL, text, line, column)

    def next_token(self) -> Token:
        self._skip_atmosphere()
        line, column = self.line, self.column
        if self.pos >= len(self.text):
            return Token(TokenKind.EOF, None, line, column)
        ch = self._advance()
        if ch in "([":
            return Token(TokenKind.LPAREN, ch, line, column)
        if ch in ")]":
            return Token(TokenKind.RPAREN, ch, line, column)
        if ch == "'":
            return Token(TokenKind.QUOTE, "'", line, column)
        if ch == "`":
            return Token(TokenKind.QUASIQUOTE, "`", line, column)
        if ch == ",":
            if self._peek() == "@":
                self._advance()
                return Token(TokenKind.UNQUOTE_SPLICING, ",@", line, column)
            return Token(TokenKind.UNQUOTE, ",", line, column)
        if ch == '"':
            return self._read_string(line, column)
        if ch == "#":
            nxt = self._peek()
            # NB: nxt may be "" at end of input; "" is a substring of
            # anything, so every membership test below guards on nxt.
            if nxt and nxt in "([":
                self._advance()
                return Token(TokenKind.VECTOR_OPEN, "#(", line, column)
            if nxt in ("t", "f") and (
                self._peek(1) == "" or self._peek(1) in _DELIMITERS
            ):
                self._advance()
                return Token(TokenKind.BOOLEAN, nxt == "t", line, column)
            if nxt == "\\":
                self._advance()
                return self._read_char(line, column)
            if nxt == ";":
                self._advance()
                return Token(TokenKind.DATUM_COMMENT, "#;", line, column)
            raise ReaderError(f"unknown # syntax: #{nxt or '<eof>'}", line, column)
        # Fall through: part of an atom (symbol or number).  Rewind one
        # character so _read_atom sees it.
        self.pos -= 1
        self.column -= 1
        return self._read_atom(line, column)

    def __iter__(self) -> Iterator[Token]:
        while True:
            token = self.next_token()
            yield token
            if token.kind is TokenKind.EOF:
                return


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` completely (including the trailing EOF token)."""
    return list(Lexer(text))
