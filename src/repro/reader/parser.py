"""Parser from token streams to Scheme data.

The parser is **iterative** (an explicit builder stack rather than
recursive descent), so arbitrarily deep nesting parses without
touching Python's recursion limit.  Quotation shorthands expand to
their list forms (``'x`` → ``(quote x)``).
"""

from __future__ import annotations

from typing import Any

from repro.datum import NIL, MVector, from_pylist, intern
from repro.errors import ReaderError
from repro.reader.lexer import Lexer, Token, TokenKind

__all__ = ["Parser", "read_all", "read_one"]

_PREFIX_NAMES = {
    TokenKind.QUOTE: "quote",
    TokenKind.QUASIQUOTE: "quasiquote",
    TokenKind.UNQUOTE: "unquote",
    TokenKind.UNQUOTE_SPLICING: "unquote-splicing",
}

_ATOM_KINDS = (
    TokenKind.NUMBER,
    TokenKind.STRING,
    TokenKind.CHAR,
    TokenKind.BOOLEAN,
)


class _ListBuilder:
    """Accumulates a list; handles the dotted tail protocol."""

    __slots__ = ("open_token", "items", "tail", "state")

    def __init__(self, open_token: Token):
        self.open_token = open_token
        self.items: list[Any] = []
        self.tail: Any = NIL
        # state: "items" -> "tail" (after dot) -> "closed" (tail seen)
        self.state = "items"

    def add(self, value: Any, token: Token) -> None:
        if self.state == "items":
            self.items.append(value)
        elif self.state == "tail":
            self.tail = value
            self.state = "closed"
        else:
            raise ReaderError("expected ) after dotted tail", token.line, token.column)

    def saw_dot(self, token: Token) -> None:
        if self.state != "items" or not self.items:
            raise ReaderError("misplaced dot in list", token.line, token.column)
        self.state = "tail"

    def finish(self, token: Token) -> Any:
        if self.state == "tail":
            raise ReaderError("dot with no following datum", token.line, token.column)
        return from_pylist(self.items, self.tail)


class _VectorBuilder:
    __slots__ = ("open_token", "items")

    def __init__(self, open_token: Token):
        self.open_token = open_token
        self.items: list[Any] = []

    def add(self, value: Any, token: Token) -> None:
        self.items.append(value)

    def saw_dot(self, token: Token) -> None:
        raise ReaderError("dot inside vector", token.line, token.column)

    def finish(self, token: Token) -> Any:
        return MVector(self.items)


class _PrefixBuilder:
    """``'x`` and friends: wraps the next datum."""

    __slots__ = ("name", "token")

    def __init__(self, name: str, token: Token):
        self.name = name
        self.token = token


class _DiscardBuilder:
    """``#;``: swallows the next datum."""

    __slots__ = ("token",)

    def __init__(self, token: Token):
        self.token = token


class Parser:
    """Reads data from a lexer, one complete datum per :meth:`read`."""

    def __init__(self, text: str):
        self.lexer = Lexer(text)

    def _next(self) -> Token:
        return self.lexer.next_token()

    def read(self) -> tuple[bool, Any]:
        """Read one datum.

        Returns ``(True, datum)`` or ``(False, None)`` at end of input.
        """
        stack: list[Any] = []
        while True:
            token = self._next()
            kind = token.kind

            if kind is TokenKind.EOF:
                if stack:
                    top = stack[-1]  # innermost incomplete construct
                    if isinstance(top, _DiscardBuilder):
                        raise ReaderError(
                            "#; with no following datum",
                            top.token.line,
                            top.token.column,
                        )
                    if isinstance(top, _PrefixBuilder):
                        raise ReaderError(
                            f"{top.name} with no following datum",
                            top.token.line,
                            top.token.column,
                        )
                    what = "vector" if isinstance(top, _VectorBuilder) else "list"
                    raise ReaderError(
                        f"unterminated {what}",
                        top.open_token.line,
                        top.open_token.column,
                    )
                return False, None

            if kind is TokenKind.DATUM_COMMENT:
                stack.append(_DiscardBuilder(token))
                continue
            if kind is TokenKind.LPAREN:
                stack.append(_ListBuilder(token))
                continue
            if kind is TokenKind.VECTOR_OPEN:
                stack.append(_VectorBuilder(token))
                continue
            if kind in _PREFIX_NAMES:
                stack.append(_PrefixBuilder(_PREFIX_NAMES[kind], token))
                continue
            if kind is TokenKind.DOT:
                if stack and isinstance(stack[-1], (_ListBuilder, _VectorBuilder)):
                    stack[-1].saw_dot(token)
                    continue
                raise ReaderError("unexpected .", token.line, token.column)

            if kind is TokenKind.RPAREN:
                if not stack or not isinstance(
                    stack[-1], (_ListBuilder, _VectorBuilder)
                ):
                    raise ReaderError("unexpected )", token.line, token.column)
                builder = stack.pop()
                completed = builder.finish(token)
            elif kind in _ATOM_KINDS:
                completed = token.value
            elif kind is TokenKind.SYMBOL:
                completed = intern(token.value)
            else:  # pragma: no cover - all kinds covered above
                raise ReaderError(
                    f"unexpected token {kind.value}", token.line, token.column
                )

            # Feed the completed datum upward through prefix/discard
            # builders until it lands in a container or is the answer.
            while True:
                if not stack:
                    return True, completed
                top = stack[-1]
                if isinstance(top, _DiscardBuilder):
                    stack.pop()
                    break  # datum swallowed; keep reading
                if isinstance(top, _PrefixBuilder):
                    stack.pop()
                    completed = from_pylist([intern(top.name), completed])
                    continue
                top.add(completed, token)
                break


def read_all(text: str) -> list[Any]:
    """Read every datum in ``text``."""
    parser = Parser(text)
    out: list[Any] = []
    while True:
        ok, datum = parser.read()
        if not ok:
            return out
        out.append(datum)


def read_one(text: str) -> Any:
    """Read exactly one datum; error if there are zero or several."""
    data = read_all(text)
    if len(data) != 1:
        raise ReaderError(f"expected exactly one datum, found {len(data)}")
    return data[0]
