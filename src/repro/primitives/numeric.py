"""Numeric primitives.

Scheme numbers map onto Python ``int`` (exact integers),
``fractions.Fraction`` (exact rationals) and ``float`` (inexact reals).
``bool`` must be rejected everywhere despite being an ``int`` subclass.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Any, Callable

from repro.errors import SchemeError, WrongTypeError

__all__ = ["NUMERIC_PRIMITIVES", "check_number", "normalize"]

Number = (int, float, Fraction)


def check_number(name: str, value: Any) -> Any:
    if isinstance(value, bool) or not isinstance(value, Number):
        raise WrongTypeError(f"{name}: not a number: {value!r}")
    return value


def normalize(value: Any) -> Any:
    """Collapse integral Fractions to ints (exactness preserved)."""
    if isinstance(value, Fraction) and value.denominator == 1:
        return value.numerator
    return value


def prim_add(*args: Any) -> Any:
    # Fixnum fast path: ``type(x) is int`` is False for bool, so the
    # bool-rejection contract of check_number is preserved, and an
    # int result never needs normalizing.
    if len(args) == 2:
        a, b = args
        if type(a) is int and type(b) is int:
            return a + b
    total: Any = 0
    for arg in args:
        check_number("+", arg)
        total = total + arg
    return normalize(total)


def prim_sub(first: Any, *rest: Any) -> Any:
    if len(rest) == 1:
        b = rest[0]
        if type(first) is int and type(b) is int:
            return first - b
    check_number("-", first)
    if not rest:
        return normalize(-first)
    total = first
    for arg in rest:
        check_number("-", arg)
        total = total - arg
    return normalize(total)


def prim_mul(*args: Any) -> Any:
    if len(args) == 2:
        a, b = args
        if type(a) is int and type(b) is int:
            return a * b
    total: Any = 1
    for arg in args:
        check_number("*", arg)
        total = total * arg
    return normalize(total)


def prim_div(first: Any, *rest: Any) -> Any:
    check_number("/", first)
    values = (first,) + rest if rest else (1, first)
    total: Any = values[0]
    for arg in values[1:]:
        check_number("/", arg)
        if arg == 0 and not isinstance(arg, float):
            raise SchemeError("/: division by zero")
        if isinstance(total, float) or isinstance(arg, float):
            total = total / arg
        else:
            total = Fraction(total) / Fraction(arg)
    return normalize(total)


def _comparison(name: str, op: Callable[[Any, Any], bool]) -> Callable[..., bool]:
    def compare(first: Any, *rest: Any) -> bool:
        if len(rest) == 1:
            b = rest[0]
            if type(first) is int and type(b) is int:
                return op(first, b)
        check_number(name, first)
        previous = first
        for arg in rest:
            check_number(name, arg)
            if not op(previous, arg):
                return False
            previous = arg
        return True

    compare.__name__ = f"prim_{name}"
    return compare


def prim_quotient(a: Any, b: Any) -> int:
    _check_integer("quotient", a)
    _check_integer("quotient", b)
    if b == 0:
        raise SchemeError("quotient: division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def prim_remainder(a: Any, b: Any) -> int:
    _check_integer("remainder", a)
    _check_integer("remainder", b)
    if b == 0:
        raise SchemeError("remainder: division by zero")
    return a - b * prim_quotient(a, b)


def prim_modulo(a: Any, b: Any) -> int:
    _check_integer("modulo", a)
    _check_integer("modulo", b)
    if b == 0:
        raise SchemeError("modulo: division by zero")
    return a % b


def _check_integer(name: str, value: Any) -> None:
    if isinstance(value, bool) or not isinstance(value, int):
        raise WrongTypeError(f"{name}: not an integer: {value!r}")


def prim_abs(x: Any) -> Any:
    check_number("abs", x)
    return normalize(abs(x))


def prim_min(first: Any, *rest: Any) -> Any:
    check_number("min", first)
    result = first
    inexact = isinstance(first, float)
    for arg in rest:
        check_number("min", arg)
        inexact = inexact or isinstance(arg, float)
        if arg < result:
            result = arg
    return float(result) if inexact else result


def prim_max(first: Any, *rest: Any) -> Any:
    check_number("max", first)
    result = first
    inexact = isinstance(first, float)
    for arg in rest:
        check_number("max", arg)
        inexact = inexact or isinstance(arg, float)
        if arg > result:
            result = arg
    return float(result) if inexact else result


def prim_gcd(*args: Any) -> int:
    result = 0
    for arg in args:
        _check_integer("gcd", arg)
        result = math.gcd(result, arg)
    return result


def prim_lcm(*args: Any) -> int:
    result = 1
    for arg in args:
        _check_integer("lcm", arg)
        if arg == 0:
            return 0
        result = abs(result * arg) // math.gcd(result, arg)
    return result


def prim_expt(base: Any, power: Any) -> Any:
    check_number("expt", base)
    check_number("expt", power)
    if isinstance(power, int) and not isinstance(base, float):
        if power >= 0:
            return normalize(base**power)
        if base == 0:
            raise SchemeError("expt: 0 raised to a negative power")
        return normalize(Fraction(base) ** power)
    return float(base) ** float(power)


def prim_sqrt(x: Any) -> Any:
    check_number("sqrt", x)
    if isinstance(x, int) and x >= 0:
        root = math.isqrt(x)
        if root * root == x:
            return root
    if x < 0:
        raise SchemeError(f"sqrt: negative argument {x}")
    return math.sqrt(x)


def prim_floor(x: Any) -> Any:
    check_number("floor", x)
    return float(math.floor(x)) if isinstance(x, float) else math.floor(x)


def prim_ceiling(x: Any) -> Any:
    check_number("ceiling", x)
    return float(math.ceil(x)) if isinstance(x, float) else math.ceil(x)


def prim_truncate(x: Any) -> Any:
    check_number("truncate", x)
    return float(math.trunc(x)) if isinstance(x, float) else math.trunc(x)


def prim_round(x: Any) -> Any:
    check_number("round", x)
    if isinstance(x, float):
        return float(round(x))
    if isinstance(x, Fraction):
        # Banker's rounding, exact.
        floor = x.numerator // x.denominator
        diff = x - floor
        if diff > Fraction(1, 2) or (diff == Fraction(1, 2) and floor % 2 != 0):
            return floor + 1
        return floor
    return x


def prim_exact_to_inexact(x: Any) -> float:
    check_number("exact->inexact", x)
    return float(x)


def prim_inexact_to_exact(x: Any) -> Any:
    check_number("inexact->exact", x)
    if isinstance(x, float):
        return normalize(Fraction(x).limit_denominator(10**12))
    return x


def prim_number_to_string(x: Any) -> str:
    check_number("number->string", x)
    from repro.datum import scheme_repr

    return scheme_repr(x)


def prim_string_to_number(s: Any) -> Any:
    if not isinstance(s, str):
        raise WrongTypeError(f"string->number: not a string: {s!r}")
    from repro.reader.lexer import _parse_number

    value = _parse_number(s)
    return value if value is not None else False


def prim_is_zero(x: Any) -> bool:
    check_number("zero?", x)
    return x == 0


def prim_is_positive(x: Any) -> bool:
    check_number("positive?", x)
    return x > 0


def prim_is_negative(x: Any) -> bool:
    check_number("negative?", x)
    return x < 0


def prim_is_odd(x: Any) -> bool:
    _check_integer("odd?", x)
    return x % 2 == 1


def prim_is_even(x: Any) -> bool:
    _check_integer("even?", x)
    return x % 2 == 0


def prim_add1(x: Any) -> Any:
    check_number("add1", x)
    return normalize(x + 1)


def prim_sub1(x: Any) -> Any:
    check_number("sub1", x)
    return normalize(x - 1)


#: name -> (fn, min-arity, max-arity or None)
NUMERIC_PRIMITIVES: dict[str, tuple[Callable[..., Any], int, int | None]] = {
    "+": (prim_add, 0, None),
    "-": (prim_sub, 1, None),
    "*": (prim_mul, 0, None),
    "/": (prim_div, 1, None),
    "=": (_comparison("=", lambda a, b: a == b), 1, None),
    "<": (_comparison("<", lambda a, b: a < b), 1, None),
    ">": (_comparison(">", lambda a, b: a > b), 1, None),
    "<=": (_comparison("<=", lambda a, b: a <= b), 1, None),
    ">=": (_comparison(">=", lambda a, b: a >= b), 1, None),
    "quotient": (prim_quotient, 2, 2),
    "remainder": (prim_remainder, 2, 2),
    "modulo": (prim_modulo, 2, 2),
    "abs": (prim_abs, 1, 1),
    "min": (prim_min, 1, None),
    "max": (prim_max, 1, None),
    "gcd": (prim_gcd, 0, None),
    "lcm": (prim_lcm, 0, None),
    "expt": (prim_expt, 2, 2),
    "sqrt": (prim_sqrt, 1, 1),
    "floor": (prim_floor, 1, 1),
    "ceiling": (prim_ceiling, 1, 1),
    "truncate": (prim_truncate, 1, 1),
    "round": (prim_round, 1, 1),
    "exact->inexact": (prim_exact_to_inexact, 1, 1),
    "inexact->exact": (prim_inexact_to_exact, 1, 1),
    "number->string": (prim_number_to_string, 1, 1),
    "string->number": (prim_string_to_number, 1, 1),
    "zero?": (prim_is_zero, 1, 1),
    "positive?": (prim_is_positive, 1, 1),
    "negative?": (prim_is_negative, 1, 1),
    "odd?": (prim_is_odd, 1, 1),
    "even?": (prim_is_even, 1, 1),
    "add1": (prim_add1, 1, 1),
    "sub1": (prim_sub1, 1, 1),
    "1+": (prim_add1, 1, 1),
    "1-": (prim_sub1, 1, 1),
}
