"""The primitive procedure library.

:func:`install_primitives` populates a :class:`GlobalEnv` with every
primitive the paper's programs (and a reasonable R3RS subset) need.
Output primitives write to the machine-independent
:class:`OutputBuffer` so tests can capture ``display`` output.
"""

from repro.primitives.registry import install_primitives, OutputBuffer

__all__ = ["install_primitives", "OutputBuffer"]
