"""Vector primitives."""

from __future__ import annotations

from typing import Any, Callable

from repro.datum import MVector, UNSPECIFIED
from repro.errors import WrongTypeError

__all__ = ["VECTOR_PRIMITIVES"]


def _check_vector(name: str, v: Any) -> MVector:
    if not isinstance(v, MVector):
        raise WrongTypeError(f"{name}: not a vector: {v!r}")
    return v


def prim_make_vector(length: Any, *rest: Any) -> MVector:
    if isinstance(length, bool) or not isinstance(length, int):
        raise WrongTypeError(f"make-vector: bad length {length!r}")
    fill = rest[0] if rest else UNSPECIFIED
    return MVector.filled(length, fill)


def prim_vector(*items: Any) -> MVector:
    return MVector(items)


def prim_vector_length(v: Any) -> int:
    return len(_check_vector("vector-length", v))


def prim_vector_ref(v: Any, k: Any) -> Any:
    return _check_vector("vector-ref", v).ref(k)


def prim_vector_set(v: Any, k: Any, value: Any) -> Any:
    _check_vector("vector-set!", v).set(k, value)
    return UNSPECIFIED


def prim_vector_fill(v: Any, value: Any) -> Any:
    vec = _check_vector("vector-fill!", v)
    for index in range(len(vec)):
        vec.items[index] = value
    return UNSPECIFIED


def prim_vector_copy(v: Any) -> MVector:
    return MVector(list(_check_vector("vector-copy", v).items))


VECTOR_PRIMITIVES: dict[str, tuple[Callable[..., Any], int, int | None]] = {
    "make-vector": (prim_make_vector, 1, 2),
    "vector": (prim_vector, 0, None),
    "vector-length": (prim_vector_length, 1, 1),
    "vector-ref": (prim_vector_ref, 2, 2),
    "vector-set!": (prim_vector_set, 3, 3),
    "vector-fill!": (prim_vector_fill, 2, 2),
    "vector-copy": (prim_vector_copy, 1, 1),
}
