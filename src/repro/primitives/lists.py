"""Pair and list primitives."""

from __future__ import annotations

from typing import Any, Callable

from repro.datum import (
    NIL,
    Pair,
    cons,
    from_pylist,
    is_eq,
    is_eqv,
    is_equal,
    list_length,
    scheme_append,
    scheme_reverse,
    to_pylist,
)
from repro.errors import SchemeError, WrongTypeError

__all__ = ["LIST_PRIMITIVES"]


def _check_pair(name: str, x: Any) -> Pair:
    if not isinstance(x, Pair):
        raise WrongTypeError(f"{name}: not a pair: {x!r}")
    return x


def prim_cons(a: Any, b: Any) -> Pair:
    return cons(a, b)


def prim_car(p: Any) -> Any:
    return _check_pair("car", p).car


def prim_cdr(p: Any) -> Any:
    return _check_pair("cdr", p).cdr


def _cxr(path: str) -> Callable[[Any], Any]:
    """Build ``caar``..``cddddr`` accessors; path applies right-to-left."""

    name = "c" + path + "r"

    def access(p: Any) -> Any:
        value = p
        for direction in reversed(path):
            pair = _check_pair(name, value)
            value = pair.car if direction == "a" else pair.cdr
        return value

    access.__name__ = f"prim_{name}"
    return access


def prim_set_car(p: Any, v: Any) -> Any:
    _check_pair("set-car!", p).car = v
    from repro.datum import UNSPECIFIED

    return UNSPECIFIED


def prim_set_cdr(p: Any, v: Any) -> Any:
    _check_pair("set-cdr!", p).cdr = v
    from repro.datum import UNSPECIFIED

    return UNSPECIFIED


def prim_list(*args: Any) -> Any:
    return from_pylist(list(args))


def prim_length(ls: Any) -> int:
    return list_length(ls)


def prim_append(*lists: Any) -> Any:
    return scheme_append(*lists)


def prim_reverse(ls: Any) -> Any:
    return scheme_reverse(ls)


def prim_list_tail(ls: Any, k: Any) -> Any:
    node = ls
    for _ in range(k):
        node = _check_pair("list-tail", node).cdr
    return node


def prim_list_ref(ls: Any, k: Any) -> Any:
    return _check_pair("list-ref", prim_list_tail(ls, k)).car


def _member(name: str, eq: Callable[[Any, Any], bool]) -> Callable[[Any, Any], Any]:
    def member(x: Any, ls: Any) -> Any:
        node = ls
        while isinstance(node, Pair):
            if eq(node.car, x):
                return node
            node = node.cdr
        if node is not NIL:
            raise WrongTypeError(f"{name}: improper list")
        return False

    member.__name__ = f"prim_{name}"
    return member


def _assoc(name: str, eq: Callable[[Any, Any], bool]) -> Callable[[Any, Any], Any]:
    def assoc(x: Any, ls: Any) -> Any:
        node = ls
        while isinstance(node, Pair):
            entry = node.car
            if isinstance(entry, Pair) and eq(entry.car, x):
                return entry
            node = node.cdr
        if node is not NIL:
            raise WrongTypeError(f"{name}: improper list")
        return False

    assoc.__name__ = f"prim_{name}"
    return assoc


def prim_list_to_vector(ls: Any) -> Any:
    from repro.datum import MVector

    return MVector(to_pylist(ls))


def prim_vector_to_list(v: Any) -> Any:
    from repro.datum import MVector

    if not isinstance(v, MVector):
        raise WrongTypeError(f"vector->list: not a vector: {v!r}")
    return from_pylist(v.items)


def prim_last_pair(ls: Any) -> Any:
    pair = _check_pair("last-pair", ls)
    while isinstance(pair.cdr, Pair):
        pair = pair.cdr
    return pair


def prim_iota(n: Any, *rest: Any) -> Any:
    """``(iota n [start [step]])`` — handy for benchmarks."""
    if isinstance(n, bool) or not isinstance(n, int) or n < 0:
        raise SchemeError(f"iota: bad count {n!r}")
    start = rest[0] if rest else 0
    step = rest[1] if len(rest) > 1 else 1
    return from_pylist([start + i * step for i in range(n)])


LIST_PRIMITIVES: dict[str, tuple[Callable[..., Any], int, int | None]] = {
    "cons": (prim_cons, 2, 2),
    "car": (prim_car, 1, 1),
    "cdr": (prim_cdr, 1, 1),
    "set-car!": (prim_set_car, 2, 2),
    "set-cdr!": (prim_set_cdr, 2, 2),
    "list": (prim_list, 0, None),
    "length": (prim_length, 1, 1),
    "append": (prim_append, 0, None),
    "reverse": (prim_reverse, 1, 1),
    "list-tail": (prim_list_tail, 2, 2),
    "list-ref": (prim_list_ref, 2, 2),
    "memq": (_member("memq", is_eq), 2, 2),
    "memv": (_member("memv", is_eqv), 2, 2),
    "member": (_member("member", is_equal), 2, 2),
    "assq": (_assoc("assq", is_eq), 2, 2),
    "assv": (_assoc("assv", is_eqv), 2, 2),
    "assoc": (_assoc("assoc", is_equal), 2, 2),
    "list->vector": (prim_list_to_vector, 1, 1),
    "vector->list": (prim_vector_to_list, 1, 1),
    "last-pair": (prim_last_pair, 1, 1),
    "iota": (prim_iota, 1, 3),
}

for _path in ("aa", "ad", "da", "dd", "aaa", "aad", "ada", "add", "daa", "dad", "dda", "ddd"):
    LIST_PRIMITIVES["c" + _path + "r"] = (_cxr(_path), 1, 1)
