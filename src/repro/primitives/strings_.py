"""String, character and symbol primitives.

Strings are immutable Python ``str`` values (the paper's programs never
mutate strings, so ``string-set!`` is intentionally absent — a
:class:`SchemeError` names the restriction if something asks for it by
building one).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.datum import Char, Symbol, from_pylist, intern, to_pylist
from repro.errors import SchemeError, WrongTypeError

__all__ = ["STRING_PRIMITIVES"]


def _check_string(name: str, s: Any) -> str:
    if not isinstance(s, str):
        raise WrongTypeError(f"{name}: not a string: {s!r}")
    return s


def _check_char(name: str, c: Any) -> Char:
    if not isinstance(c, Char):
        raise WrongTypeError(f"{name}: not a character: {c!r}")
    return c


def prim_string_length(s: Any) -> int:
    return len(_check_string("string-length", s))


def prim_string_ref(s: Any, k: Any) -> Char:
    text = _check_string("string-ref", s)
    if not 0 <= k < len(text):
        raise SchemeError(f"string-ref: index {k} out of range")
    return Char(text[k])


def prim_substring(s: Any, start: Any, end: Any) -> str:
    text = _check_string("substring", s)
    if not (0 <= start <= end <= len(text)):
        raise SchemeError(f"substring: bad range [{start}, {end}) for length {len(text)}")
    return text[start:end]


def prim_string_append(*parts: Any) -> str:
    return "".join(_check_string("string-append", p) for p in parts)


def prim_string_to_symbol(s: Any) -> Symbol:
    return intern(_check_string("string->symbol", s))


def prim_symbol_to_string(sym: Any) -> str:
    if not isinstance(sym, Symbol):
        raise WrongTypeError(f"symbol->string: not a symbol: {sym!r}")
    return sym.name


def prim_string_to_list(s: Any) -> Any:
    return from_pylist([Char(c) for c in _check_string("string->list", s)])


def prim_list_to_string(ls: Any) -> str:
    chars = to_pylist(ls)
    return "".join(_check_char("list->string", c).value for c in chars)


def prim_string(*chars: Any) -> str:
    return "".join(_check_char("string", c).value for c in chars)


def _string_compare(name: str, op: Callable[[str, str], bool]) -> Callable[..., bool]:
    def compare(first: Any, *rest: Any) -> bool:
        previous = _check_string(name, first)
        for s in rest:
            current = _check_string(name, s)
            if not op(previous, current):
                return False
            previous = current
        return True

    compare.__name__ = f"prim_{name}"
    return compare


def _char_compare(name: str, op: Callable[[str, str], bool]) -> Callable[..., bool]:
    def compare(first: Any, *rest: Any) -> bool:
        previous = _check_char(name, first).value
        for c in rest:
            current = _check_char(name, c).value
            if not op(previous, current):
                return False
            previous = current
        return True

    compare.__name__ = f"prim_{name}"
    return compare


def prim_char_to_integer(c: Any) -> int:
    return ord(_check_char("char->integer", c).value)


def prim_integer_to_char(n: Any) -> Char:
    if isinstance(n, bool) or not isinstance(n, int):
        raise WrongTypeError(f"integer->char: not an integer: {n!r}")
    try:
        return Char(chr(n))
    except (ValueError, OverflowError):
        raise SchemeError(f"integer->char: bad code point {n}")


def prim_char_upcase(c: Any) -> Char:
    return Char(_check_char("char-upcase", c).value.upper())


def prim_char_downcase(c: Any) -> Char:
    return Char(_check_char("char-downcase", c).value.lower())


def prim_char_alphabetic(c: Any) -> bool:
    return _check_char("char-alphabetic?", c).value.isalpha()


def prim_char_numeric(c: Any) -> bool:
    return _check_char("char-numeric?", c).value.isdigit()


def prim_char_whitespace(c: Any) -> bool:
    return _check_char("char-whitespace?", c).value.isspace()


def prim_gensym(*args: Any) -> Symbol:
    from repro.datum import gensym

    prefix = args[0] if args else "g"
    if isinstance(prefix, Symbol):
        prefix = prefix.name
    if not isinstance(prefix, str):
        raise WrongTypeError(f"gensym: bad prefix {prefix!r}")
    return gensym(prefix)


STRING_PRIMITIVES: dict[str, tuple[Callable[..., Any], int, int | None]] = {
    "string-length": (prim_string_length, 1, 1),
    "string-ref": (prim_string_ref, 2, 2),
    "substring": (prim_substring, 3, 3),
    "string-append": (prim_string_append, 0, None),
    "string->symbol": (prim_string_to_symbol, 1, 1),
    "symbol->string": (prim_symbol_to_string, 1, 1),
    "string->list": (prim_string_to_list, 1, 1),
    "list->string": (prim_list_to_string, 1, 1),
    "string": (prim_string, 0, None),
    "string=?": (_string_compare("string=?", lambda a, b: a == b), 1, None),
    "string<?": (_string_compare("string<?", lambda a, b: a < b), 1, None),
    "string>?": (_string_compare("string>?", lambda a, b: a > b), 1, None),
    "string<=?": (_string_compare("string<=?", lambda a, b: a <= b), 1, None),
    "string>=?": (_string_compare("string>=?", lambda a, b: a >= b), 1, None),
    "char=?": (_char_compare("char=?", lambda a, b: a == b), 1, None),
    "char<?": (_char_compare("char<?", lambda a, b: a < b), 1, None),
    "char>?": (_char_compare("char>?", lambda a, b: a > b), 1, None),
    "char<=?": (_char_compare("char<=?", lambda a, b: a <= b), 1, None),
    "char>=?": (_char_compare("char>=?", lambda a, b: a >= b), 1, None),
    "char->integer": (prim_char_to_integer, 1, 1),
    "integer->char": (prim_integer_to_char, 1, 1),
    "char-upcase": (prim_char_upcase, 1, 1),
    "char-downcase": (prim_char_downcase, 1, 1),
    "char-alphabetic?": (prim_char_alphabetic, 1, 1),
    "char-numeric?": (prim_char_numeric, 1, 1),
    "char-whitespace?": (prim_char_whitespace, 1, 1),
    "gensym": (prim_gensym, 0, 1),
}
