"""Type predicates and the equivalence procedures."""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Callable

from repro.datum import (
    NIL,
    Char,
    MVector,
    Pair,
    Symbol,
    is_eq,
    is_eqv,
    is_equal,
    is_list,
)
from repro.machine.values import Closure, ControlPrimitive, Primitive

__all__ = ["PREDICATE_PRIMITIVES"]


def prim_is_pair(x: Any) -> bool:
    return isinstance(x, Pair)


def prim_is_null(x: Any) -> bool:
    return x is NIL


def prim_is_list(x: Any) -> bool:
    return is_list(x)


def prim_is_symbol(x: Any) -> bool:
    return isinstance(x, Symbol)


def prim_is_number(x: Any) -> bool:
    return not isinstance(x, bool) and isinstance(x, (int, float, Fraction))


def prim_is_integer(x: Any) -> bool:
    if isinstance(x, bool):
        return False
    if isinstance(x, int):
        return True
    if isinstance(x, float):
        return x == int(x) if x == x and abs(x) != float("inf") else False
    return False


def prim_is_rational(x: Any) -> bool:
    return not isinstance(x, bool) and isinstance(x, (int, Fraction))


def prim_is_real(x: Any) -> bool:
    return prim_is_number(x)


def prim_is_exact(x: Any) -> bool:
    return not isinstance(x, bool) and isinstance(x, (int, Fraction))


def prim_is_inexact(x: Any) -> bool:
    return isinstance(x, float)


def prim_is_string(x: Any) -> bool:
    return isinstance(x, str)


def prim_is_char(x: Any) -> bool:
    return isinstance(x, Char)


def prim_is_vector(x: Any) -> bool:
    return isinstance(x, MVector)


def prim_is_boolean(x: Any) -> bool:
    return isinstance(x, bool)


def prim_is_procedure(x: Any) -> bool:
    return isinstance(x, (Closure, Primitive, ControlPrimitive)) or hasattr(
        x, "machine_apply"
    )


def prim_not(x: Any) -> bool:
    return x is False


PREDICATE_PRIMITIVES: dict[str, tuple[Callable[..., Any], int, int | None]] = {
    "pair?": (prim_is_pair, 1, 1),
    "null?": (prim_is_null, 1, 1),
    "list?": (prim_is_list, 1, 1),
    "symbol?": (prim_is_symbol, 1, 1),
    "number?": (prim_is_number, 1, 1),
    "integer?": (prim_is_integer, 1, 1),
    "rational?": (prim_is_rational, 1, 1),
    "real?": (prim_is_real, 1, 1),
    "exact?": (prim_is_exact, 1, 1),
    "inexact?": (prim_is_inexact, 1, 1),
    "string?": (prim_is_string, 1, 1),
    "char?": (prim_is_char, 1, 1),
    "vector?": (prim_is_vector, 1, 1),
    "boolean?": (prim_is_boolean, 1, 1),
    "procedure?": (prim_is_procedure, 1, 1),
    "not": (prim_not, 1, 1),
    "eq?": (is_eq, 2, 2),
    "eqv?": (is_eqv, 2, 2),
    "equal?": (is_equal, 2, 2),
}
