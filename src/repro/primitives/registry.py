"""Primitive registration and output capture.

:class:`OutputBuffer` stands in for the current output port; the API
layer exposes its contents so tests and examples can assert on
``display`` output without touching real stdout (unless asked to echo).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.datum import (
    UNSPECIFIED,
    scheme_display,
    scheme_repr,
    to_pylist,
)
from repro.errors import SchemeError, WrongTypeError
from repro.machine.environment import GlobalEnv
from repro.machine.task import APPLY, Task
from repro.machine.values import ControlPrimitive, Primitive

from repro.primitives.lists import LIST_PRIMITIVES
from repro.primitives.numeric import NUMERIC_PRIMITIVES
from repro.primitives.predicates import PREDICATE_PRIMITIVES
from repro.primitives.strings_ import STRING_PRIMITIVES
from repro.primitives.vectors_ import VECTOR_PRIMITIVES

__all__ = ["OutputBuffer", "install_primitives"]


class OutputBuffer:
    """Captures ``display``/``write``/``newline`` output."""

    def __init__(self, echo: bool = False):
        self.parts: list[str] = []
        self.echo = echo

    def write(self, text: str) -> None:
        self.parts.append(text)
        if self.echo:
            print(text, end="")

    def getvalue(self) -> str:
        return "".join(self.parts)

    def clear(self) -> None:
        self.parts.clear()


def _io_primitives(buffer: OutputBuffer) -> dict[str, tuple[Callable[..., Any], int, int | None]]:
    def prim_display(x: Any) -> Any:
        buffer.write(scheme_display(x))
        return UNSPECIFIED

    def prim_write(x: Any) -> Any:
        buffer.write(scheme_repr(x))
        return UNSPECIFIED

    def prim_newline() -> Any:
        buffer.write("\n")
        return UNSPECIFIED

    return {
        "display": (prim_display, 1, 1),
        "write": (prim_write, 1, 1),
        "newline": (prim_newline, 0, 0),
    }


def prim_error(message: Any, *irritants: Any) -> Any:
    text = message if isinstance(message, str) else scheme_display(message)
    if irritants:
        text = text + " " + " ".join(scheme_repr(x) for x in irritants)
    raise SchemeError(text, irritants)


def prim_void(*_args: Any) -> Any:
    return UNSPECIFIED


def _apply_primitive(machine: Any, task: Task, args: list[Any]) -> None:
    """``(apply f a b ... last-list)``: the machine-level apply."""
    if len(args) < 2:
        raise WrongTypeError("apply: expected a procedure and an argument list")
    fn = args[0]
    spread = list(args[1:-1]) + to_pylist(args[-1])
    task.tag = APPLY
    task.payload = (fn, spread)


def install_primitives(
    globals_: GlobalEnv, buffer: OutputBuffer | None = None
) -> OutputBuffer:
    """Install every primitive into ``globals_``.

    Returns the output buffer in use (a fresh one if none given).
    Control operators are installed separately by
    :func:`repro.control.register_control_primitives`.
    """
    from repro.datum import intern

    buffer = buffer if buffer is not None else OutputBuffer()
    tables = [
        NUMERIC_PRIMITIVES,
        LIST_PRIMITIVES,
        PREDICATE_PRIMITIVES,
        STRING_PRIMITIVES,
        VECTOR_PRIMITIVES,
        _io_primitives(buffer),
        {
            "error": (prim_error, 1, None),
            "void": (prim_void, 0, None),
        },
    ]
    for table in tables:
        for name, (fn, low, high) in table.items():
            globals_.define(intern(name), Primitive(name, fn, low, high))
    globals_.define(intern("apply"), ControlPrimitive("apply", _apply_primitive, 2, None))
    return buffer
