"""Continuation frames.

A *segment* is an immutable singly linked chain of frames: each frame
holds all the information needed to continue when a value arrives, plus
``next`` — the frame below it (``None`` means the segment bottom, where
the task's link takes over).

Frames are **never mutated after creation**.  This is the property the
whole capture machinery relies on: a captured segment is just a pointer
to its top frame, shared freely between the live tree and any number of
process continuations (Section 7's "linear in control points" claim).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.datum import Symbol
    from repro.ir import Node
    from repro.machine.environment import Environment

__all__ = [
    "Frame",
    "AppFrame",
    "IfFrame",
    "SeqFrame",
    "SetFrame",
    "LocalSetFrame",
    "GlobalSetFrame",
    "DefineFrame",
    "frame_chain_length",
]


class Frame:
    """Base class for frames; only here for isinstance checks."""

    __slots__ = ("next",)

    next: "Frame | None"


class AppFrame(Frame):
    """An application in progress.

    ``done`` holds the values computed so far (operator first);
    ``pending`` the argument expressions still to evaluate.  When a
    value arrives it is appended to ``done`` in a *new* frame; when
    ``pending`` is empty the application fires.
    """

    __slots__ = ("done", "pending", "env")

    def __init__(
        self,
        done: tuple[Any, ...],
        pending: tuple["Node", ...],
        env: "Environment",
        next_: "Frame | None",
    ):
        self.done = done
        self.pending = pending
        self.env = env
        self.next = next_

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"#<app-frame done={len(self.done)} pending={len(self.pending)}>"


class IfFrame(Frame):
    """Waiting for the test of an ``if``."""

    __slots__ = ("then", "els", "env")

    def __init__(self, then: "Node", els: "Node", env: "Environment", next_: "Frame | None"):
        self.then = then
        self.els = els
        self.env = env
        self.next = next_

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "#<if-frame>"


class SeqFrame(Frame):
    """Discard the incoming value, continue with the remaining
    expressions of a ``begin``."""

    __slots__ = ("remaining", "env")

    def __init__(self, remaining: tuple["Node", ...], env: "Environment", next_: "Frame | None"):
        self.remaining = remaining
        self.env = env
        self.next = next_

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"#<seq-frame remaining={len(self.remaining)}>"


class SetFrame(Frame):
    """Assign the incoming value to a lexical/global binding."""

    __slots__ = ("name", "env")

    def __init__(self, name: "Symbol", env: "Environment", next_: "Frame | None"):
        self.name = name
        self.env = env
        self.next = next_

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"#<set!-frame {self.name.name}>"


class LocalSetFrame(Frame):
    """Assign the incoming value to the slot at ``(depth, index)``
    relative to ``env`` (the environment of the resolved ``set!``)."""

    __slots__ = ("depth", "index", "env")

    def __init__(self, depth: int, index: int, env: "Environment", next_: "Frame | None"):
        self.depth = depth
        self.index = index
        self.env = env
        self.next = next_

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"#<set!-frame @{self.depth}.{self.index}>"


class GlobalSetFrame(Frame):
    """Assign the incoming value through an interned global cell."""

    __slots__ = ("cell",)

    def __init__(self, cell: Any, next_: "Frame | None"):
        self.cell = cell
        self.next = next_

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"#<set!-frame {self.cell.name.name}@global>"


class DefineFrame(Frame):
    """Bind the incoming value at top level."""

    __slots__ = ("name", "env")

    def __init__(self, name: "Symbol", env: "Environment", next_: "Frame | None"):
        self.name = name
        self.env = env
        self.next = next_

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"#<define-frame {self.name.name}>"


def frame_chain_length(frame: Frame | None) -> int:
    """Length of a segment (test/bench helper)."""
    n = 0
    while frame is not None:
        n += 1
        frame = frame.next
    return n
