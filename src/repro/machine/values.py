"""Applicable machine values: closures and primitives.

The control values (controllers, process continuations, traditional
continuations, functional continuations) live in :mod:`repro.control`;
this module holds the two ordinary procedure kinds plus the shared
arity-checking helper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.datum import Symbol
from repro.errors import ArityError

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir import Node
    from repro.machine.environment import Environment
    from repro.machine.scheduler import Machine
    from repro.machine.task import Task

__all__ = [
    "Closure",
    "MachineApplicable",
    "Primitive",
    "ControlPrimitive",
    "check_arity",
]


def check_arity(name: str, count: int, low: int, high: int | None) -> None:
    """Raise :class:`ArityError` unless ``low <= count <= high``
    (``high is None`` means unbounded)."""
    if count < low or (high is not None and count > high):
        if high == low:
            expect = str(low)
        elif high is None:
            expect = f"at least {low}"
        else:
            expect = f"{low} to {high}"
        raise ArityError(f"{name}: expected {expect} argument(s), got {count}")


class MachineApplicable:
    """Base class for values applied by machine surgery.

    Continuations and process controllers (:mod:`repro.control`) apply
    by rewriting the process tree rather than by running a body:
    ``machine_apply(machine, task, args)``.  Deriving from this class
    lets ``apply_procedure`` dispatch them with one ``isinstance``
    check instead of a per-call ``getattr`` probe.  Implementations
    follow the register/spill contract (docs/IMPLEMENTATION.md): the
    caller has spilled the task's registers, and the running task's
    control registers are dead — ``machine_apply`` must set them, kill
    the task, or suspend it with the registers set on wake.
    """

    __slots__ = ()


class Closure:
    """A user procedure: formals + body + captured environment.

    ``body`` is whatever the machine's engine evaluates: an IR node
    (dict and resolved engines) or a compiled code thunk produced by
    :mod:`repro.ir.compile` (compiled engine — the body is compiled
    once per ``lambda`` node and shared by every closure made from it).
    Application just schedules ``(EVAL, body)`` either way, so closures
    cross freely between machines of different engines.

    ``nslots`` is the frame size of one application — set by the
    resolver (via ``Lambda.nslots``) when the body is resolved (or
    compiled) IR, in which case ``apply_procedure`` allocates a flat
    :class:`~repro.machine.environment.SlotRib` of exactly that many
    slots.  ``None`` means an unresolved body: applications build the
    classic per-call dict rib.

    ``low``/``high`` are the arity window, precomputed at construction
    so the apply fast path can bounds-check with two int compares and
    only falls into :func:`check_arity` to raise (``high is None``
    means a rest parameter accepts any surplus).

    ``effects`` carries the source lambda's capture/effect facts (an
    :class:`repro.analysis.effects.EffectInfo`, or ``None`` when the
    analysis phase did not run) so the analyzer can reason about calls
    through globals bound to already-built closures.
    """

    __slots__ = ("params", "rest", "body", "env", "name", "nslots", "low", "high", "effects")

    def __init__(
        self,
        params: tuple[Symbol, ...],
        rest: Symbol | None,
        body: "Node",
        env: "Environment",
        name: str | None = None,
        nslots: int | None = None,
        effects: Any = None,
    ):
        self.params = params
        self.rest = rest
        self.body = body
        self.env = env
        self.name = name
        self.nslots = nslots
        self.effects = effects
        self.low = len(params)
        self.high = None if rest is not None else self.low

    def check_arity(self, count: int) -> None:
        check_arity(self.name or "#<procedure>", count, self.low, self.high)

    def __repr__(self) -> str:
        label = self.name or "anonymous"
        return f"#<procedure {label}>"


class Primitive:
    """A pure primitive: ``fn(*args) -> value``.

    The machine applies it directly and delivers the Python return
    value as the result.
    """

    __slots__ = ("name", "fn", "low", "high")

    def __init__(self, name: str, fn: Callable[..., Any], low: int, high: int | None):
        self.name = name
        self.fn = fn
        self.low = low
        self.high = high

    def apply(self, args: list[Any]) -> Any:
        check_arity(self.name, len(args), self.low, self.high)
        return self.fn(*args)

    def __repr__(self) -> str:
        return f"#<primitive {self.name}>"


class ControlPrimitive:
    """A primitive that manipulates the machine itself.

    ``fn(machine, task, args)`` performs arbitrary surgery on the
    process tree (this is how ``spawn``, ``call/cc``, ``F`` and
    ``call-with-prompt`` are wired in) and is responsible for leaving
    ``task`` — or its successors — in a consistent state.
    """

    __slots__ = ("name", "fn", "low", "high")

    def __init__(
        self,
        name: str,
        fn: Callable[["Machine", "Task", list[Any]], None],
        low: int,
        high: int | None,
    ):
        self.name = name
        self.fn = fn
        self.low = low
        self.high = high

    def apply(self, machine: "Machine", task: "Task", args: list[Any]) -> None:
        check_arity(self.name, len(args), self.low, self.high)
        self.fn(machine, task, args)

    def __repr__(self) -> str:
        return f"#<primitive {self.name}>"
