"""The process-tree algebra: capture, clone, reinstate.

This module is the direct realisation of Section 7 of the paper:

* the running computation is a tree of labeled stacks (here: tasks with
  immutable frame segments, joined by :class:`LabelLink` and
  :class:`Join` control points);
* invoking a process controller **prunes** the subtree rooted at the
  nearest instance of its label and packages it into a process
  continuation (:func:`capture_subtree`, mode ``"move"``);
* invoking a process continuation **grafts** a copy of the saved
  subtree onto the current tree (:func:`reinstate`).

Every operation here touches only *control points* (labels, joins) and
leaf tasks — never the frames inside segments — so its cost is linear
in the number of control points of the continuation and independent of
the continuation's size.  ``benchmarks/bench_e9_capture_cost.py``
measures exactly this property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ControlError
from repro.machine.links import (
    TOMBSTONE,
    ForkLink,
    HaltLink,
    Join,
    Label,
    LabelLink,
)
from repro.machine.task import HOLE, VALUE, Task, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.frames import Frame
    from repro.machine.links import Link
    from repro.machine.scheduler import Machine

__all__ = [
    "parent_of",
    "child_of",
    "replace_child",
    "find_label_link",
    "collect_subtree",
    "Capture",
    "capture_subtree",
    "reinstate",
    "abandon_position",
    "count_control_points",
]


def parent_of(entity: Any) -> "Link":
    """The upward link of a tree entity."""
    if isinstance(entity, Task):
        return entity.link
    if isinstance(entity, (LabelLink, Join)):
        link = entity.cont_link
        if link is None:
            raise ControlError("entity is detached from the tree")
        return link
    raise TypeError(f"not a tree entity: {entity!r}")


def child_of(link: "Link") -> Any:
    """The entity occupying the child slot of ``link``."""
    if isinstance(link, HaltLink):
        return link.child if link.placeholder is not None else link.machine.root_entity
    if isinstance(link, LabelLink):
        return link.child
    if isinstance(link, ForkLink):
        return link.join.children[link.index]
    raise TypeError(f"not a link: {link!r}")


def replace_child(link: "Link", new: Any) -> None:
    """Install ``new`` in the child slot of ``link``."""
    if isinstance(link, HaltLink):
        if link.placeholder is not None:
            link.child = new
        else:
            link.machine.root_entity = new
    elif isinstance(link, LabelLink):
        link.child = new
    elif isinstance(link, ForkLink):
        link.join.children[link.index] = new
    else:
        raise TypeError(f"not a link: {link!r}")


def find_label_link(
    task: Task, predicate: Callable[[Label], bool]
) -> LabelLink | None:
    """Walk upward from ``task`` to the nearest :class:`LabelLink`
    whose label satisfies ``predicate``.

    This implements the paper's validity rule: a controller application
    is valid only if its root lies on the path from the application to
    the tree root, and the *nearest* (topmost) instance wins when the
    label occurs more than once.
    """
    link: Any = task.link
    while True:
        if isinstance(link, HaltLink):
            return None
        if isinstance(link, LabelLink):
            if predicate(link.label):
                return link
            link = link.cont_link
        elif isinstance(link, ForkLink):
            link = link.join.cont_link
        else:  # pragma: no cover - defensive
            raise TypeError(f"not a link: {link!r}")


def collect_subtree(root: Any) -> tuple[list[Any], list[Task]]:
    """All control points and leaf tasks of the subtree at ``root``
    (root included), via downward child pointers."""
    control_points: list[Any] = []
    tasks: list[Task] = []
    stack = [root]
    while stack:
        entity = stack.pop()
        if entity is None or entity is TOMBSTONE:
            continue
        if isinstance(entity, Task):
            tasks.append(entity)
        elif isinstance(entity, LabelLink):
            control_points.append(entity)
            stack.append(entity.child)
        elif isinstance(entity, Join):
            control_points.append(entity)
            stack.extend(entity.children)
        else:  # pragma: no cover - defensive
            raise TypeError(f"not a tree entity: {entity!r}")
    return control_points, tasks


def count_control_points(root: Any) -> int:
    """Number of labels + forks in a subtree (bench instrumentation)."""
    control_points, _ = collect_subtree(root)
    return len(control_points)


@dataclass
class Capture:
    """A packaged subtree: the representation of a process continuation.

    ``root`` is a detached :class:`LabelLink`; ``hole`` the task whose
    pending operation (the controller application) becomes the hole
    that a reinstating value fills.  The package is immutable by
    convention: :func:`reinstate` always works on a fresh clone, so one
    Capture supports any number of reinstatements.
    """

    root: LabelLink
    hole: Task

    def control_points(self) -> int:
        return count_control_points(self.root)

    def task_count(self) -> int:
        _, tasks = collect_subtree(self.root)
        return len(tasks)

    def __repr__(self) -> str:
        label = self.root.label
        return (
            f"#<capture label={label.name or label.uid} "
            f"tasks={self.task_count()} cps={self.control_points()} "
            f"hole=task-{self.hole.uid}>"
        )


def _clone_tree(
    entity: Any, new_link: "Link", task_map: dict[int, Task]
) -> Any:
    """Deep-copy the control points and tasks of a subtree.

    Frames and environments are shared (immutable / store-like
    respectively); join slots are copied so each reinstatement has
    independent join progress.  ``task_map`` records old-id → clone for
    hole tracking.
    """
    if entity is None or entity is TOMBSTONE:
        return entity
    if isinstance(entity, Task):
        clone = Task(entity.control, entity.env, entity.frames, new_link)
        clone.state = TaskState.SUSPENDED
        task_map[id(entity)] = clone
        return clone
    if isinstance(entity, LabelLink):
        clone = LabelLink(entity.label, entity.cont_frames, new_link)
        clone.child = _clone_tree(entity.child, clone, task_map)
        return clone
    if isinstance(entity, Join):
        clone = Join(len(entity.slots), entity.cont_frames, new_link)
        clone.slots = list(entity.slots)
        clone.delivered = list(entity.delivered)
        clone.remaining = entity.remaining
        for index, child in enumerate(entity.children):
            clone.children[index] = _clone_tree(
                child, ForkLink(clone, index), task_map
            )
        return clone
    raise TypeError(f"not a tree entity: {entity!r}")


def clone_capture(capture: Capture) -> Capture:
    """Clone a package exactly as :func:`reinstate` does internally —
    fresh control points and task shells, shared frames.

    Exposed for benchmarks (E9): its cost is the paper's Section 7
    bound, O(control points), independent of segment depth.
    """
    task_map: dict[int, Task] = {}
    root_clone = LabelLink(capture.root.label, None, None)  # type: ignore[arg-type]
    root_clone.child = _clone_tree(capture.root.child, root_clone, task_map)
    hole_clone = task_map.get(id(capture.hole))
    if hole_clone is None:
        raise ControlError("corrupt capture: hole not found during clone")
    return Capture(root=root_clone, hole=hole_clone)


def capture_subtree(
    machine: "Machine",
    label_link: LabelLink,
    hole_task: Task,
    mode: str = "move",
) -> Capture:
    """Package the subtree rooted at ``label_link`` with a hole at
    ``hole_task``.

    ``mode="move"`` (controllers, ``F``): the subtree is pruned from
    the live tree; all its tasks are suspended; the caller installs a
    replacement at the old position.  The hole task's pending control
    is discarded — the value passed at reinstatement takes its place.

    ``mode="copy"`` (traditional ``call/cc`` baselines): the live tree
    is left running and the package holds an immediate clone.
    """
    if mode == "move":
        _, tasks = collect_subtree(label_link)
        for task in tasks:
            task.state = TaskState.SUSPENDED
        hole_task.tag = HOLE
        hole_task.payload = None
        # Detach: the caller rewires the old position; null the upward
        # pointer so stale traversals fail fast.
        label_link.cont_frames = None
        label_link.cont_link = None
        return Capture(root=label_link, hole=hole_task)
    if mode == "copy":
        task_map: dict[int, Task] = {}
        root_clone = LabelLink(label_link.label, None, None)  # type: ignore[arg-type]
        root_clone.child = _clone_tree(label_link.child, root_clone, task_map)
        hole_clone = task_map.get(id(hole_task))
        if hole_clone is None:
            raise ControlError("hole task is not inside the captured subtree")
        hole_clone.tag = HOLE
        hole_clone.payload = None
        return Capture(root=root_clone, hole=hole_clone)
    raise ValueError(f"unknown capture mode: {mode!r}")


def reinstate(
    machine: "Machine",
    capture: Capture,
    value: Any,
    at_frames: "Frame | None",
    at_link: "Link",
    fresh_label: Label | None = None,
) -> None:
    """Graft a clone of ``capture`` onto the tree at ``(at_frames,
    at_link)`` and fill the hole with ``value``.

    The subtree **composes** with the current continuation: when the
    reinstated process eventually returns normally, its value flows
    into ``at_frames`` and onward through ``at_link``.  The root label
    is re-established, so the associated controller becomes valid again
    — unless ``fresh_label`` is given (functional continuations use an
    anonymous label so nothing can re-capture at the seam).

    Every cloned task is enqueued runnable; the hole clone resumes with
    ``value``.
    """
    task_map: dict[int, Task] = {}
    label = fresh_label if fresh_label is not None else capture.root.label
    root_clone = LabelLink(label, at_frames, at_link)
    root_clone.child = _clone_tree(capture.root.child, root_clone, task_map)
    hole_clone = task_map.get(id(capture.hole))
    if hole_clone is None:
        raise ControlError("corrupt capture: hole not found during reinstatement")
    replace_child(at_link, root_clone)
    hole_clone.tag = VALUE
    hole_clone.payload = value
    for clone in task_map.values():
        clone.state = TaskState.RUNNABLE
        machine.spawn_task(clone)


def abandon_position(machine: "Machine", task: Task) -> None:
    """Tombstone ``task``'s current slot in the tree.

    Used when an abortive (traditional) continuation rips a task out of
    its branch: the branch is left permanently incomplete, which is the
    honest rendering of Section 3's observation that traditional
    continuations "do not in general make sense" across branches.
    """
    link = task.link
    if isinstance(link, HaltLink):
        link.machine.root_entity = TOMBSTONE
    elif isinstance(link, LabelLink):
        link.child = TOMBSTONE
    elif isinstance(link, ForkLink):
        link.join.children[link.index] = TOMBSTONE
    else:  # pragma: no cover - defensive
        raise TypeError(f"not a link: {link!r}")
