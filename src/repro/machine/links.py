"""Links and control points: the interior structure of the process tree.

A task's segment bottoms out in a **link**, which says where the value
goes when the segment is exhausted:

* :class:`HaltLink` — this is the root task of the machine; the value
  is the program's answer.
* :class:`LabelLink` — a process root created by ``spawn`` (the paper's
  *labeled stack* boundary).  Returning through it removes the root.
* :class:`ForkLink` — this segment is branch *i* of a ``pcall``
  :class:`Join`; the value fills slot *i*.

``LabelLink`` and ``Join`` are the tree's interior nodes — the paper's
**control points**.  Both know their parent (``cont_frames`` +
``cont_link``: the continuation *above* them) and their children, so
subtrees can be collected downward in time linear in control points.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Union

from repro.counters import SerialCounter

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.frames import Frame
    from repro.machine.task import Task

__all__ = [
    "Label",
    "PromptLabel",
    "HaltLink",
    "LabelLink",
    "ForkLink",
    "Join",
    "Link",
    "Entity",
    "TOMBSTONE",
]

_label_ids = SerialCounter()


class Label:
    """The identity of a process root.

    Each ``spawn`` creates exactly one Label; its controller refers to
    it forever.  Several ``LabelLink`` instances may share one Label
    when a process continuation has been reinstated more than once —
    controller application then finds the *nearest* instance.
    """

    __slots__ = ("uid", "name")

    def __init__(self, name: str | None = None):
        self.uid = next(_label_ids)
        self.name = name or f"l{self.uid}"

    def __repr__(self) -> str:
        return f"#<label {self.name}>"


class PromptLabel(Label):
    """A label created by ``call-with-prompt``.

    ``F`` searches for the nearest link whose label is a
    :class:`PromptLabel` of *any* identity — this is exactly the
    paper's remark that prompts are "shadowed" because there is only
    one recognizer for all of them, whereas every ``spawn`` root gets
    its own.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(name=None)
        self.name = f"#{self.uid}"

    def __repr__(self) -> str:
        return f"#<prompt {self.name}>"


class _Tombstone:
    """Marks a child slot whose occupant abandoned its position (an
    abortive traditional continuation left the branch).  A tombstoned
    fork branch can never complete — faithfully modelling the orphaned
    branch of Section 3."""

    _instance: "_Tombstone | None" = None

    def __new__(cls) -> "_Tombstone":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "#<tombstone>"


TOMBSTONE = _Tombstone()


class HaltLink:
    """Bottom of a tree root's segment.

    With ``placeholder=None`` this is the *main* tree: the arriving
    value is the machine's answer.  With a placeholder it is the root
    of an independent **future** tree (Section 8's forest): the value
    resolves the placeholder and wakes its waiters.
    """

    __slots__ = ("machine", "placeholder", "child")

    def __init__(self, machine: Any, placeholder: Any = None):
        self.machine = machine
        self.placeholder = placeholder
        # For future trees the halt itself tracks its child; the main
        # tree's child is machine.root_entity.
        self.child: Any = None

    def __repr__(self) -> str:
        return "#<halt>" if self.placeholder is None else "#<future-halt>"


class LabelLink:
    """A process root in the tree.

    ``cont_frames``/``cont_link`` form the continuation *above* the
    root (what runs after the process returns, or after a controller
    aborts to here).  ``child`` is the entity directly below: the task
    running the process body, or a nested control point.
    """

    __slots__ = ("label", "cont_frames", "cont_link", "child")

    def __init__(
        self,
        label: Label,
        cont_frames: "Frame | None",
        cont_link: "Link | None",
        child: "Entity | _Tombstone | None" = None,
    ):
        self.label = label
        self.cont_frames = cont_frames
        self.cont_link = cont_link
        self.child = child

    def __repr__(self) -> str:
        return f"#<label-link {self.label.name}>"


class ForkLink:
    """Upward pointer from a branch segment to its join."""

    __slots__ = ("join", "index")

    def __init__(self, join: "Join", index: int):
        self.join = join
        self.index = index

    def __repr__(self) -> str:
        return f"#<fork-link branch={self.index}>"


class Join:
    """A ``pcall`` in progress.

    ``slots[i]`` receives the value of branch ``i`` (operator is branch
    0); ``children[i]`` is the live entity of branch ``i`` or ``None``
    once the branch has delivered (or :data:`TOMBSTONE` if abandoned).
    When ``remaining`` hits zero the join fires: ``slots[0]`` is applied
    to ``slots[1:]`` in the continuation above the join.
    """

    __slots__ = ("slots", "delivered", "remaining", "children", "cont_frames", "cont_link")

    def __init__(
        self,
        nbranches: int,
        cont_frames: "Frame | None",
        cont_link: "Link | None",
    ):
        self.slots: list[Any] = [None] * nbranches
        self.delivered: list[bool] = [False] * nbranches
        self.remaining = nbranches
        self.children: list["Entity | _Tombstone | None"] = [None] * nbranches
        self.cont_frames = cont_frames
        self.cont_link = cont_link

    def __repr__(self) -> str:
        return f"#<join {len(self.slots) - self.remaining}/{len(self.slots)}>"


# A link is what a task's segment bottoms out in.
Link = Union[HaltLink, LabelLink, ForkLink]

# An entity is a node of the process tree: a leaf task or a control point.
# (Task is defined in task.py; the union is documented here for readers.)
Entity = Any
