"""Lexical environments and the global table.

Environments form a parent chain of small dicts (one rib per procedure
application).  The *store* is deliberately shared, never captured:
reinstating a process continuation twice sees any side effects made in
between, exactly as in Scheme.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.datum import Symbol
from repro.errors import UnboundVariableError

__all__ = ["Environment", "GlobalEnv"]


class GlobalEnv:
    """The top-level binding table."""

    __slots__ = ("table",)

    def __init__(self) -> None:
        self.table: dict[Symbol, Any] = {}

    def lookup(self, name: Symbol) -> Any:
        try:
            return self.table[name]
        except KeyError:
            raise UnboundVariableError(name.name) from None

    def define(self, name: Symbol, value: Any) -> None:
        self.table[name] = value

    def assign(self, name: Symbol, value: Any) -> None:
        if name not in self.table:
            raise UnboundVariableError(name.name)
        self.table[name] = value

    def __contains__(self, name: Symbol) -> bool:
        return name in self.table

    def __iter__(self) -> Iterator[Symbol]:
        return iter(self.table)


class Environment:
    """One lexical rib: ``names -> boxes`` plus a parent pointer.

    Bindings are stored directly in the dict; ``set!`` mutates in
    place.  Closures capture the Environment object, so mutation is
    visible to every closure sharing the rib (required for ``letrec``
    and the internal-define lowering).
    """

    __slots__ = ("bindings", "parent", "globals")

    def __init__(
        self,
        bindings: dict[Symbol, Any],
        parent: "Environment | None",
        globals_: GlobalEnv,
    ):
        self.bindings = bindings
        self.parent = parent
        self.globals = globals_

    @classmethod
    def toplevel(cls, globals_: GlobalEnv) -> "Environment":
        return cls({}, None, globals_)

    def extend(self, names: tuple[Symbol, ...], values: list[Any]) -> "Environment":
        """A child rib binding ``names`` to ``values`` pairwise."""
        return Environment(dict(zip(names, values)), self, self.globals)

    def lookup(self, name: Symbol) -> Any:
        env: Environment | None = self
        while env is not None:
            bindings = env.bindings
            if name in bindings:
                return bindings[name]
            env = env.parent
        return self.globals.lookup(name)

    def assign(self, name: Symbol, value: Any) -> None:
        env: Environment | None = self
        while env is not None:
            if name in env.bindings:
                env.bindings[name] = value
                return
            env = env.parent
        self.globals.assign(name, value)
