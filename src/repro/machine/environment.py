"""Lexical environments and the global table.

Two rib representations coexist behind one interface:

* :class:`Environment` — the original chain of small per-call dicts,
  resolved by hashing a :class:`~repro.datum.Symbol` up the parent
  chain at every reference.  Retained as the ``resolve=False``
  ablation baseline (see ``docs/IMPLEMENTATION.md``).
* :class:`SlotRib` — a flat ``values`` list plus a parent pointer,
  used by the resolved machine: the compile-time resolver
  (:mod:`repro.ir.resolve`) rewrites every variable into a
  ``(depth, index)`` lexical address, so lookup is pointer-chasing and
  one list index — no hashing, no dict.

The global table is a dict of interned :class:`GlobalCell` boxes.  The
resolver captures cells directly in ``GlobalRef``/``GlobalSet`` nodes,
making a resolved global reference one attribute read; the dict-chain
baseline goes through :meth:`GlobalEnv.lookup` on the same cells, so
both representations always see the same store.

The *store* is deliberately shared, never captured: reinstating a
process continuation twice sees any side effects made in between,
exactly as in Scheme.  Both rib kinds are captured by reference (an
immutable chain of mutable ribs), so the capture algebra is identical
under either representation.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.datum import Symbol
from repro.errors import UnboundVariableError

__all__ = ["Environment", "GlobalEnv", "GlobalCell", "SlotRib", "UNBOUND"]


class _Unbound:
    """Sentinel stored in a cell that has been interned (a forward
    reference seen by the resolver) but not yet ``define``d."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "#<unbound>"


UNBOUND = _Unbound()

#: Sentinel for single-probe dict misses (distinct from UNBOUND so a
#: cell holding UNBOUND is still *found*, just not bound).
_MISSING = object()


class GlobalCell:
    """A one-slot mutable box for one top-level binding.

    Interned (at most one per name per :class:`GlobalEnv`), so a
    resolved ``GlobalRef`` compiled before the ``define`` runs still
    observes the value at first touch — the cell is the identity, the
    value arrives later.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: Symbol, value: Any = UNBOUND):
        self.name = name
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "unbound" if self.value is UNBOUND else repr(self.value)
        return f"#<global-cell {self.name.name} {state}>"


class GlobalEnv:
    """The top-level binding table: interned cells keyed by symbol."""

    __slots__ = ("cells",)

    def __init__(self) -> None:
        self.cells: dict[Symbol, GlobalCell] = {}

    def cell(self, name: Symbol) -> GlobalCell:
        """The interned cell for ``name``, created unbound on first
        request (this is how forward references resolve)."""
        cell = self.cells.get(name)
        if cell is None:
            cell = GlobalCell(name)
            self.cells[name] = cell
        return cell

    def lookup(self, name: Symbol) -> Any:
        cell = self.cells.get(name)
        if cell is None or cell.value is UNBOUND:
            raise UnboundVariableError(name.name)
        return cell.value

    def define(self, name: Symbol, value: Any) -> None:
        self.cell(name).value = value

    def assign(self, name: Symbol, value: Any) -> None:
        cell = self.cells.get(name)
        if cell is None or cell.value is UNBOUND:
            raise UnboundVariableError(name.name)
        cell.value = value

    def __contains__(self, name: Symbol) -> bool:
        cell = self.cells.get(name)
        return cell is not None and cell.value is not UNBOUND

    def __iter__(self) -> Iterator[Symbol]:
        return (
            name for name, cell in self.cells.items() if cell.value is not UNBOUND
        )


class Environment:
    """One dict rib: ``names -> values`` plus a parent pointer.

    Bindings are stored directly in the dict; ``set!`` mutates in
    place.  Closures capture the Environment object, so mutation is
    visible to every closure sharing the rib (required for ``letrec``
    and the internal-define lowering).
    """

    __slots__ = ("bindings", "parent", "globals")

    def __init__(
        self,
        bindings: dict[Symbol, Any],
        parent: "Environment | None",
        globals_: GlobalEnv,
    ):
        self.bindings = bindings
        self.parent = parent
        self.globals = globals_

    @classmethod
    def toplevel(cls, globals_: GlobalEnv) -> "Environment":
        return cls({}, None, globals_)

    def extend(self, names: tuple[Symbol, ...], values: list[Any]) -> "Environment":
        """A child rib binding ``names`` to ``values`` pairwise."""
        return Environment(dict(zip(names, values)), self, self.globals)

    def lookup(self, name: Symbol) -> Any:
        env: Environment | None = self
        while env is not None:
            value = env.bindings.get(name, _MISSING)
            if value is not _MISSING:
                return value
            env = env.parent
        return self.globals.lookup(name)

    def assign(self, name: Symbol, value: Any) -> None:
        env: Environment | None = self
        while env is not None:
            bindings = env.bindings
            if bindings.get(name, _MISSING) is not _MISSING:
                bindings[name] = value
                return
            env = env.parent
        self.globals.assign(name, value)


class SlotRib:
    """One resolved rib: a flat list of slots plus a parent pointer.

    There are no names here — the resolver already turned every
    reference into ``(depth, index)``, so the machine walks ``depth``
    parents and indexes ``values``.  The parent chain bottoms out at
    the machine's top-level :class:`Environment` (never indexed: the
    resolver gives no local address past the outermost lambda).

    ``set!`` mutates ``values`` in place; the rib object itself is
    shared by reference between the live tree and any captures, exactly
    like a dict rib.
    """

    __slots__ = ("values", "parent")

    def __init__(self, values: list[Any], parent: Any):
        self.values = values
        self.parent = parent

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"#<slot-rib {len(self.values)} slot(s)>"
