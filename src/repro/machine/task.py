"""Leaf tasks of the process tree.

A task is a unit of sequential execution: a control, an environment, a
segment of frames and the link at the segment's bottom.  The scheduler
steps runnable tasks; capture operations suspend them; joins and halts
kill them.

The control is stored as two registers — ``tag`` and ``payload`` —
rather than one tuple, so the run loops (:mod:`repro.machine.step`)
can hold it in Python locals for a whole quantum and write it back
without allocating a fresh ``(tag, payload)`` tuple per transition.
The classic tuple view survives as the :attr:`Task.control` property
for every cold-path caller (capture/reinstate cloning, control
primitives, introspection, tests).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any

from repro.counters import SerialCounter
from repro.machine.frames import frame_chain_length

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.environment import Environment
    from repro.machine.frames import Frame
    from repro.machine.links import Link

__all__ = ["Task", "TaskState", "EVAL", "VALUE", "APPLY", "HOLE"]


class TaskState(enum.Enum):
    RUNNABLE = "runnable"
    SUSPENDED = "suspended"  # captured inside a process continuation
    WAITING = "waiting"  # blocked on an unresolved future placeholder
    DEAD = "dead"  # delivered its value, or abandoned


# Control tags.  A task's control registers pair one of these with a
# payload:
#   tag=EVAL   payload=node        evaluate IR node in self.env
#   tag=VALUE  payload=v           deliver v to the topmost frame / the link
#   tag=APPLY  payload=(fn, args)  apply fn to args (list)
#   tag=HOLE   payload=None        the hole of a captured continuation;
#                                  filled with a VALUE when reinstated
# The tuple view ((EVAL, node), (VALUE, v), (APPLY, fn, args), (HOLE,))
# is what the ``control`` property presents.
EVAL = "eval"
VALUE = "value"
APPLY = "apply"
HOLE = "hole"

_task_ids = SerialCounter()


class Task:
    """A leaf of the process tree."""

    __slots__ = ("uid", "tag", "payload", "env", "frames", "link", "state", "steps")

    def __init__(
        self,
        control: tuple[Any, ...],
        env: "Environment",
        frames: "Frame | None",
        link: "Link",
    ):
        self.uid = next(_task_ids)
        self.control = control
        self.env = env
        self.frames = frames
        self.link = link
        self.state = TaskState.RUNNABLE
        self.steps = 0  # steps executed by this task (introspection)

    @property
    def control(self) -> tuple[Any, ...]:
        """The classic control-tuple view over the tag/payload registers."""
        tag = self.tag
        if tag is APPLY:
            fn_args = self.payload
            return (APPLY, fn_args[0], fn_args[1])
        if tag is HOLE:
            return (HOLE,)
        return (tag, self.payload)

    @control.setter
    def control(self, control: tuple[Any, ...]) -> None:
        tag = control[0]
        self.tag = tag
        if tag is APPLY:
            self.payload = (control[1], control[2])
        elif tag is HOLE:
            self.payload = None
        else:
            self.payload = control[1]

    def clone(self) -> "Task":
        """A shallow copy sharing frames/env (used by subtree cloning).

        The clone starts RUNNABLE; the caller adjusts state and link.
        """
        copy = Task(self.control, self.env, self.frames, self.link)
        copy.state = TaskState.RUNNABLE
        return copy

    def __repr__(self) -> str:
        return (
            f"#<task {self.uid} {self.tag} {self.state.value} "
            f"frames={frame_chain_length(self.frames)} steps={self.steps}>"
        )
