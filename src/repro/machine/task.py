"""Leaf tasks of the process tree.

A task is a unit of sequential execution: a control, an environment, a
segment of frames and the link at the segment's bottom.  The scheduler
steps runnable tasks; capture operations suspend them; joins and halts
kill them.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.environment import Environment
    from repro.machine.frames import Frame
    from repro.machine.links import Link

__all__ = ["Task", "TaskState", "EVAL", "VALUE", "APPLY", "HOLE"]


class TaskState(enum.Enum):
    RUNNABLE = "runnable"
    SUSPENDED = "suspended"  # captured inside a process continuation
    WAITING = "waiting"  # blocked on an unresolved future placeholder
    DEAD = "dead"  # delivered its value, or abandoned


# Control tags.  A task's ``control`` is a tuple whose first element is
# one of these:
#   (EVAL, node)        evaluate IR node in self.env
#   (VALUE, v)          deliver v to the topmost frame / the link
#   (APPLY, fn, args)   apply fn to args (list)
#   (HOLE,)             the hole of a captured continuation; filled with
#                       (VALUE, v) when the continuation is reinstated
EVAL = "eval"
VALUE = "value"
APPLY = "apply"
HOLE = "hole"

_task_ids = itertools.count()


class Task:
    """A leaf of the process tree."""

    __slots__ = ("uid", "control", "env", "frames", "link", "state", "steps")

    def __init__(
        self,
        control: tuple[Any, ...],
        env: "Environment",
        frames: "Frame | None",
        link: "Link",
    ):
        self.uid = next(_task_ids)
        self.control = control
        self.env = env
        self.frames = frames
        self.link = link
        self.state = TaskState.RUNNABLE
        self.steps = 0  # steps executed by this task (introspection)

    def clone(self) -> "Task":
        """A shallow copy sharing frames/env (used by subtree cloning).

        The clone starts RUNNABLE; the caller adjusts state and link.
        """
        copy = Task(self.control, self.env, self.frames, self.link)
        copy.state = TaskState.RUNNABLE
        return copy

    def __repr__(self) -> str:
        tag = self.control[0] if self.control else "?"
        return f"#<task {self.uid} {tag} {self.state.value}>"
