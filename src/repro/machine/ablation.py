"""Ablations: behaviourally identical, deliberately slower baselines.

Two A/B baselines live here, each preserving an earlier implementation
strategy so benchmarks can measure what its replacement bought:

* **Copying capture** (:func:`capture_subtree_copying`) — Section 7's
  cost claim rests on capturing segments **by reference** (frames are
  immutable, so a captured subtree shares them).  The obvious
  alternative — copying every frame at capture time, as naive
  continuation implementations do — costs O(continuation size).
  ``benchmarks/bench_e9_capture_cost.py`` shows the difference
  empirically: sharing capture stays flat as segments deepen, copying
  capture grows linearly.

* **PR-2 apply path** (:func:`apply_procedure_unbatched`,
  :func:`apply_deliver_unbatched`) — the pre-batching apply helpers,
  kept cost-faithful to the PR-2 engine: a ``check_arity`` call per
  application, the ``fn.apply`` method path for primitives, a
  ``getattr`` probe for continuations/controllers, and per-operand
  tuple growth in the folding loop.  A machine built with
  ``batched=False`` installs these as its ``_apply_procedure`` /
  ``_apply_deliver`` seam, so the benchmark "compiled" column measures
  the PR-2 engine while the batched column measures the new fast path
  (precomputed arity windows, direct ``Primitive``/``Closure``
  dispatch) — see DESIGN.md S21.

Every ablation here is *behaviourally identical* (tests assert so); it
only does redundant work.
"""

from __future__ import annotations

from types import FunctionType
from typing import TYPE_CHECKING, Any

from repro.machine.frames import (
    AppFrame,
    DefineFrame,
    Frame,
    GlobalSetFrame,
    IfFrame,
    LocalSetFrame,
    SeqFrame,
    SetFrame,
)
from repro.datum import from_pylist
from repro.errors import WrongTypeError
from repro.machine.environment import Environment, SlotRib
from repro.machine.links import TOMBSTONE, ForkLink, Join, LabelLink
from repro.machine.task import EVAL, VALUE, Task, TaskState
from repro.machine.tree import Capture
from repro.machine.task import HOLE
from repro.machine.values import Closure, ControlPrimitive, Primitive

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.scheduler import Machine

__all__ = [
    "copy_frames",
    "capture_subtree_copying",
    "apply_procedure_unbatched",
    "apply_deliver_unbatched",
]


def copy_frames(frame: Frame | None) -> Frame | None:
    """Deep-copy a frame chain (the O(size) work sharing avoids)."""
    frames: list[Frame] = []
    node = frame
    while node is not None:
        frames.append(node)
        node = node.next
    copied: Frame | None = None
    for original in reversed(frames):
        if isinstance(original, AppFrame):
            copied = AppFrame(original.done, original.pending, original.env, copied)
        elif isinstance(original, IfFrame):
            copied = IfFrame(original.then, original.els, original.env, copied)
        elif isinstance(original, SeqFrame):
            copied = SeqFrame(original.remaining, original.env, copied)
        elif isinstance(original, SetFrame):
            copied = SetFrame(original.name, original.env, copied)
        elif isinstance(original, LocalSetFrame):
            copied = LocalSetFrame(
                original.depth, original.index, original.env, copied
            )
        elif isinstance(original, GlobalSetFrame):
            copied = GlobalSetFrame(original.cell, copied)
        elif isinstance(original, DefineFrame):
            copied = DefineFrame(original.name, original.env, copied)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown frame: {original!r}")
    return copied


def _copy_entity(entity: Any, new_link: Any, task_map: dict[int, Task]) -> Any:
    if entity is None or entity is TOMBSTONE:
        return entity
    if isinstance(entity, Task):
        clone = Task(entity.control, entity.env, copy_frames(entity.frames), new_link)
        clone.state = TaskState.SUSPENDED
        task_map[id(entity)] = clone
        return clone
    if isinstance(entity, LabelLink):
        clone = LabelLink(entity.label, copy_frames(entity.cont_frames), new_link)
        clone.child = _copy_entity(entity.child, clone, task_map)
        return clone
    if isinstance(entity, Join):
        clone = Join(len(entity.slots), copy_frames(entity.cont_frames), new_link)
        clone.slots = list(entity.slots)
        clone.delivered = list(entity.delivered)
        clone.remaining = entity.remaining
        for index, child in enumerate(entity.children):
            clone.children[index] = _copy_entity(child, ForkLink(clone, index), task_map)
        return clone
    raise TypeError(f"not a tree entity: {entity!r}")


def clone_capture_copying(capture: Capture) -> Capture:
    """Clone a package *with* frame copying — the O(continuation size)
    alternative to :func:`repro.machine.tree.clone_capture`."""
    task_map: dict[int, Task] = {}
    root_clone = LabelLink(capture.root.label, None, None)  # type: ignore[arg-type]
    root_clone.child = _copy_entity(capture.root.child, root_clone, task_map)
    hole_clone = task_map[id(capture.hole)]
    return Capture(root=root_clone, hole=hole_clone)


def capture_subtree_copying(
    machine: "Machine", label_link: LabelLink, hole_task: Task
) -> Capture:
    """Copy-mode capture that also deep-copies every frame chain.

    Returns a package interchangeable with
    :func:`repro.machine.tree.capture_subtree`'s copy mode; only the
    cost differs.
    """
    task_map: dict[int, Task] = {}
    root_clone = LabelLink(label_link.label, None, None)  # type: ignore[arg-type]
    root_clone.child = _copy_entity(label_link.child, root_clone, task_map)
    hole_clone = task_map[id(hole_task)]
    hole_clone.tag = HOLE
    hole_clone.payload = None
    return Capture(root=root_clone, hole=hole_clone)


# ---------------------------------------------------------------------------
# The PR-2 apply path (cost-faithful, return-convention adapted)
# ---------------------------------------------------------------------------


def apply_procedure_unbatched(
    machine: "Machine", task: Task, fn: Any, args: list[Any]
) -> "tuple[Any, Any] | None":
    """Apply ``fn`` to ``args`` the way the PR-2 engine did.

    Same transition relation as ``repro.machine.step.apply_procedure``
    — only the cost model differs: the arity check is always a call
    (no precomputed window), primitives go through the ``fn.apply``
    method, and controllers/continuations are found by ``getattr``
    probe rather than an ``isinstance`` check.  Adapted to the
    transition return convention so the reference steppers can drive
    it.
    """
    kind = type(fn)
    if kind is Closure:
        fn.check_arity(len(args))
        nslots = fn.nslots
        if nslots is not None:
            if nslots:
                if fn.rest is None:
                    values = args
                else:
                    nparams = len(fn.params)
                    values = args[:nparams]
                    values.append(from_pylist(args[nparams:]))
                task.env = SlotRib(values, fn.env)
            else:
                task.env = fn.env
            return (EVAL, fn.body)
        nparams = len(fn.params)
        bindings = dict(zip(fn.params, args))
        if fn.rest is not None:
            bindings[fn.rest] = from_pylist(args[nparams:])
        task.env = Environment(bindings, fn.env, fn.env.globals)
        return (EVAL, fn.body)
    if kind is Primitive:
        return (VALUE, fn.apply(args))
    if kind is ControlPrimitive:
        fn.apply(machine, task, args)
        return None
    machine_apply = getattr(fn, "machine_apply", None)
    if machine_apply is not None:
        machine_apply(machine, task, args)
        return None
    raise WrongTypeError(f"attempt to apply non-procedure: {fn!r}")


def apply_deliver_unbatched(
    machine: "Machine", task: Task, fn: Any, args: list[Any]
) -> "tuple[Any, Any] | None":
    """The PR-2 fused trivial-application apply (see
    ``repro.machine.step.apply_deliver`` for the transition relation).

    Kept cost-faithful: ``fn.apply`` method path, and the folding loop
    grows the ``done`` tuple one operand at a time — the quadratic
    growth PR 3 fixed in the live engine stays here so the A/B column
    measures it.
    """
    if type(fn) is not Primitive:
        return apply_procedure_unbatched(machine, task, fn, args)
    value = fn.apply(args)
    frame = task.frames
    if frame is None:
        return (VALUE, value)
    frame_kind = type(frame)
    if frame_kind is AppFrame:
        task.frames = frame.next
        done = frame.done + (value,)
        pending = frame.pending
        env = frame.env
        index = 0
        npend = len(pending)
        while index < npend:
            code = pending[index]
            if code.__class__ is not FunctionType:
                break
            triv = code.triv
            if triv is None:
                break
            done = done + (triv(env),)
            index += 1
        if index == npend:
            return apply_procedure_unbatched(machine, task, done[0], list(done[1:]))
        task.frames = AppFrame(done, pending[index + 1 :], env, task.frames)
        task.env = env
        return (EVAL, pending[index])
    if frame_kind is IfFrame:
        task.frames = frame.next
        task.env = frame.env
        return (EVAL, frame.then if value is not False else frame.els)
    return (VALUE, value)
