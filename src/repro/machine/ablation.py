"""Ablation: a *copying* capture.

Section 7's cost claim rests on capturing segments **by reference**
(frames are immutable, so a captured subtree shares them).  The obvious
alternative — copying every frame at capture time, as naive
continuation implementations do — costs O(continuation size).  This
module implements that alternative so the benchmark
``benchmarks/bench_e9_capture_cost.py`` can show the difference
empirically: sharing capture stays flat as segments deepen, copying
capture grows linearly.

The copying capture is *behaviourally identical* (tests assert so); it
only does redundant work.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.machine.frames import (
    AppFrame,
    DefineFrame,
    Frame,
    GlobalSetFrame,
    IfFrame,
    LocalSetFrame,
    SeqFrame,
    SetFrame,
)
from repro.machine.links import TOMBSTONE, ForkLink, Join, LabelLink
from repro.machine.task import Task, TaskState
from repro.machine.tree import Capture
from repro.machine.task import HOLE

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.scheduler import Machine

__all__ = ["copy_frames", "capture_subtree_copying"]


def copy_frames(frame: Frame | None) -> Frame | None:
    """Deep-copy a frame chain (the O(size) work sharing avoids)."""
    frames: list[Frame] = []
    node = frame
    while node is not None:
        frames.append(node)
        node = node.next
    copied: Frame | None = None
    for original in reversed(frames):
        if isinstance(original, AppFrame):
            copied = AppFrame(original.done, original.pending, original.env, copied)
        elif isinstance(original, IfFrame):
            copied = IfFrame(original.then, original.els, original.env, copied)
        elif isinstance(original, SeqFrame):
            copied = SeqFrame(original.remaining, original.env, copied)
        elif isinstance(original, SetFrame):
            copied = SetFrame(original.name, original.env, copied)
        elif isinstance(original, LocalSetFrame):
            copied = LocalSetFrame(
                original.depth, original.index, original.env, copied
            )
        elif isinstance(original, GlobalSetFrame):
            copied = GlobalSetFrame(original.cell, copied)
        elif isinstance(original, DefineFrame):
            copied = DefineFrame(original.name, original.env, copied)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown frame: {original!r}")
    return copied


def _copy_entity(entity: Any, new_link: Any, task_map: dict[int, Task]) -> Any:
    if entity is None or entity is TOMBSTONE:
        return entity
    if isinstance(entity, Task):
        clone = Task(entity.control, entity.env, copy_frames(entity.frames), new_link)
        clone.state = TaskState.SUSPENDED
        task_map[id(entity)] = clone
        return clone
    if isinstance(entity, LabelLink):
        clone = LabelLink(entity.label, copy_frames(entity.cont_frames), new_link)
        clone.child = _copy_entity(entity.child, clone, task_map)
        return clone
    if isinstance(entity, Join):
        clone = Join(len(entity.slots), copy_frames(entity.cont_frames), new_link)
        clone.slots = list(entity.slots)
        clone.delivered = list(entity.delivered)
        clone.remaining = entity.remaining
        for index, child in enumerate(entity.children):
            clone.children[index] = _copy_entity(child, ForkLink(clone, index), task_map)
        return clone
    raise TypeError(f"not a tree entity: {entity!r}")


def clone_capture_copying(capture: Capture) -> Capture:
    """Clone a package *with* frame copying — the O(continuation size)
    alternative to :func:`repro.machine.tree.clone_capture`."""
    task_map: dict[int, Task] = {}
    root_clone = LabelLink(capture.root.label, None, None)  # type: ignore[arg-type]
    root_clone.child = _copy_entity(capture.root.child, root_clone, task_map)
    hole_clone = task_map[id(capture.hole)]
    return Capture(root=root_clone, hole=hole_clone)


def capture_subtree_copying(
    machine: "Machine", label_link: LabelLink, hole_task: Task
) -> Capture:
    """Copy-mode capture that also deep-copies every frame chain.

    Returns a package interchangeable with
    :func:`repro.machine.tree.capture_subtree`'s copy mode; only the
    cost differs.
    """
    task_map: dict[int, Task] = {}
    root_clone = LabelLink(label_link.label, None, None)  # type: ignore[arg-type]
    root_clone.child = _copy_entity(label_link.child, root_clone, task_map)
    hole_clone = task_map[id(hole_task)]
    hole_clone.control = (HOLE,)
    return Capture(root=root_clone, hole=hole_clone)
