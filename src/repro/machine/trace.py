"""Structured execution tracing.

:class:`Tracer` records the control-relevant events of a run — forks,
joins firing, spawns, label pops, captures, reinstatements, task
lifecycle — as typed records, and renders them as a readable timeline.
It exists for three consumers: debugging control operators, the
teaching examples, and tests that assert on *event sequences* rather
than just final values.

Every event comes from one of the machine's notify points
(``notify_fork`` / ``notify_label_pop`` / ``notify_join_fire`` /
``notify_capture`` / ``notify_reinstate``), which all three engines
call from shared code at the moment the operation happens.  That makes
counted == emitted an invariant: exactly one event per unit of the
corresponding stats counter, regardless of engine, quantum, or whether
the evaluation aborts mid-quantum.  (The seed implementation instead
*sniffed* the capture/reinstate counters from a per-step trace hook and
emitted at most one event per hook interval — events were lost whenever
no further step ran after the counter bump, e.g. a step-budget abort
right after a capture, and were attributed to whichever task happened
to run next.)

The per-step trace hook is now only installed when task-switch events
are requested (``record_switches=True``); a plain trace leaves the
batched run loops un-spilled.

Usage::

    interp = Interpreter()
    with Tracer(interp.machine) as tracer:
        interp.eval("(spawn (lambda (c) (c (lambda (k) (k 1)))))")
    print(tracer.render())
    tracer.events_of_kind("capture")   # -> [TraceEvent(...)]

A tracer instance may be reused: each ``with`` block starts a fresh
event list.  Nested entry of the *same* instance is a bug and raises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.machine.links import Join, LabelLink, PromptLabel
from repro.machine.task import Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.scheduler import Machine

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    step: int
    kind: str  # fork | join-fire | spawn | label-pop | prompt-pop |
    #            capture | reinstate | task-switch
    detail: str


class Tracer:
    """Hooks a machine's notification points and records events.

    The machine calls ``notify_fork`` / ``notify_label_pop`` /
    ``notify_join_fire`` / ``notify_capture`` / ``notify_reinstate``
    for every control operation; the tracer wraps all five (and, when
    ``record_switches=True``, the per-step trace hook), restoring
    everything on exit.
    """

    def __init__(self, machine: "Machine", record_switches: bool = False):
        self.machine = machine
        self.record_switches = record_switches
        self.events: list[TraceEvent] = []
        self._saved: dict[str, Any] = {}
        self._last_task_uid: int | None = None
        self._entered = False

    # -- context manager -----------------------------------------------------

    def __enter__(self) -> "Tracer":
        if self._entered:
            raise RuntimeError(
                "Tracer is not re-entrant: this instance is already active "
                "(sequential reuse across separate `with` blocks is fine)"
            )
        self._entered = True
        # Fresh per-run state: reusing one instance must not interleave
        # a previous run's events or task-switch cursor with this run.
        self.events = []
        self._last_task_uid = None
        machine = self.machine
        self._saved = {
            "notify_fork": machine.notify_fork,
            "notify_label_pop": machine.notify_label_pop,
            "notify_join_fire": machine.notify_join_fire,
            "notify_capture": machine.notify_capture,
            "notify_reinstate": machine.notify_reinstate,
            "trace_hook": machine.trace_hook,
        }

        def on_fork(join: Join) -> None:
            self._saved["notify_fork"](join)
            self._emit("fork", f"{len(join.slots)} branches")

        def on_label_pop(link: LabelLink) -> None:
            self._saved["notify_label_pop"](link)
            kind = "prompt-pop" if isinstance(link.label, PromptLabel) else "label-pop"
            self._emit(kind, link.label.name)

        def on_join_fire(join: Join) -> None:
            self._saved["notify_join_fire"](join)
            self._emit("join-fire", f"{len(join.slots)} values")

        def on_capture(task: Task, kind: str = "") -> None:
            self._saved["notify_capture"](task, kind)
            self._emit("capture", f"by task {task.uid}")

        def on_reinstate(task: Task, kind: str = "") -> None:
            self._saved["notify_reinstate"](task, kind)
            self._emit("reinstate", f"by task {task.uid}")

        machine.notify_fork = on_fork  # type: ignore[method-assign]
        machine.notify_label_pop = on_label_pop  # type: ignore[method-assign]
        machine.notify_join_fire = on_join_fire  # type: ignore[method-assign]
        machine.notify_capture = on_capture  # type: ignore[method-assign]
        machine.notify_reinstate = on_reinstate  # type: ignore[method-assign]

        if self.record_switches:
            # Task-switch detection genuinely needs to see every step;
            # only then do we pay for per-step spills in the batched
            # run loops.
            def hook(machine_: "Machine", task: Task) -> None:
                previous = self._saved["trace_hook"]
                if previous is not None:
                    previous(machine_, task)
                if task.uid != self._last_task_uid:
                    self._last_task_uid = task.uid
                    self._emit("task-switch", f"-> task {task.uid}")

            machine.trace_hook = hook
        return self

    def __exit__(self, *exc_info: Any) -> None:
        machine = self.machine
        machine.notify_fork = self._saved["notify_fork"]  # type: ignore[method-assign]
        machine.notify_label_pop = self._saved["notify_label_pop"]  # type: ignore[method-assign]
        machine.notify_join_fire = self._saved["notify_join_fire"]  # type: ignore[method-assign]
        machine.notify_capture = self._saved["notify_capture"]  # type: ignore[method-assign]
        machine.notify_reinstate = self._saved["notify_reinstate"]  # type: ignore[method-assign]
        if self.record_switches:
            machine.trace_hook = self._saved["trace_hook"]
        self._entered = False

    # -- recording and queries -------------------------------------------------

    def _emit(self, kind: str, detail: str) -> None:
        self.events.append(TraceEvent(self.machine.steps_total, kind, detail))

    def events_of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def kinds(self) -> list[str]:
        """The event-kind sequence (for order assertions)."""
        return [e.kind for e in self.events]

    def render(self) -> str:
        """A readable timeline."""
        lines = [f"{'step':>7s}  event"]
        for event in self.events:
            lines.append(f"{event.step:7d}  {event.kind:12s} {event.detail}")
        return "\n".join(lines)
