"""The single-task stepper.

``step(machine, task)`` advances one task by one transition.  The three
control shapes are:

* ``(EVAL, node)`` — decompose an IR node, pushing frames;
* ``(VALUE, v)`` — deliver a value to the top frame, or through the
  segment's link when the segment is empty;
* ``(APPLY, fn, args)`` — apply a procedure value.

Node and frame handling dispatch through type-keyed tables rather than
``isinstance`` ladders — profiling showed the ladders dominating the
hot loop (~20 % end-to-end on call-heavy code).

The stepper evaluates both IR dialects: the expander's ``Var``/
``SetBang`` (dict-chain environments, the ``resolve=False`` baseline)
and the resolver's ``LocalRef``/``LocalSet``/``GlobalRef``/
``GlobalSet`` (slot ribs and interned global cells — see
:mod:`repro.ir.resolve`).  On resolved programs (``machine.fold``)
the stepper also folds *trivial* operands — references, constants,
resolved lambdas — into the application's own step, applying
immediately once every operand is in hand; the ``resolve=False``
baseline keeps the seed's one-transition-per-operand stepping.
Either way, tail calls run in constant
segment space: applications are processed only after their frame has
been popped, so proper tail calls fall out of the frame discipline for
free, independent of the rib representation.

``step_compiled(machine, task)`` is the third engine's stepper: the
closure compiler (:mod:`repro.ir.compile`) has already turned every
node into a code thunk ``code(machine, task)``, so the EVAL arm is a
single indirect call — no type-keyed dispatch at all.  The VALUE and
APPLY arms are shared with the tree-walking stepper in structure
(identical frames, identical link delivery), but the VALUE arm folds
*compiled* trivial operands via each thunk's pre-computed ``triv``
closure and fuses the next non-trivial operand's first transition into
the same step.  Frame slots holding plain IR nodes (e.g. from
``begin_eval`` on unexpanded input, or closures built by another
engine's machine) fall back to the shared dispatch tables, so values
cross freely between engines.
"""

from __future__ import annotations

from types import FunctionType
from typing import TYPE_CHECKING, Any, Callable

from repro.datum import UNSPECIFIED, from_pylist
from repro.errors import ControlError, MachineError, UnboundVariableError, WrongTypeError
from repro.ir import (
    App,
    Const,
    DefineTop,
    GlobalRef,
    GlobalSet,
    If,
    Lambda,
    LocalRef,
    LocalSet,
    Pcall,
    Seq,
    SetBang,
    Var,
)
from repro.machine.environment import UNBOUND, Environment, SlotRib
from repro.machine.frames import (
    AppFrame,
    DefineFrame,
    GlobalSetFrame,
    IfFrame,
    LocalSetFrame,
    SeqFrame,
    SetFrame,
)
from repro.machine.links import ForkLink, HaltLink, Join, LabelLink
from repro.machine.task import APPLY, EVAL, HOLE, VALUE, Task, TaskState
from repro.machine.tree import replace_child
from repro.machine.values import Closure, ControlPrimitive, Primitive

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.scheduler import Machine

__all__ = ["step", "step_compiled", "apply_procedure", "apply_deliver"]


#: Sentinel: a node is not trivially evaluable in place.
_NOT_TRIVIAL = object()


def _trivial_eval(node: Any, env: Any) -> Any:
    """Evaluate a *trivial* resolved node — one whose evaluation cannot
    push frames, fork, capture, or observe the scheduler — or return
    ``_NOT_TRIVIAL``.

    Only the resolver's dialect folds (``LocalRef``/``GlobalRef``/
    ``Const``/resolved ``Lambda``): the compile stage is what
    guarantees a reference is one slot read or one cell read, so
    applications can consume such operands without spending a machine
    step each.  The unresolved dialect (``Var``) falls through, keeping
    the dict-chain baseline's step-for-step seed behaviour.
    """
    kind = type(node)
    if kind is LocalRef:
        depth = node.depth
        while depth:
            env = env.parent
            depth -= 1
        return env.values[node.index]
    if kind is GlobalRef:
        value = node.cell.value
        if value is UNBOUND:
            raise UnboundVariableError(node.cell.name.name)
        return value
    if kind is Const:
        return node.value
    if kind is Lambda and node.nslots is not None:
        return Closure(node.params, node.rest, node.body, env, node.name, node.nslots)
    return _NOT_TRIVIAL


def step(machine: "Machine", task: Task) -> None:
    """Advance ``task`` by one transition.

    The hottest cases — variable reference, constant, application and
    conditional decomposition, and frame-ful value delivery — are
    inlined here; everything else goes through the dispatch tables.
    """
    control = task.control
    tag = control[0]
    task.steps += 1
    if tag is EVAL:
        node = control[1]
        kind = type(node)
        if kind is LocalRef:
            env = task.env
            depth = node.depth
            while depth:
                env = env.parent
                depth -= 1
            task.control = (VALUE, env.values[node.index])
            return
        if kind is GlobalRef:
            value = node.cell.value
            if value is UNBOUND:
                raise UnboundVariableError(node.cell.name.name)
            task.control = (VALUE, value)
            return
        if kind is Var:
            task.control = (VALUE, task.env.lookup(node.name))
            return
        if kind is App:
            env = task.env
            if machine.fold:
                fnval = _trivial_eval(node.fn, env)
                if fnval is not _NOT_TRIVIAL:
                    args = node.args
                    done = [fnval]
                    index = 0
                    nargs = len(args)
                    while index < nargs:
                        value = _trivial_eval(args[index], env)
                        if value is _NOT_TRIVIAL:
                            break
                        done.append(value)
                        index += 1
                    if index == nargs:
                        apply_procedure(machine, task, fnval, done[1:])
                        return
                    task.frames = AppFrame(
                        tuple(done), args[index + 1 :], env, task.frames
                    )
                    task.control = (EVAL, args[index])
                    return
            task.frames = AppFrame((), node.args, env, task.frames)
            task.control = (EVAL, node.fn)
            return
        if kind is If:
            task.frames = IfFrame(node.then, node.els, task.env, task.frames)
            task.control = (EVAL, node.test)
            return
        if kind is Const:
            task.control = (VALUE, node.value)
            return
        handler = _EVAL_DISPATCH.get(kind)
        if handler is None:
            raise MachineError(f"cannot evaluate IR node: {node!r}")
        handler(machine, task, node)
    elif tag is VALUE:
        value = control[1]
        frame = task.frames
        if frame is not None:
            task.frames = frame.next
            if type(frame) is AppFrame:
                done = frame.done + (value,)
                pending = frame.pending
                if machine.fold:
                    env = frame.env
                    index = 0
                    npend = len(pending)
                    while index < npend:
                        folded = _trivial_eval(pending[index], env)
                        if folded is _NOT_TRIVIAL:
                            break
                        done = done + (folded,)
                        index += 1
                    if index == npend:
                        apply_procedure(machine, task, done[0], list(done[1:]))
                        return
                    task.frames = AppFrame(
                        done, pending[index + 1 :], env, task.frames
                    )
                    task.env = env
                    task.control = (EVAL, pending[index])
                    return
                if pending:
                    task.frames = AppFrame(done, pending[1:], frame.env, task.frames)
                    task.env = frame.env
                    task.control = (EVAL, pending[0])
                else:
                    task.control = (APPLY, done[0], list(done[1:]))
                return
            if type(frame) is IfFrame:
                task.env = frame.env
                task.control = (EVAL, frame.then if value is not False else frame.els)
                return
            handler = _FRAME_DISPATCH.get(type(frame))
            if handler is None:  # pragma: no cover - defensive
                raise MachineError(f"unknown frame: {frame!r}")
            handler(machine, task, frame, value)
            return
        _deliver_through_link(machine, task, value)
    elif tag is APPLY:
        apply_procedure(machine, task, control[1], control[2])
    elif tag is HOLE:  # pragma: no cover - scheduler never runs holes
        raise MachineError("attempted to step the hole of a captured continuation")
    else:  # pragma: no cover - defensive
        raise MachineError(f"unknown control tag: {tag!r}")


def step_compiled(machine: "Machine", task: Task) -> None:
    """Advance ``task`` by one transition on a compiled-engine machine.

    ``(EVAL, code)`` invokes the code thunk directly; a thunk may fuse
    several node transitions (trivial operands, branch jumps) into this
    one step, but never recurses through ``apply_procedure`` — an
    application always ends the step, so loops cost at least one step
    per iteration and quantum preemption is preserved.  ``(EVAL,
    node)`` with a plain IR node falls back to the shared dispatch
    table.
    """
    control = task.control
    tag = control[0]
    task.steps += 1
    if tag is EVAL:
        target = control[1]
        if target.__class__ is FunctionType:
            target(machine, task)
            return
        handler = _EVAL_DISPATCH.get(type(target))
        if handler is None:
            raise MachineError(f"cannot evaluate IR node: {target!r}")
        handler(machine, task, target)
    elif tag is VALUE:
        value = control[1]
        frame = task.frames
        if frame is not None:
            task.frames = frame.next
            frame_kind = type(frame)
            if frame_kind is AppFrame:
                done = frame.done + (value,)
                pending = frame.pending
                env = frame.env
                index = 0
                npend = len(pending)
                while index < npend:
                    code = pending[index]
                    if code.__class__ is not FunctionType:
                        break
                    triv = code.triv
                    if triv is None:
                        break
                    done = done + (triv(env),)
                    index += 1
                if index == npend:
                    apply_procedure(machine, task, done[0], list(done[1:]))
                    return
                following = pending[index]
                task.frames = AppFrame(done, pending[index + 1 :], env, task.frames)
                task.env = env
                if following.__class__ is FunctionType:
                    following(machine, task)
                else:
                    task.control = (EVAL, following)
                return
            if frame_kind is IfFrame:
                task.env = frame.env
                branch = frame.then if value is not False else frame.els
                if branch.__class__ is FunctionType:
                    branch(machine, task)
                else:
                    task.control = (EVAL, branch)
                return
            if frame_kind is SeqFrame:
                remaining = frame.remaining
                if len(remaining) > 1:
                    task.frames = SeqFrame(remaining[1:], frame.env, task.frames)
                task.env = frame.env
                following = remaining[0]
                if following.__class__ is FunctionType:
                    following(machine, task)
                else:
                    task.control = (EVAL, following)
                return
            handler = _FRAME_DISPATCH.get(frame_kind)
            if handler is None:  # pragma: no cover - defensive
                raise MachineError(f"unknown frame: {frame!r}")
            handler(machine, task, frame, value)
            return
        _deliver_through_link(machine, task, value)
    elif tag is APPLY:
        apply_procedure(machine, task, control[1], control[2])
    elif tag is HOLE:  # pragma: no cover - scheduler never runs holes
        raise MachineError("attempted to step the hole of a captured continuation")
    else:  # pragma: no cover - defensive
        raise MachineError(f"unknown control tag: {tag!r}")


def apply_deliver(machine: "Machine", task: Task, fn: Any, args: list[Any]) -> None:
    """Compiled-engine apply with primitive-result delivery fused in.

    Used by code thunks for fully trivial applications: when ``fn``
    turns out to be a :class:`Primitive`, its result is delivered
    through at most *one* frame within the same step — the common
    ``(op ... (prim ...) ...)`` shape costs one step instead of two.
    The delivery never invokes another code thunk and the post-pop
    apply is the plain one, so at most one extra transition fuses here:
    per-step work stays bounded by static expression size, and a return
    cascade through dynamically accumulated frames still costs one step
    per frame.  Everything that is not a ``Primitive`` (closures,
    control primitives, continuations) takes :func:`apply_procedure`
    unchanged.
    """
    if type(fn) is not Primitive:
        apply_procedure(machine, task, fn, args)
        return
    value = fn.apply(args)
    frame = task.frames
    if frame is None:
        task.control = (VALUE, value)
        return
    frame_kind = type(frame)
    if frame_kind is AppFrame:
        task.frames = frame.next
        done = frame.done + (value,)
        pending = frame.pending
        env = frame.env
        index = 0
        npend = len(pending)
        while index < npend:
            code = pending[index]
            if code.__class__ is not FunctionType:
                break
            triv = code.triv
            if triv is None:
                break
            done = done + (triv(env),)
            index += 1
        if index == npend:
            apply_procedure(machine, task, done[0], list(done[1:]))
            return
        task.frames = AppFrame(done, pending[index + 1 :], env, task.frames)
        task.env = env
        task.control = (EVAL, pending[index])
        return
    if frame_kind is IfFrame:
        task.frames = frame.next
        task.env = frame.env
        task.control = (EVAL, frame.then if value is not False else frame.els)
        return
    task.control = (VALUE, value)


# ---------------------------------------------------------------------------
# EVAL — one handler per node type, dispatched by type
# ---------------------------------------------------------------------------


def _eval_const(machine: "Machine", task: Task, node: Const) -> None:
    task.control = (VALUE, node.value)


def _eval_var(machine: "Machine", task: Task, node: Var) -> None:
    task.control = (VALUE, task.env.lookup(node.name))


def _eval_local_ref(machine: "Machine", task: Task, node: LocalRef) -> None:
    env = task.env
    depth = node.depth
    while depth:
        env = env.parent
        depth -= 1
    task.control = (VALUE, env.values[node.index])


def _eval_global_ref(machine: "Machine", task: Task, node: GlobalRef) -> None:
    value = node.cell.value
    if value is UNBOUND:
        raise UnboundVariableError(node.cell.name.name)
    task.control = (VALUE, value)


def _eval_lambda(machine: "Machine", task: Task, node: Lambda) -> None:
    task.control = (
        VALUE,
        Closure(node.params, node.rest, node.body, task.env, node.name, node.nslots),
    )


def _eval_app(machine: "Machine", task: Task, node: App) -> None:
    env = task.env
    if machine.fold:
        fnval = _trivial_eval(node.fn, env)
        if fnval is not _NOT_TRIVIAL:
            args = node.args
            done = [fnval]
            index = 0
            nargs = len(args)
            while index < nargs:
                value = _trivial_eval(args[index], env)
                if value is _NOT_TRIVIAL:
                    break
                done.append(value)
                index += 1
            if index == nargs:
                apply_procedure(machine, task, fnval, done[1:])
                return
            task.frames = AppFrame(tuple(done), args[index + 1 :], env, task.frames)
            task.control = (EVAL, args[index])
            return
    task.frames = AppFrame((), node.args, env, task.frames)
    task.control = (EVAL, node.fn)


def _eval_if(machine: "Machine", task: Task, node: If) -> None:
    task.frames = IfFrame(node.then, node.els, task.env, task.frames)
    task.control = (EVAL, node.test)


def _eval_seq(machine: "Machine", task: Task, node: Seq) -> None:
    exprs = node.exprs
    if len(exprs) > 1:
        task.frames = SeqFrame(exprs[1:], task.env, task.frames)
    task.control = (EVAL, exprs[0])


def _eval_set(machine: "Machine", task: Task, node: SetBang) -> None:
    task.frames = SetFrame(node.name, task.env, task.frames)
    task.control = (EVAL, node.expr)


def _eval_local_set(machine: "Machine", task: Task, node: LocalSet) -> None:
    task.frames = LocalSetFrame(node.depth, node.index, task.env, task.frames)
    task.control = (EVAL, node.expr)


def _eval_global_set(machine: "Machine", task: Task, node: GlobalSet) -> None:
    task.frames = GlobalSetFrame(node.cell, task.frames)
    task.control = (EVAL, node.expr)


def _eval_define(machine: "Machine", task: Task, node: DefineTop) -> None:
    task.frames = DefineFrame(node.name, task.env, task.frames)
    task.control = (EVAL, node.expr)


def _eval_pcall(machine: "Machine", task: Task, node: Pcall) -> None:
    """Fork: the task's position is taken over by a Join; one fresh
    branch task per subexpression."""
    join = Join(len(node.exprs), task.frames, task.link)
    replace_child(task.link, join)
    task.state = TaskState.DEAD
    for index, expr in enumerate(node.exprs):
        branch = Task((EVAL, expr), task.env, None, ForkLink(join, index))
        join.children[index] = branch
        machine.spawn_task(branch)
    machine.notify_fork(join)


_EVAL_DISPATCH: dict[type, Callable[["Machine", Task, Any], None]] = {
    Const: _eval_const,
    Var: _eval_var,
    LocalRef: _eval_local_ref,
    GlobalRef: _eval_global_ref,
    Lambda: _eval_lambda,
    App: _eval_app,
    If: _eval_if,
    Seq: _eval_seq,
    SetBang: _eval_set,
    LocalSet: _eval_local_set,
    GlobalSet: _eval_global_set,
    DefineTop: _eval_define,
    Pcall: _eval_pcall,
}


# ---------------------------------------------------------------------------
# VALUE delivery — frame handlers dispatched by type
# ---------------------------------------------------------------------------


def _frame_app(machine: "Machine", task: Task, frame: AppFrame, value: Any) -> None:
    done = frame.done + (value,)
    pending = frame.pending
    if machine.fold:
        env = frame.env
        index = 0
        npend = len(pending)
        while index < npend:
            folded = _trivial_eval(pending[index], env)
            if folded is _NOT_TRIVIAL:
                break
            done = done + (folded,)
            index += 1
        if index == npend:
            apply_procedure(machine, task, done[0], list(done[1:]))
            return
        task.frames = AppFrame(done, pending[index + 1 :], env, task.frames)
        task.env = env
        task.control = (EVAL, pending[index])
        return
    if pending:
        task.frames = AppFrame(done, pending[1:], frame.env, task.frames)
        task.env = frame.env
        task.control = (EVAL, pending[0])
    else:
        task.control = (APPLY, done[0], list(done[1:]))


def _frame_if(machine: "Machine", task: Task, frame: IfFrame, value: Any) -> None:
    task.env = frame.env
    task.control = (EVAL, frame.then if value is not False else frame.els)


def _frame_seq(machine: "Machine", task: Task, frame: SeqFrame, value: Any) -> None:
    remaining = frame.remaining
    if len(remaining) > 1:
        task.frames = SeqFrame(remaining[1:], frame.env, task.frames)
    task.env = frame.env
    task.control = (EVAL, remaining[0])


def _frame_set(machine: "Machine", task: Task, frame: SetFrame, value: Any) -> None:
    frame.env.assign(frame.name, value)
    task.control = (VALUE, UNSPECIFIED)


def _frame_local_set(
    machine: "Machine", task: Task, frame: LocalSetFrame, value: Any
) -> None:
    env = frame.env
    depth = frame.depth
    while depth:
        env = env.parent
        depth -= 1
    env.values[frame.index] = value
    task.control = (VALUE, UNSPECIFIED)


def _frame_global_set(
    machine: "Machine", task: Task, frame: GlobalSetFrame, value: Any
) -> None:
    cell = frame.cell
    if cell.value is UNBOUND:
        raise UnboundVariableError(cell.name.name)
    cell.value = value
    task.control = (VALUE, UNSPECIFIED)


def _frame_define(
    machine: "Machine", task: Task, frame: DefineFrame, value: Any
) -> None:
    frame.env.globals.define(frame.name, value)
    task.control = (VALUE, UNSPECIFIED)


_FRAME_DISPATCH: dict[type, Callable[["Machine", Task, Any, Any], None]] = {
    AppFrame: _frame_app,
    IfFrame: _frame_if,
    SeqFrame: _frame_seq,
    SetFrame: _frame_set,
    LocalSetFrame: _frame_local_set,
    GlobalSetFrame: _frame_global_set,
    DefineFrame: _frame_define,
}


def _step_value(machine: "Machine", task: Task, value: Any) -> None:
    """Out-of-line value delivery (kept for direct callers/tests; the
    scheduler's hot path inlines the frame cases in :func:`step`)."""
    frame = task.frames
    if frame is not None:
        task.frames = frame.next
        handler = _FRAME_DISPATCH.get(type(frame))
        if handler is None:  # pragma: no cover - defensive
            raise MachineError(f"unknown frame: {frame!r}")
        handler(machine, task, frame, value)
        return
    _deliver_through_link(machine, task, value)


def _deliver_through_link(machine: "Machine", task: Task, value: Any) -> None:
    # Segment exhausted: deliver through the link.
    link = task.link
    if isinstance(link, HaltLink):
        task.state = TaskState.DEAD
        if link.placeholder is not None:
            link.placeholder.resolve(machine, value)
        else:
            machine.halt(value)
        return
    if isinstance(link, LabelLink):
        # Normal return from a process: the root is removed (the
        # controller becomes invalid, structurally) and the value flows
        # into the continuation above.
        task.frames = link.cont_frames
        task.link = link.cont_link  # type: ignore[assignment]
        replace_child(task.link, task)
        machine.notify_label_pop(link)
        return
    if isinstance(link, ForkLink):
        join = link.join
        index = link.index
        if join.delivered[index]:
            raise ControlError(
                "a value arrived twice at the same pcall branch — a "
                "traditional continuation crossed a completed fork "
                "(Section 3's failure mode)"
            )
        join.slots[index] = value
        join.delivered[index] = True
        join.children[index] = None
        join.remaining -= 1
        task.state = TaskState.DEAD
        if join.remaining == 0:
            successor = Task(
                (APPLY, join.slots[0], list(join.slots[1:])),
                task.env,
                join.cont_frames,
                join.cont_link,  # type: ignore[arg-type]
            )
            replace_child(join.cont_link, successor)  # type: ignore[arg-type]
            machine.spawn_task(successor)
            machine.notify_join_fire(join)
        return
    raise MachineError(f"unknown link: {link!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# APPLY
# ---------------------------------------------------------------------------


def apply_procedure(machine: "Machine", task: Task, fn: Any, args: list[Any]) -> None:
    """Apply ``fn`` to ``args`` in ``task``."""
    kind = type(fn)
    if kind is Closure:
        fn.check_arity(len(args))
        nslots = fn.nslots
        if nslots is not None:
            # Resolved body: one flat rib of exactly nslots slots (the
            # arity check above guarantees len(args) matches).  Thunks
            # (nslots == 0) reuse the captured environment outright.
            if nslots:
                if fn.rest is None:
                    values = args
                else:
                    nparams = len(fn.params)
                    values = args[:nparams]
                    values.append(from_pylist(args[nparams:]))
                task.env = SlotRib(values, fn.env)
            else:
                task.env = fn.env
            task.control = (EVAL, fn.body)
            return
        nparams = len(fn.params)
        bindings = dict(zip(fn.params, args))
        if fn.rest is not None:
            bindings[fn.rest] = from_pylist(args[nparams:])
        task.env = Environment(bindings, fn.env, fn.env.globals)
        task.control = (EVAL, fn.body)
        return
    if kind is Primitive:
        task.control = (VALUE, fn.apply(args))
        return
    if kind is ControlPrimitive:
        fn.apply(machine, task, args)
        return
    machine_apply = getattr(fn, "machine_apply", None)
    if machine_apply is not None:
        machine_apply(machine, task, args)
        return
    raise WrongTypeError(f"attempt to apply non-procedure: {fn!r}")
