"""The run loops and the single-task steppers.

The machine's transition relation is unchanged from the seed — the
three control shapes are:

* ``(EVAL, node)`` — decompose an IR node, pushing frames;
* ``(VALUE, v)`` — deliver a value to the top frame, or through the
  segment's link when the segment is empty;
* ``(APPLY, fn, args)`` — apply a procedure value.

What changed is *where the registers live while the machine runs*.
``run_quantum(machine, task, budget)`` (tree-walking engines) and
``run_quantum_compiled`` (compiled engine) execute up to ``budget``
transitions in one Python frame, holding the control registers — and,
for the tree loop, ``task.frames``/``task.env`` too — in Python
locals, writing them back to the :class:`~repro.machine.task.Task`
only at quantum exit.  This is the register-machine move of Biernacka,
Biernacki & Danvy: relocating state into locals without changing the
transition relation.  It eliminates the per-transition control-tuple
allocation and the per-step call/return through the scheduler's inner
loop.

The load-bearing design element is the **spill protocol** (see
docs/IMPLEMENTATION.md for the contract ``control/*.py`` authors must
follow).  Before any operation that can observe or mutate task state
from outside the loop, the loop spills its locals back into the task,
delegates, then reloads (or exits, if the task left the RUNNABLE
state).  Spill causes:

* a delegated application — :class:`ControlPrimitive` or
  :class:`MachineApplicable` (controllers, continuations), which may
  capture the task's frame chain or rewrite the tree;
* ``pcall`` forking and every other dispatch-table fallback;
* link delivery (``HaltLink``/``LabelLink``/``ForkLink`` — the
  control points);
* task suspension (futures' ``touch``) and quantum/budget exhaustion;
* an installed trace hook, which forces a spill before *every*
  transition so tracing observes exactly the per-step states the
  unbatched machine would produce.

One loop iteration is one observable machine step (apply never fuses
beyond what the PR-2 compiled stepper already fused), so preemption
fairness, step budgets, and the engine×policy differential matrix are
preserved transition-for-transition.

Transition functions follow a uniform **return convention**: they
return the next control pair ``(tag, payload)`` — never storing it —
or ``None``, meaning external surgery happened and the caller must
reload from the task (or stop, if the task is no longer runnable).
Code thunks built by :mod:`repro.ir.compile` follow the same
convention.

``step``/``step_compiled`` remain as the per-transition reference
steppers: ``Machine(batched=False)`` drives them one call per step
through :func:`run_quantum_stepped` — the PR-2 ablation baseline the
benchmarks A/B against — and they define the semantics the batched
loops must reproduce exactly.
"""

from __future__ import annotations

from types import FunctionType
from typing import TYPE_CHECKING, Any, Callable

from repro.datum import UNSPECIFIED, from_pylist
from repro.errors import (
    ControlError,
    MachineError,
    StepBudgetExceeded,
    UnboundVariableError,
    WrongTypeError,
)
from repro.ir import (
    App,
    Const,
    DefineTop,
    GlobalRef,
    GlobalSet,
    If,
    Lambda,
    LocalRef,
    LocalSet,
    Pcall,
    Seq,
    SetBang,
    Var,
)
from repro.machine.environment import UNBOUND, Environment, SlotRib
from repro.machine.frames import (
    AppFrame,
    DefineFrame,
    GlobalSetFrame,
    IfFrame,
    LocalSetFrame,
    SeqFrame,
    SetFrame,
)
from repro.machine.links import ForkLink, HaltLink, Join, LabelLink
from repro.machine.task import APPLY, EVAL, HOLE, VALUE, Task, TaskState
from repro.machine.tree import replace_child
from repro.machine.values import (
    Closure,
    ControlPrimitive,
    MachineApplicable,
    Primitive,
    check_arity,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.scheduler import Machine

__all__ = [
    "step",
    "step_compiled",
    "run_quantum",
    "run_quantum_compiled",
    "run_quantum_stepped",
    "apply_procedure",
    "apply_deliver",
]

_RUNNABLE = TaskState.RUNNABLE

#: Sentinel: a node is not trivially evaluable in place.
_NOT_TRIVIAL = object()


def _trivial_eval(node: Any, env: Any) -> Any:
    """Evaluate a *trivial* resolved node — one whose evaluation cannot
    push frames, fork, capture, or observe the scheduler — or return
    ``_NOT_TRIVIAL``.

    Only the resolver's dialect folds (``LocalRef``/``GlobalRef``/
    ``Const``/resolved ``Lambda``): the compile stage is what
    guarantees a reference is one slot read or one cell read, so
    applications can consume such operands without spending a machine
    step each.  The unresolved dialect (``Var``) falls through, keeping
    the dict-chain baseline's step-for-step seed behaviour.
    """
    kind = type(node)
    if kind is LocalRef:
        depth = node.depth
        while depth:
            env = env.parent
            depth -= 1
        return env.values[node.index]
    if kind is GlobalRef:
        value = node.cell.value
        if value is UNBOUND:
            raise UnboundVariableError(node.cell.name.name)
        return value
    if kind is Const:
        return node.value
    if kind is Lambda and node.nslots is not None:
        return Closure(
            node.params, node.rest, node.body, env, node.name, node.nslots, node.effects
        )
    return _NOT_TRIVIAL


# ---------------------------------------------------------------------------
# The quantum-batched run loops
# ---------------------------------------------------------------------------


def run_quantum(
    machine: "Machine",
    task: Task,
    budget: int,
    *,
    # Keyword-only defaults bind the hot globals as locals (LOAD_FAST
    # instead of LOAD_GLOBAL on every transition); callers never pass
    # them.
    EVAL: Any = EVAL,
    VALUE: Any = VALUE,
    APPLY: Any = APPLY,
    _RUNNABLE: Any = _RUNNABLE,
    _NOT_TRIVIAL: Any = _NOT_TRIVIAL,
    AppFrame: Any = AppFrame,
    IfFrame: Any = IfFrame,
    LocalRef: Any = LocalRef,
    GlobalRef: Any = GlobalRef,
    Var: Any = Var,
    App: Any = App,
    If: Any = If,
    Const: Any = Const,
    Closure: Any = Closure,
    Primitive: Any = Primitive,
) -> int:
    """Run ``task`` for up to ``budget`` transitions on a tree-walking
    machine (dict and resolved engines); return the number taken.

    Control tag/payload, the frame chain and the environment live in
    locals; the spill protocol (module docstring) writes them back to
    the task at every delegation and at quantum exit.
    """
    base_total = machine.steps_total
    base_steps = task.steps
    profile = machine.profile
    vm = machine.vm_stats
    fold = machine.fold
    # Hooks are installed between runs (trace.py, invariants.py), never
    # by a transition, so one read per quantum suffices.
    hook = machine.trace_hook
    tag = task.tag
    payload = task.payload
    frames = task.frames
    env = task.env
    steps = 0
    spills = 0
    try:
        while steps < budget:
            if hook is not None:
                task.tag = tag
                task.payload = payload
                task.frames = frames
                task.env = env
                machine.steps_total = base_total + steps
                task.steps = base_steps + steps
                hook(machine, task)
                tag = task.tag
                payload = task.payload
                frames = task.frames
                env = task.env
                spills += 1
                if profile:
                    vm["vm_spill_trace"] += 1
            steps += 1
            fn = _NOT_TRIVIAL  # set when a path below falls through to apply
            if tag is EVAL:
                node = payload
                kind = node.__class__
                if kind is LocalRef:
                    rib = env
                    depth = node.depth
                    while depth:
                        rib = rib.parent
                        depth -= 1
                    tag = VALUE
                    payload = rib.values[node.index]
                    continue
                if kind is GlobalRef:
                    value = node.cell.value
                    if value is UNBOUND:
                        raise UnboundVariableError(node.cell.name.name)
                    tag = VALUE
                    payload = value
                    continue
                if kind is Var:
                    tag = VALUE
                    payload = env.lookup(node.name)
                    continue
                if kind is App:
                    if fold:
                        fnval = _trivial_eval(node.fn, env)
                        if fnval is not _NOT_TRIVIAL:
                            arg_nodes = node.args
                            done = [fnval]
                            index = 0
                            nargs = len(arg_nodes)
                            while index < nargs:
                                value = _trivial_eval(arg_nodes[index], env)
                                if value is _NOT_TRIVIAL:
                                    break
                                done.append(value)
                                index += 1
                            if index == nargs:
                                fn = fnval
                                args = done[1:]
                                # falls through to the apply block
                            else:
                                frames = AppFrame(
                                    tuple(done), arg_nodes[index + 1 :], env, frames
                                )
                                tag = EVAL
                                payload = arg_nodes[index]
                                continue
                        else:
                            frames = AppFrame((), node.args, env, frames)
                            tag = EVAL
                            payload = node.fn
                            continue
                    else:
                        frames = AppFrame((), node.args, env, frames)
                        tag = EVAL
                        payload = node.fn
                        continue
                elif kind is If:
                    frames = IfFrame(node.then, node.els, env, frames)
                    tag = EVAL
                    payload = node.test
                    continue
                elif kind is Const:
                    tag = VALUE
                    payload = node.value
                    continue
                else:
                    # Dispatch-table fallback (Lambda, Seq, sets, define,
                    # pcall, cross-engine code thunks): spill, delegate,
                    # reload.
                    handler = _EVAL_DISPATCH.get(kind)
                    if handler is None:
                        raise MachineError(f"cannot evaluate IR node: {node!r}")
                    task.tag = tag
                    task.payload = payload
                    task.frames = frames
                    task.env = env
                    result = handler(machine, task, node)
                    spills += 1
                    if profile:
                        vm["vm_spill_fallback"] += 1
                    if task.state is not _RUNNABLE:
                        return steps
                    frames = task.frames
                    env = task.env
                    if result is None:
                        tag = task.tag
                        payload = task.payload
                    else:
                        tag, payload = result
                    continue
            elif tag is VALUE:
                value = payload
                frame = frames
                if frame is not None:
                    fkind = frame.__class__
                    if fkind is AppFrame:
                        frames = frame.next
                        done = frame.done + (value,)
                        pending = frame.pending
                        if fold:
                            env = frame.env
                            index = 0
                            npend = len(pending)
                            if npend:
                                folded = None
                                while index < npend:
                                    operand = _trivial_eval(pending[index], env)
                                    if operand is _NOT_TRIVIAL:
                                        break
                                    if folded is None:
                                        folded = [operand]
                                    else:
                                        folded.append(operand)
                                    index += 1
                                if folded is not None:
                                    done = done + tuple(folded)
                            if index == npend:
                                fn = done[0]
                                args = list(done[1:])
                                # falls through to the apply block
                            else:
                                frames = AppFrame(
                                    done, pending[index + 1 :], env, frames
                                )
                                tag = EVAL
                                payload = pending[index]
                                continue
                        elif pending:
                            env = frame.env
                            frames = AppFrame(done, pending[1:], env, frames)
                            tag = EVAL
                            payload = pending[0]
                            continue
                        else:
                            tag = APPLY
                            payload = (done[0], list(done[1:]))
                            continue
                    elif fkind is IfFrame:
                        frames = frame.next
                        env = frame.env
                        tag = EVAL
                        payload = frame.then if value is not False else frame.els
                        continue
                    else:
                        handler = _FRAME_DISPATCH.get(fkind)
                        if handler is None:  # pragma: no cover - defensive
                            raise MachineError(f"unknown frame: {frame!r}")
                        task.tag = tag
                        task.payload = payload
                        task.frames = frame.next
                        task.env = env
                        result = handler(machine, task, frame, value)
                        spills += 1
                        if profile:
                            vm["vm_spill_fallback"] += 1
                        if task.state is not _RUNNABLE:
                            return steps
                        frames = task.frames
                        env = task.env
                        if result is None:
                            tag = task.tag
                            payload = task.payload
                        else:
                            tag, payload = result
                        continue
                else:
                    # Segment exhausted: deliver through the link (a
                    # control point — always a spill).
                    task.tag = tag
                    task.payload = payload
                    task.frames = frames
                    task.env = env
                    _deliver_through_link(machine, task, value)
                    spills += 1
                    if profile:
                        vm["vm_spill_control"] += 1
                    if task.state is not _RUNNABLE:
                        return steps
                    frames = task.frames
                    env = task.env
                    continue  # tag/payload still (VALUE, value): label pop
            elif tag is APPLY:
                fn_args = payload
                fn = fn_args[0]
                args = fn_args[1]
                # falls through to the apply block
            elif tag is HOLE:  # pragma: no cover - scheduler never runs holes
                raise MachineError(
                    "attempted to step the hole of a captured continuation"
                )
            else:  # pragma: no cover - defensive
                raise MachineError(f"unknown control tag: {tag!r}")

            # -- the apply block (reached by falling through) -----------
            fcls = fn.__class__
            if fcls is Primitive:
                tag = VALUE
                payload = fn.apply(args)
                continue
            if fcls is Closure:
                tag, payload = apply_procedure(machine, task, fn, args)
                env = task.env
                continue
            task.tag = tag
            task.payload = payload
            task.frames = frames
            task.env = env
            result = apply_procedure(machine, task, fn, args)
            spills += 1
            if profile:
                vm["vm_spill_apply"] += 1
            if task.state is not _RUNNABLE:
                return steps
            frames = task.frames
            env = task.env
            if result is None:
                tag = task.tag
                payload = task.payload
            else:
                tag, payload = result
        # Budget exhausted with the task still runnable: spill and hand
        # the registers back to the scheduler.
        task.tag = tag
        task.payload = payload
        task.frames = frames
        task.env = env
        spills += 1
        return steps
    finally:
        machine.steps_total = base_total + steps
        task.steps = base_steps + steps
        if profile:
            vm["vm_quanta"] += 1
            vm["vm_quantum_steps"] += steps
            avoided = steps - spills
            if avoided > 0:
                vm["vm_allocations_avoided"] += avoided
            if task.state is _RUNNABLE:
                vm["vm_spill_budget"] += 1
            else:
                vm["vm_spill_suspend"] += 1


def run_quantum_compiled(
    machine: "Machine",
    task: Task,
    budget: int,
    *,
    # Keyword-only defaults bind the hot globals as locals (LOAD_FAST
    # instead of LOAD_GLOBAL on every transition); callers never pass
    # them.
    EVAL: Any = EVAL,
    VALUE: Any = VALUE,
    APPLY: Any = APPLY,
    FunctionType: Any = FunctionType,
    _RUNNABLE: Any = _RUNNABLE,
    AppFrame: Any = AppFrame,
    IfFrame: Any = IfFrame,
    SeqFrame: Any = SeqFrame,
    Closure: Any = Closure,
    Primitive: Any = Primitive,
    SlotRib: Any = SlotRib,
) -> int:
    """Run ``task`` for up to ``budget`` transitions on a compiled
    machine; return the number taken.

    The control tag/payload live in locals; frames and environment stay
    on the task because the code thunks read and push them directly
    (the thunks *are* inside the loop's trust boundary — they follow
    the same return convention).  The EVAL arm is one indirect call;
    the VALUE arm inlines AppFrame/IfFrame/SeqFrame delivery with the
    closure/primitive apply fast path (precomputed arity windows).
    """
    base_total = machine.steps_total
    base_steps = task.steps
    profile = machine.profile
    vm = machine.vm_stats
    hook = machine.trace_hook  # installed between runs only; see run_quantum
    tag = task.tag
    payload = task.payload
    steps = 0
    spills = 0
    try:
        while steps < budget:
            if hook is not None:
                task.tag = tag
                task.payload = payload
                machine.steps_total = base_total + steps
                task.steps = base_steps + steps
                hook(machine, task)
                tag = task.tag
                payload = task.payload
                spills += 1
                if profile:
                    vm["vm_spill_trace"] += 1
            steps += 1
            if tag is EVAL:
                code = payload
                if code.__class__ is FunctionType:
                    result = code(machine, task)
                    if result is not None:
                        tag, payload = result
                        continue
                    # External surgery inside the thunk (pcall fork,
                    # control primitive via apply_deliver).
                    spills += 1
                    if profile:
                        vm["vm_spill_control"] += 1
                    if task.state is not _RUNNABLE:
                        return steps
                    tag = task.tag
                    payload = task.payload
                    continue
                # Raw-IR fallback: nodes from begin_eval or another
                # engine's closures.
                handler = _EVAL_DISPATCH.get(code.__class__)
                if handler is None:
                    raise MachineError(f"cannot evaluate IR node: {code!r}")
                task.tag = tag
                task.payload = payload
                result = handler(machine, task, code)
                spills += 1
                if profile:
                    vm["vm_spill_fallback"] += 1
                if task.state is not _RUNNABLE:
                    return steps
                if result is None:
                    tag = task.tag
                    payload = task.payload
                else:
                    tag, payload = result
                continue
            if tag is VALUE:
                value = payload
                frame = task.frames
                if frame is not None:
                    fkind = frame.__class__
                    if fkind is AppFrame:
                        task.frames = frame.next
                        done = frame.done + (value,)
                        pending = frame.pending
                        env = frame.env
                        index = 0
                        npend = len(pending)
                        if npend:
                            folded = None
                            while index < npend:
                                code = pending[index]
                                if code.__class__ is not FunctionType:
                                    break
                                triv = code.triv
                                if triv is None:
                                    break
                                if folded is None:
                                    folded = [triv(env)]
                                else:
                                    folded.append(triv(env))
                                index += 1
                            if folded is not None:
                                done = done + tuple(folded)
                        if index == npend:
                            fn = done[0]
                            args = list(done[1:])
                            fcls = fn.__class__
                            if fcls is Closure:
                                nargs = len(args)
                                if nargs < fn.low or (
                                    fn.high is not None and nargs > fn.high
                                ):
                                    fn.check_arity(nargs)
                                nslots = fn.nslots
                                if nslots is not None:
                                    if nslots:
                                        if fn.rest is None:
                                            values = args
                                        else:
                                            nparams = fn.low
                                            values = args[:nparams]
                                            values.append(
                                                from_pylist(args[nparams:])
                                            )
                                        task.env = SlotRib(values, fn.env)
                                    else:
                                        task.env = fn.env
                                    tag = EVAL
                                    payload = fn.body
                                    continue
                                # Cross-engine closure with a dict rib.
                                bindings = dict(zip(fn.params, args))
                                if fn.rest is not None:
                                    bindings[fn.rest] = from_pylist(args[fn.low :])
                                task.env = Environment(
                                    bindings, fn.env, fn.env.globals
                                )
                                tag = EVAL
                                payload = fn.body
                                continue
                            if fcls is Primitive:
                                nargs = len(args)
                                if nargs < fn.low or (
                                    fn.high is not None and nargs > fn.high
                                ):
                                    check_arity(fn.name, nargs, fn.low, fn.high)
                                tag = VALUE
                                payload = fn.fn(*args)
                                continue
                            # Controllers/continuations: spill, delegate.
                            task.tag = tag
                            task.payload = payload
                            result = apply_procedure(machine, task, fn, args)
                            spills += 1
                            if profile:
                                vm["vm_spill_apply"] += 1
                            if task.state is not _RUNNABLE:
                                return steps
                            if result is None:
                                tag = task.tag
                                payload = task.payload
                            else:
                                tag, payload = result
                            continue
                        following = pending[index]
                        task.frames = AppFrame(
                            done, pending[index + 1 :], env, task.frames
                        )
                        task.env = env
                        if following.__class__ is FunctionType:
                            result = following(machine, task)
                            if result is not None:
                                tag, payload = result
                                continue
                            spills += 1
                            if profile:
                                vm["vm_spill_control"] += 1
                            if task.state is not _RUNNABLE:
                                return steps
                            tag = task.tag
                            payload = task.payload
                            continue
                        tag = EVAL
                        payload = following
                        continue
                    if fkind is IfFrame:
                        task.frames = frame.next
                        task.env = frame.env
                        branch = frame.then if value is not False else frame.els
                        if branch.__class__ is FunctionType:
                            result = branch(machine, task)
                            if result is not None:
                                tag, payload = result
                                continue
                            spills += 1
                            if profile:
                                vm["vm_spill_control"] += 1
                            if task.state is not _RUNNABLE:
                                return steps
                            tag = task.tag
                            payload = task.payload
                            continue
                        tag = EVAL
                        payload = branch
                        continue
                    if fkind is SeqFrame:
                        remaining = frame.remaining
                        task.frames = frame.next
                        if len(remaining) > 1:
                            task.frames = SeqFrame(
                                remaining[1:], frame.env, task.frames
                            )
                        task.env = frame.env
                        following = remaining[0]
                        if following.__class__ is FunctionType:
                            result = following(machine, task)
                            if result is not None:
                                tag, payload = result
                                continue
                            spills += 1
                            if profile:
                                vm["vm_spill_control"] += 1
                            if task.state is not _RUNNABLE:
                                return steps
                            tag = task.tag
                            payload = task.payload
                            continue
                        tag = EVAL
                        payload = following
                        continue
                    handler = _FRAME_DISPATCH.get(fkind)
                    if handler is None:  # pragma: no cover - defensive
                        raise MachineError(f"unknown frame: {frame!r}")
                    task.tag = tag
                    task.payload = payload
                    task.frames = frame.next
                    result = handler(machine, task, frame, value)
                    spills += 1
                    if profile:
                        vm["vm_spill_fallback"] += 1
                    if task.state is not _RUNNABLE:
                        return steps
                    if result is None:
                        tag = task.tag
                        payload = task.payload
                    else:
                        tag, payload = result
                    continue
                # Segment exhausted: link delivery (a control point).
                task.tag = tag
                task.payload = payload
                _deliver_through_link(machine, task, value)
                spills += 1
                if profile:
                    vm["vm_spill_control"] += 1
                if task.state is not _RUNNABLE:
                    return steps
                continue  # tag/payload still (VALUE, value): label pop
            if tag is APPLY:
                fn_args = payload
                task.tag = tag
                task.payload = payload
                result = apply_procedure(machine, task, fn_args[0], fn_args[1])
                spills += 1
                if profile:
                    vm["vm_spill_apply"] += 1
                if task.state is not _RUNNABLE:
                    return steps
                if result is None:
                    tag = task.tag
                    payload = task.payload
                else:
                    tag, payload = result
                continue
            if tag is HOLE:  # pragma: no cover - scheduler never runs holes
                raise MachineError(
                    "attempted to step the hole of a captured continuation"
                )
            raise MachineError(f"unknown control tag: {tag!r}")
        task.tag = tag
        task.payload = payload
        spills += 1
        return steps
    finally:
        machine.steps_total = base_total + steps
        task.steps = base_steps + steps
        if profile:
            vm["vm_quanta"] += 1
            vm["vm_quantum_steps"] += steps
            avoided = steps - spills
            if avoided > 0:
                vm["vm_allocations_avoided"] += avoided
            if task.state is _RUNNABLE:
                vm["vm_spill_budget"] += 1
            else:
                vm["vm_spill_suspend"] += 1


def run_quantum_stepped(machine: "Machine", task: Task, budget: int) -> int:
    """The unbatched ablation driver (``Machine(batched=False)``): one
    reference-stepper call per transition, faithfully reproducing the
    PR-2 scheduler's inner loop — per-step call/return through the
    stepper, per-step control-register write-back, and per-step
    ``steps_total``/``max_steps``/halt bookkeeping on the machine.
    The benchmarks A/B the batched loops against this path.
    """
    step_fn = machine._step_fn
    no_halt = machine.halt_value  # _NO_HALT while a tree is running
    steps = 0
    while task.state is TaskState.RUNNABLE:
        if machine.trace_hook is not None:
            machine.trace_hook(machine, task)
        step_fn(machine, task)
        machine.steps_total += 1
        task.steps += 1
        steps += 1  # plays the role of step_n's old ``remaining -= 1``
        if (
            machine.max_steps is not None
            and machine.steps_total > machine.max_steps
        ):  # pragma: no cover - step_n clamps the budget first
            raise StepBudgetExceeded(machine.steps_total)
        if machine.halt_value is not no_halt:
            break
        budget -= 1
        if budget <= 0:
            break
    return steps


# ---------------------------------------------------------------------------
# The per-transition reference steppers
# ---------------------------------------------------------------------------


def step(machine: "Machine", task: Task) -> None:
    """Advance ``task`` by one transition (tree-walking engines).

    The hottest cases — variable reference, constant, application and
    conditional decomposition, and frame-ful value delivery — are
    inlined here; everything else goes through the dispatch tables.
    """
    tag = task.tag
    if tag is EVAL:
        node = task.payload
        kind = node.__class__
        if kind is LocalRef:
            env = task.env
            depth = node.depth
            while depth:
                env = env.parent
                depth -= 1
            task.tag = VALUE
            task.payload = env.values[node.index]
            return
        if kind is GlobalRef:
            value = node.cell.value
            if value is UNBOUND:
                raise UnboundVariableError(node.cell.name.name)
            task.tag = VALUE
            task.payload = value
            return
        if kind is Var:
            task.tag = VALUE
            task.payload = task.env.lookup(node.name)
            return
        if kind is App:
            env = task.env
            if machine.fold:
                fnval = _trivial_eval(node.fn, env)
                if fnval is not _NOT_TRIVIAL:
                    args = node.args
                    done = [fnval]
                    index = 0
                    nargs = len(args)
                    while index < nargs:
                        value = _trivial_eval(args[index], env)
                        if value is _NOT_TRIVIAL:
                            break
                        done.append(value)
                        index += 1
                    if index == nargs:
                        result = machine._apply_procedure(machine, task, fnval, done[1:])
                        if result is not None:
                            task.tag, task.payload = result
                        return
                    task.frames = AppFrame(
                        tuple(done), args[index + 1 :], env, task.frames
                    )
                    task.tag = EVAL
                    task.payload = args[index]
                    return
            task.frames = AppFrame((), node.args, env, task.frames)
            task.tag = EVAL
            task.payload = node.fn
            return
        if kind is If:
            task.frames = IfFrame(node.then, node.els, task.env, task.frames)
            task.tag = EVAL
            task.payload = node.test
            return
        if kind is Const:
            task.tag = VALUE
            task.payload = node.value
            return
        handler = _EVAL_DISPATCH.get(kind)
        if handler is None:
            raise MachineError(f"cannot evaluate IR node: {node!r}")
        result = handler(machine, task, node)
        if result is not None:
            task.tag, task.payload = result
    elif tag is VALUE:
        value = task.payload
        frame = task.frames
        if frame is not None:
            task.frames = frame.next
            fkind = frame.__class__
            if fkind is AppFrame:
                done = frame.done + (value,)
                pending = frame.pending
                if machine.fold:
                    env = frame.env
                    index = 0
                    npend = len(pending)
                    if npend:
                        folded = None
                        while index < npend:
                            operand = _trivial_eval(pending[index], env)
                            if operand is _NOT_TRIVIAL:
                                break
                            if folded is None:
                                folded = [operand]
                            else:
                                folded.append(operand)
                            index += 1
                        if folded is not None:
                            done = done + tuple(folded)
                    if index == npend:
                        result = machine._apply_procedure(
                            machine, task, done[0], list(done[1:])
                        )
                        if result is not None:
                            task.tag, task.payload = result
                        return
                    task.frames = AppFrame(done, pending[index + 1 :], env, task.frames)
                    task.env = env
                    task.tag = EVAL
                    task.payload = pending[index]
                    return
                if pending:
                    task.frames = AppFrame(done, pending[1:], frame.env, task.frames)
                    task.env = frame.env
                    task.tag = EVAL
                    task.payload = pending[0]
                else:
                    task.tag = APPLY
                    task.payload = (done[0], list(done[1:]))
                return
            if fkind is IfFrame:
                task.env = frame.env
                task.tag = EVAL
                task.payload = frame.then if value is not False else frame.els
                return
            handler = _FRAME_DISPATCH.get(fkind)
            if handler is None:  # pragma: no cover - defensive
                raise MachineError(f"unknown frame: {frame!r}")
            result = handler(machine, task, frame, value)
            if result is not None:
                task.tag, task.payload = result
            return
        _deliver_through_link(machine, task, value)
    elif tag is APPLY:
        fn_args = task.payload
        result = machine._apply_procedure(machine, task, fn_args[0], fn_args[1])
        if result is not None:
            task.tag, task.payload = result
    elif tag is HOLE:  # pragma: no cover - scheduler never runs holes
        raise MachineError("attempted to step the hole of a captured continuation")
    else:  # pragma: no cover - defensive
        raise MachineError(f"unknown control tag: {tag!r}")


def step_compiled(machine: "Machine", task: Task) -> None:
    """Advance ``task`` by one transition on a compiled-engine machine.

    ``(EVAL, code)`` invokes the code thunk directly; a thunk may fuse
    several node transitions (trivial operands, branch jumps) into this
    one step, but never recurses through ``apply_procedure`` — an
    application always ends the step, so loops cost at least one step
    per iteration and quantum preemption is preserved.  ``(EVAL,
    node)`` with a plain IR node falls back to the shared dispatch
    table.
    """
    tag = task.tag
    if tag is EVAL:
        target = task.payload
        if target.__class__ is FunctionType:
            result = target(machine, task)
            if result is not None:
                task.tag, task.payload = result
            return
        handler = _EVAL_DISPATCH.get(target.__class__)
        if handler is None:
            raise MachineError(f"cannot evaluate IR node: {target!r}")
        result = handler(machine, task, target)
        if result is not None:
            task.tag, task.payload = result
    elif tag is VALUE:
        value = task.payload
        frame = task.frames
        if frame is not None:
            task.frames = frame.next
            frame_kind = frame.__class__
            if frame_kind is AppFrame:
                done = frame.done + (value,)
                pending = frame.pending
                env = frame.env
                index = 0
                npend = len(pending)
                if npend:
                    folded = None
                    while index < npend:
                        code = pending[index]
                        if code.__class__ is not FunctionType:
                            break
                        triv = code.triv
                        if triv is None:
                            break
                        if folded is None:
                            folded = [triv(env)]
                        else:
                            folded.append(triv(env))
                        index += 1
                    if folded is not None:
                        done = done + tuple(folded)
                if index == npend:
                    result = machine._apply_procedure(
                        machine, task, done[0], list(done[1:])
                    )
                    if result is not None:
                        task.tag, task.payload = result
                    return
                following = pending[index]
                task.frames = AppFrame(done, pending[index + 1 :], env, task.frames)
                task.env = env
                if following.__class__ is FunctionType:
                    result = following(machine, task)
                    if result is not None:
                        task.tag, task.payload = result
                else:
                    task.tag = EVAL
                    task.payload = following
                return
            if frame_kind is IfFrame:
                task.env = frame.env
                branch = frame.then if value is not False else frame.els
                if branch.__class__ is FunctionType:
                    result = branch(machine, task)
                    if result is not None:
                        task.tag, task.payload = result
                else:
                    task.tag = EVAL
                    task.payload = branch
                return
            if frame_kind is SeqFrame:
                remaining = frame.remaining
                if len(remaining) > 1:
                    task.frames = SeqFrame(remaining[1:], frame.env, task.frames)
                task.env = frame.env
                following = remaining[0]
                if following.__class__ is FunctionType:
                    result = following(machine, task)
                    if result is not None:
                        task.tag, task.payload = result
                else:
                    task.tag = EVAL
                    task.payload = following
                return
            handler = _FRAME_DISPATCH.get(frame_kind)
            if handler is None:  # pragma: no cover - defensive
                raise MachineError(f"unknown frame: {frame!r}")
            result = handler(machine, task, frame, value)
            if result is not None:
                task.tag, task.payload = result
            return
        _deliver_through_link(machine, task, value)
    elif tag is APPLY:
        fn_args = task.payload
        result = machine._apply_procedure(machine, task, fn_args[0], fn_args[1])
        if result is not None:
            task.tag, task.payload = result
    elif tag is HOLE:  # pragma: no cover - scheduler never runs holes
        raise MachineError("attempted to step the hole of a captured continuation")
    else:  # pragma: no cover - defensive
        raise MachineError(f"unknown control tag: {tag!r}")


def apply_deliver(
    machine: "Machine", task: Task, fn: Any, args: list[Any]
) -> tuple[Any, Any] | None:
    """Compiled-engine apply with primitive-result delivery fused in.

    Used by code thunks for fully trivial applications: when ``fn``
    turns out to be a :class:`Primitive`, its result is delivered
    through at most *one* frame within the same step — the common
    ``(op ... (prim ...) ...)`` shape costs one step instead of two.
    The delivery never invokes another code thunk and the post-pop
    apply is the plain one, so at most one extra transition fuses here:
    per-step work stays bounded by static expression size, and a return
    cascade through dynamically accumulated frames still costs one step
    per frame.  Everything that is not a ``Primitive`` (closures,
    control primitives, continuations) takes :func:`apply_procedure`
    unchanged.  Follows the transition return convention.
    """
    if fn.__class__ is not Primitive:
        return apply_procedure(machine, task, fn, args)
    nargs = len(args)
    if nargs < fn.low or (fn.high is not None and nargs > fn.high):
        check_arity(fn.name, nargs, fn.low, fn.high)
    value = fn.fn(*args)
    frame = task.frames
    if frame is None:
        return (VALUE, value)
    frame_kind = frame.__class__
    if frame_kind is AppFrame:
        task.frames = frame.next
        done = frame.done + (value,)
        pending = frame.pending
        env = frame.env
        index = 0
        npend = len(pending)
        if npend:
            folded = None
            while index < npend:
                code = pending[index]
                if code.__class__ is not FunctionType:
                    break
                triv = code.triv
                if triv is None:
                    break
                if folded is None:
                    folded = [triv(env)]
                else:
                    folded.append(triv(env))
                index += 1
            if folded is not None:
                done = done + tuple(folded)
        if index == npend:
            return apply_procedure(machine, task, done[0], list(done[1:]))
        task.frames = AppFrame(done, pending[index + 1 :], env, task.frames)
        task.env = env
        return (EVAL, pending[index])
    if frame_kind is IfFrame:
        task.frames = frame.next
        task.env = frame.env
        return (EVAL, frame.then if value is not False else frame.els)
    return (VALUE, value)


# ---------------------------------------------------------------------------
# EVAL — one handler per node type, dispatched by type
# ---------------------------------------------------------------------------
#
# Handlers follow the transition return convention: they return the
# next (tag, payload) pair, or None after external surgery (pcall).
# They may read and mutate task.frames/task.env — callers on the
# batched loops spill those registers first.


def _eval_const(machine: "Machine", task: Task, node: Const):
    return (VALUE, node.value)


def _eval_var(machine: "Machine", task: Task, node: Var):
    return (VALUE, task.env.lookup(node.name))


def _eval_local_ref(machine: "Machine", task: Task, node: LocalRef):
    env = task.env
    depth = node.depth
    while depth:
        env = env.parent
        depth -= 1
    return (VALUE, env.values[node.index])


def _eval_global_ref(machine: "Machine", task: Task, node: GlobalRef):
    value = node.cell.value
    if value is UNBOUND:
        raise UnboundVariableError(node.cell.name.name)
    return (VALUE, value)


def _eval_lambda(machine: "Machine", task: Task, node: Lambda):
    return (
        VALUE,
        Closure(
            node.params,
            node.rest,
            node.body,
            task.env,
            node.name,
            node.nslots,
            node.effects,
        ),
    )


def _eval_app(machine: "Machine", task: Task, node: App):
    env = task.env
    if machine.fold:
        fnval = _trivial_eval(node.fn, env)
        if fnval is not _NOT_TRIVIAL:
            args = node.args
            done = [fnval]
            index = 0
            nargs = len(args)
            while index < nargs:
                value = _trivial_eval(args[index], env)
                if value is _NOT_TRIVIAL:
                    break
                done.append(value)
                index += 1
            if index == nargs:
                return apply_procedure(machine, task, fnval, done[1:])
            task.frames = AppFrame(tuple(done), args[index + 1 :], env, task.frames)
            return (EVAL, args[index])
    task.frames = AppFrame((), node.args, env, task.frames)
    return (EVAL, node.fn)


def _eval_if(machine: "Machine", task: Task, node: If):
    task.frames = IfFrame(node.then, node.els, task.env, task.frames)
    return (EVAL, node.test)


def _eval_seq(machine: "Machine", task: Task, node: Seq):
    exprs = node.exprs
    if len(exprs) > 1:
        task.frames = SeqFrame(exprs[1:], task.env, task.frames)
    return (EVAL, exprs[0])


def _eval_set(machine: "Machine", task: Task, node: SetBang):
    task.frames = SetFrame(node.name, task.env, task.frames)
    return (EVAL, node.expr)


def _eval_local_set(machine: "Machine", task: Task, node: LocalSet):
    task.frames = LocalSetFrame(node.depth, node.index, task.env, task.frames)
    return (EVAL, node.expr)


def _eval_global_set(machine: "Machine", task: Task, node: GlobalSet):
    task.frames = GlobalSetFrame(node.cell, task.frames)
    return (EVAL, node.expr)


def _eval_define(machine: "Machine", task: Task, node: DefineTop):
    task.frames = DefineFrame(node.name, task.env, task.frames)
    return (EVAL, node.expr)


def _eval_pcall(machine: "Machine", task: Task, node: Pcall):
    """Fork: the task's position is taken over by a Join; one fresh
    branch task per subexpression."""
    join = Join(len(node.exprs), task.frames, task.link)
    replace_child(task.link, join)
    task.state = TaskState.DEAD
    for index, expr in enumerate(node.exprs):
        branch = Task((EVAL, expr), task.env, None, ForkLink(join, index))
        join.children[index] = branch
        machine.spawn_task(branch)
    machine.notify_fork(join)
    return None


def _eval_code(machine: "Machine", task: Task, code: Any):
    """Cross-engine shim: a compiled code thunk reached a tree-walking
    machine (a closure built on a compiled machine, applied here).  The
    caller has spilled the task's registers, which is exactly the state
    thunks run against, so delegating is all it takes."""
    return code(machine, task)


_EVAL_DISPATCH: dict[type, Callable[["Machine", Task, Any], Any]] = {
    Const: _eval_const,
    Var: _eval_var,
    LocalRef: _eval_local_ref,
    GlobalRef: _eval_global_ref,
    Lambda: _eval_lambda,
    App: _eval_app,
    If: _eval_if,
    Seq: _eval_seq,
    SetBang: _eval_set,
    LocalSet: _eval_local_set,
    GlobalSet: _eval_global_set,
    DefineTop: _eval_define,
    Pcall: _eval_pcall,
    FunctionType: _eval_code,
}


# ---------------------------------------------------------------------------
# VALUE delivery — frame handlers dispatched by type
# ---------------------------------------------------------------------------
#
# Same return convention as the EVAL handlers.  The caller has already
# popped the frame (task.frames = frame.next).


def _frame_app(machine: "Machine", task: Task, frame: AppFrame, value: Any):
    done = frame.done + (value,)
    pending = frame.pending
    if machine.fold:
        env = frame.env
        index = 0
        npend = len(pending)
        if npend:
            folded = None
            while index < npend:
                operand = _trivial_eval(pending[index], env)
                if operand is _NOT_TRIVIAL:
                    break
                if folded is None:
                    folded = [operand]
                else:
                    folded.append(operand)
                index += 1
            if folded is not None:
                done = done + tuple(folded)
        if index == npend:
            return apply_procedure(machine, task, done[0], list(done[1:]))
        task.frames = AppFrame(done, pending[index + 1 :], env, task.frames)
        task.env = env
        return (EVAL, pending[index])
    if pending:
        task.frames = AppFrame(done, pending[1:], frame.env, task.frames)
        task.env = frame.env
        return (EVAL, pending[0])
    return (APPLY, (done[0], list(done[1:])))


def _frame_if(machine: "Machine", task: Task, frame: IfFrame, value: Any):
    task.env = frame.env
    return (EVAL, frame.then if value is not False else frame.els)


def _frame_seq(machine: "Machine", task: Task, frame: SeqFrame, value: Any):
    remaining = frame.remaining
    if len(remaining) > 1:
        task.frames = SeqFrame(remaining[1:], frame.env, task.frames)
    task.env = frame.env
    return (EVAL, remaining[0])


def _frame_set(machine: "Machine", task: Task, frame: SetFrame, value: Any):
    frame.env.assign(frame.name, value)
    return (VALUE, UNSPECIFIED)


def _frame_local_set(machine: "Machine", task: Task, frame: LocalSetFrame, value: Any):
    env = frame.env
    depth = frame.depth
    while depth:
        env = env.parent
        depth -= 1
    env.values[frame.index] = value
    return (VALUE, UNSPECIFIED)


def _frame_global_set(
    machine: "Machine", task: Task, frame: GlobalSetFrame, value: Any
):
    cell = frame.cell
    if cell.value is UNBOUND:
        raise UnboundVariableError(cell.name.name)
    cell.value = value
    return (VALUE, UNSPECIFIED)


def _frame_define(machine: "Machine", task: Task, frame: DefineFrame, value: Any):
    frame.env.globals.define(frame.name, value)
    return (VALUE, UNSPECIFIED)


_FRAME_DISPATCH: dict[type, Callable[["Machine", Task, Any, Any], Any]] = {
    AppFrame: _frame_app,
    IfFrame: _frame_if,
    SeqFrame: _frame_seq,
    SetFrame: _frame_set,
    LocalSetFrame: _frame_local_set,
    GlobalSetFrame: _frame_global_set,
    DefineFrame: _frame_define,
}


def _step_value(machine: "Machine", task: Task, value: Any) -> None:
    """Out-of-line value delivery (kept for direct callers/tests; the
    run loops inline the hot frame cases)."""
    frame = task.frames
    if frame is not None:
        task.frames = frame.next
        handler = _FRAME_DISPATCH.get(type(frame))
        if handler is None:  # pragma: no cover - defensive
            raise MachineError(f"unknown frame: {frame!r}")
        result = handler(machine, task, frame, value)
        if result is not None:
            task.tag, task.payload = result
        return
    _deliver_through_link(machine, task, value)


def _deliver_through_link(machine: "Machine", task: Task, value: Any) -> None:
    # Segment exhausted: deliver through the link.
    link = task.link
    if isinstance(link, HaltLink):
        task.state = TaskState.DEAD
        if link.placeholder is not None:
            link.placeholder.resolve(machine, value)
        else:
            machine.halt(value)
        return
    if isinstance(link, LabelLink):
        # Normal return from a process: the root is removed (the
        # controller becomes invalid, structurally) and the value flows
        # into the continuation above.
        task.frames = link.cont_frames
        task.link = link.cont_link  # type: ignore[assignment]
        replace_child(task.link, task)
        machine.notify_label_pop(link)
        return
    if isinstance(link, ForkLink):
        join = link.join
        index = link.index
        if join.delivered[index]:
            raise ControlError(
                "a value arrived twice at the same pcall branch — a "
                "traditional continuation crossed a completed fork "
                "(Section 3's failure mode)"
            )
        join.slots[index] = value
        join.delivered[index] = True
        join.children[index] = None
        join.remaining -= 1
        task.state = TaskState.DEAD
        if join.remaining == 0:
            successor = Task(
                (APPLY, join.slots[0], list(join.slots[1:])),
                task.env,
                join.cont_frames,
                join.cont_link,  # type: ignore[arg-type]
            )
            replace_child(join.cont_link, successor)  # type: ignore[arg-type]
            machine.spawn_task(successor)
            machine.notify_join_fire(join)
        return
    raise MachineError(f"unknown link: {link!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# APPLY
# ---------------------------------------------------------------------------


def apply_procedure(
    machine: "Machine", task: Task, fn: Any, args: list[Any]
) -> tuple[Any, Any] | None:
    """Apply ``fn`` to ``args`` in ``task``, following the transition
    return convention.

    Closures and primitives take the fast path: the arity window is
    precomputed at construction (``fn.low``/``fn.high``), so the happy
    path is two int compares with :func:`check_arity` called only to
    raise.  Control primitives and :class:`MachineApplicable` values
    (controllers, continuations) perform machine surgery and return
    ``None`` — callers must reload the task's registers or stop if the
    task left the RUNNABLE state.
    """
    kind = fn.__class__
    if kind is Closure:
        nargs = len(args)
        if nargs < fn.low or (fn.high is not None and nargs > fn.high):
            fn.check_arity(nargs)
        nslots = fn.nslots
        if nslots is not None:
            # Resolved body: one flat rib of exactly nslots slots.
            # Thunks (nslots == 0) reuse the captured environment.
            if nslots:
                if fn.rest is None:
                    values = args
                else:
                    nparams = fn.low
                    values = args[:nparams]
                    values.append(from_pylist(args[nparams:]))
                task.env = SlotRib(values, fn.env)
            else:
                task.env = fn.env
            return (EVAL, fn.body)
        bindings = dict(zip(fn.params, args))
        if fn.rest is not None:
            bindings[fn.rest] = from_pylist(args[fn.low :])
        task.env = Environment(bindings, fn.env, fn.env.globals)
        return (EVAL, fn.body)
    if kind is Primitive:
        nargs = len(args)
        if nargs < fn.low or (fn.high is not None and nargs > fn.high):
            check_arity(fn.name, nargs, fn.low, fn.high)
        return (VALUE, fn.fn(*args))
    if kind is ControlPrimitive:
        fn.apply(machine, task, args)
        return None
    if isinstance(fn, MachineApplicable):
        fn.machine_apply(machine, task, args)
        return None
    raise WrongTypeError(f"attempt to apply non-procedure: {fn!r}")
