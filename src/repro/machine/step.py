"""The single-task stepper.

``step(machine, task)`` advances one task by one transition.  The three
control shapes are:

* ``(EVAL, node)`` — decompose an IR node, pushing frames;
* ``(VALUE, v)`` — deliver a value to the top frame, or through the
  segment's link when the segment is empty;
* ``(APPLY, fn, args)`` — apply a procedure value.

Applications are processed only after their frame has been popped, so
tail calls run in constant segment space (proper tail calls fall out of
the frame discipline for free).

Node and frame handling dispatch through type-keyed tables rather than
``isinstance`` ladders — profiling showed the ladders dominating the
hot loop (~20 % end-to-end on call-heavy code).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.datum import UNSPECIFIED, from_pylist
from repro.errors import ControlError, MachineError, WrongTypeError
from repro.ir import App, Const, DefineTop, If, Lambda, Pcall, Seq, SetBang, Var
from repro.machine.environment import Environment
from repro.machine.frames import AppFrame, DefineFrame, IfFrame, SeqFrame, SetFrame
from repro.machine.links import ForkLink, HaltLink, Join, LabelLink
from repro.machine.task import APPLY, EVAL, HOLE, VALUE, Task, TaskState
from repro.machine.tree import replace_child
from repro.machine.values import Closure, ControlPrimitive, Primitive

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.scheduler import Machine

__all__ = ["step", "apply_procedure"]


def step(machine: "Machine", task: Task) -> None:
    """Advance ``task`` by one transition.

    The hottest cases — variable reference, constant, application and
    conditional decomposition, and frame-ful value delivery — are
    inlined here; everything else goes through the dispatch tables.
    """
    control = task.control
    tag = control[0]
    task.steps += 1
    if tag is EVAL:
        node = control[1]
        kind = type(node)
        if kind is Var:
            task.control = (VALUE, task.env.lookup(node.name))
            return
        if kind is App:
            task.frames = AppFrame((), node.args, task.env, task.frames)
            task.control = (EVAL, node.fn)
            return
        if kind is If:
            task.frames = IfFrame(node.then, node.els, task.env, task.frames)
            task.control = (EVAL, node.test)
            return
        if kind is Const:
            task.control = (VALUE, node.value)
            return
        handler = _EVAL_DISPATCH.get(kind)
        if handler is None:
            raise MachineError(f"cannot evaluate IR node: {node!r}")
        handler(machine, task, node)
    elif tag is VALUE:
        value = control[1]
        frame = task.frames
        if frame is not None:
            task.frames = frame.next
            if type(frame) is AppFrame:
                done = frame.done + (value,)
                if frame.pending:
                    task.frames = AppFrame(
                        done, frame.pending[1:], frame.env, task.frames
                    )
                    task.env = frame.env
                    task.control = (EVAL, frame.pending[0])
                else:
                    task.control = (APPLY, done[0], list(done[1:]))
                return
            if type(frame) is IfFrame:
                task.env = frame.env
                task.control = (EVAL, frame.then if value is not False else frame.els)
                return
            handler = _FRAME_DISPATCH.get(type(frame))
            if handler is None:  # pragma: no cover - defensive
                raise MachineError(f"unknown frame: {frame!r}")
            handler(machine, task, frame, value)
            return
        _deliver_through_link(machine, task, value)
    elif tag is APPLY:
        apply_procedure(machine, task, control[1], control[2])
    elif tag is HOLE:  # pragma: no cover - scheduler never runs holes
        raise MachineError("attempted to step the hole of a captured continuation")
    else:  # pragma: no cover - defensive
        raise MachineError(f"unknown control tag: {tag!r}")


# ---------------------------------------------------------------------------
# EVAL — one handler per node type, dispatched by type
# ---------------------------------------------------------------------------


def _eval_const(machine: "Machine", task: Task, node: Const) -> None:
    task.control = (VALUE, node.value)


def _eval_var(machine: "Machine", task: Task, node: Var) -> None:
    task.control = (VALUE, task.env.lookup(node.name))


def _eval_lambda(machine: "Machine", task: Task, node: Lambda) -> None:
    task.control = (
        VALUE,
        Closure(node.params, node.rest, node.body, task.env, node.name),
    )


def _eval_app(machine: "Machine", task: Task, node: App) -> None:
    task.frames = AppFrame((), node.args, task.env, task.frames)
    task.control = (EVAL, node.fn)


def _eval_if(machine: "Machine", task: Task, node: If) -> None:
    task.frames = IfFrame(node.then, node.els, task.env, task.frames)
    task.control = (EVAL, node.test)


def _eval_seq(machine: "Machine", task: Task, node: Seq) -> None:
    exprs = node.exprs
    if len(exprs) > 1:
        task.frames = SeqFrame(exprs[1:], task.env, task.frames)
    task.control = (EVAL, exprs[0])


def _eval_set(machine: "Machine", task: Task, node: SetBang) -> None:
    task.frames = SetFrame(node.name, task.env, task.frames)
    task.control = (EVAL, node.expr)


def _eval_define(machine: "Machine", task: Task, node: DefineTop) -> None:
    task.frames = DefineFrame(node.name, task.env, task.frames)
    task.control = (EVAL, node.expr)


def _eval_pcall(machine: "Machine", task: Task, node: Pcall) -> None:
    """Fork: the task's position is taken over by a Join; one fresh
    branch task per subexpression."""
    join = Join(len(node.exprs), task.frames, task.link)
    replace_child(task.link, join)
    task.state = TaskState.DEAD
    for index, expr in enumerate(node.exprs):
        branch = Task((EVAL, expr), task.env, None, ForkLink(join, index))
        join.children[index] = branch
        machine.enqueue(branch)
    machine.notify_fork(join)


_EVAL_DISPATCH: dict[type, Callable[["Machine", Task, Any], None]] = {
    Const: _eval_const,
    Var: _eval_var,
    Lambda: _eval_lambda,
    App: _eval_app,
    If: _eval_if,
    Seq: _eval_seq,
    SetBang: _eval_set,
    DefineTop: _eval_define,
    Pcall: _eval_pcall,
}


# ---------------------------------------------------------------------------
# VALUE delivery — frame handlers dispatched by type
# ---------------------------------------------------------------------------


def _frame_app(machine: "Machine", task: Task, frame: AppFrame, value: Any) -> None:
    done = frame.done + (value,)
    if frame.pending:
        task.frames = AppFrame(done, frame.pending[1:], frame.env, task.frames)
        task.env = frame.env
        task.control = (EVAL, frame.pending[0])
    else:
        task.control = (APPLY, done[0], list(done[1:]))


def _frame_if(machine: "Machine", task: Task, frame: IfFrame, value: Any) -> None:
    task.env = frame.env
    task.control = (EVAL, frame.then if value is not False else frame.els)


def _frame_seq(machine: "Machine", task: Task, frame: SeqFrame, value: Any) -> None:
    remaining = frame.remaining
    if len(remaining) > 1:
        task.frames = SeqFrame(remaining[1:], frame.env, task.frames)
    task.env = frame.env
    task.control = (EVAL, remaining[0])


def _frame_set(machine: "Machine", task: Task, frame: SetFrame, value: Any) -> None:
    frame.env.assign(frame.name, value)
    task.control = (VALUE, UNSPECIFIED)


def _frame_define(
    machine: "Machine", task: Task, frame: DefineFrame, value: Any
) -> None:
    frame.env.globals.define(frame.name, value)
    task.control = (VALUE, UNSPECIFIED)


_FRAME_DISPATCH: dict[type, Callable[["Machine", Task, Any, Any], None]] = {
    AppFrame: _frame_app,
    IfFrame: _frame_if,
    SeqFrame: _frame_seq,
    SetFrame: _frame_set,
    DefineFrame: _frame_define,
}


def _step_value(machine: "Machine", task: Task, value: Any) -> None:
    """Out-of-line value delivery (kept for direct callers/tests; the
    scheduler's hot path inlines the frame cases in :func:`step`)."""
    frame = task.frames
    if frame is not None:
        task.frames = frame.next
        handler = _FRAME_DISPATCH.get(type(frame))
        if handler is None:  # pragma: no cover - defensive
            raise MachineError(f"unknown frame: {frame!r}")
        handler(machine, task, frame, value)
        return
    _deliver_through_link(machine, task, value)


def _deliver_through_link(machine: "Machine", task: Task, value: Any) -> None:
    # Segment exhausted: deliver through the link.
    link = task.link
    if isinstance(link, HaltLink):
        task.state = TaskState.DEAD
        if link.placeholder is not None:
            link.placeholder.resolve(machine, value)
        else:
            machine.halt(value)
        return
    if isinstance(link, LabelLink):
        # Normal return from a process: the root is removed (the
        # controller becomes invalid, structurally) and the value flows
        # into the continuation above.
        task.frames = link.cont_frames
        task.link = link.cont_link  # type: ignore[assignment]
        replace_child(task.link, task)
        machine.notify_label_pop(link)
        return
    if isinstance(link, ForkLink):
        join = link.join
        index = link.index
        if join.delivered[index]:
            raise ControlError(
                "a value arrived twice at the same pcall branch — a "
                "traditional continuation crossed a completed fork "
                "(Section 3's failure mode)"
            )
        join.slots[index] = value
        join.delivered[index] = True
        join.children[index] = None
        join.remaining -= 1
        task.state = TaskState.DEAD
        if join.remaining == 0:
            successor = Task(
                (APPLY, join.slots[0], list(join.slots[1:])),
                task.env,
                join.cont_frames,
                join.cont_link,  # type: ignore[arg-type]
            )
            replace_child(join.cont_link, successor)  # type: ignore[arg-type]
            machine.enqueue(successor)
            machine.notify_join_fire(join)
        return
    raise MachineError(f"unknown link: {link!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# APPLY
# ---------------------------------------------------------------------------


def apply_procedure(machine: "Machine", task: Task, fn: Any, args: list[Any]) -> None:
    """Apply ``fn`` to ``args`` in ``task``."""
    kind = type(fn)
    if kind is Closure:
        fn.check_arity(len(args))
        nparams = len(fn.params)
        bindings = dict(zip(fn.params, args))
        if fn.rest is not None:
            bindings[fn.rest] = from_pylist(args[nparams:])
        task.env = Environment(bindings, fn.env, fn.env.globals)
        task.control = (EVAL, fn.body)
        return
    if kind is Primitive:
        task.control = (VALUE, fn.apply(args))
        return
    if kind is ControlPrimitive:
        fn.apply(machine, task, args)
        return
    machine_apply = getattr(fn, "machine_apply", None)
    if machine_apply is not None:
        machine_apply(machine, task, args)
        return
    raise WrongTypeError(f"attempt to apply non-procedure: {fn!r}")
