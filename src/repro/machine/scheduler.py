"""The machine: a deterministic interleaving scheduler over the
process tree.

``pcall`` branches run as separate tasks; the scheduler steps runnable
tasks in quanta, giving the concurrency semantics of the paper without
physical parallelism (which is orthogonal to every claim reproduced —
see DESIGN.md).  Three policies are provided:

* ``round-robin`` (default): fair FIFO, fully deterministic;
* ``random``: seeded random task choice, for property tests that
  assert schedule-independence of results;
* ``serial``: run each task until it blocks or dies before starting
  the next — the degenerate "sequential elaboration" useful for
  differential tests against the Section 6 rewriting semantics.
"""

from __future__ import annotations

import contextlib
import enum
import random
from collections import deque
from time import monotonic as _monotonic
from typing import Any, Callable, Iterator

from repro.errors import DeadlineExceeded, MachineError, StepBudgetExceeded
from repro.ir import Node
from repro.machine.environment import Environment, GlobalEnv
from repro.machine.links import HaltLink, Join, Label, LabelLink
from repro.machine.step import (
    apply_deliver,
    apply_procedure,
    run_quantum,
    run_quantum_compiled,
    run_quantum_stepped,
    step,
    step_compiled,
)
from repro.machine.task import EVAL, Task, TaskState
from repro.obs.recorder import Recorder

__all__ = ["ENGINES", "Engine", "Machine", "SchedulerPolicy", "normalize_engine"]

#: The execution engines a Machine can run (see repro.machine.step and
#: repro.ir.compile):
#:
#: * ``"dict"`` — the expander dialect over dict-chain environments
#:   (the seed baseline; no folding).
#: * ``"resolved"`` — the resolver dialect (slot ribs, interned cells)
#:   with trivial-operand folding in the tree-walking stepper.
#: * ``"compiled"`` — resolved IR pre-translated to code thunks by
#:   :mod:`repro.ir.compile`; the stepper dispatches by calling.
#: * ``"codegen"`` — resolved IR emitted as straight-line Python source
#:   and ``compile()``d once per form by :mod:`repro.ir.codegen`, with
#:   code objects cached by ``ir-hash-v1`` digest.  The emitted
#:   functions obey the same code-thunk contract as ``"compiled"``, so
#:   both engines share one run loop.
#:
#: All four push identical frame chains and control points, so the
#: capture/reinstate algebra — and every Section 7 claim — is engine-
#: independent.
ENGINES = ("dict", "resolved", "compiled", "codegen")


class Engine(enum.Enum):
    """Execution-engine selector; every constructor that takes an
    ``engine`` accepts either this enum or its string value."""

    DICT = "dict"
    RESOLVED = "resolved"
    COMPILED = "compiled"
    CODEGEN = "codegen"


def normalize_engine(engine: "Engine | str") -> str:
    """Normalize an engine selector (enum or string) to its canonical
    string name, raising ``ValueError`` for unknown engines."""
    if isinstance(engine, Engine):
        return engine.value
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    return engine


class SchedulerPolicy(enum.Enum):
    ROUND_ROBIN = "round-robin"
    RANDOM = "random"
    SERIAL = "serial"


class _NoHalt:
    def __repr__(self) -> str:  # pragma: no cover
        return "#<no-halt>"


_NO_HALT = _NoHalt()


class Machine:
    """Evaluates IR programs over a shared global environment.

    One :class:`Machine` may evaluate many top-level forms in sequence;
    each form gets a fresh process tree rooted at an implicit label
    (the ``root label``), which is what the whole-tree ``call/cc``
    policy captures against.
    """

    def __init__(
        self,
        globals_: GlobalEnv | None = None,
        policy: SchedulerPolicy | str = SchedulerPolicy.ROUND_ROBIN,
        seed: int | None = None,
        quantum: int = 16,
        max_steps: int | None = None,
        engine: str | Engine = "resolved",
        batched: bool = True,
        profile: bool = False,
        record: "Recorder | bool | None" = None,
    ):
        self.globals = globals_ if globals_ is not None else GlobalEnv()
        self.policy = SchedulerPolicy(policy)
        self.quantum = max(1, quantum)
        # Analysis-granted quantum enlargement.  The session layer sets
        # this (to repro.analysis.effects.GRANT_QUANTUM) after proving
        # the form about to run capture- and spawn-free — single-task
        # forever — and clears it at form end.  step_n honours it only
        # while no other task is runnable, so multi-task scheduling is
        # untouched.  Transient by design: never serialized.
        self.quantum_grant: int | None = None
        self.max_steps = max_steps
        # Wall-clock deadline (absolute ``time.monotonic`` timestamp, or
        # None).  Checked once per quantum by step_n, so the host's
        # DeadlineExceeded fires within one quantum of the budget and
        # never mid-frame.  Set via budget_scope (scoped) or directly.
        self.deadline: float | None = None
        engine = normalize_engine(engine)
        self.engine = engine
        # Trivial-operand folding in the tree-walking stepper (see
        # repro.machine.step).  Only the resolved engine folds: the dict
        # baseline keeps the seed's step-for-step behaviour, and on a
        # compiled machine folding is the compiler's job, so any IR
        # nodes that reach the stepper (begin_eval fallback) take the
        # plain path.
        self.fold = engine == "resolved"
        self._step_fn = (
            step_compiled if engine in ("compiled", "codegen") else step
        )
        # The quantum driver (see repro.machine.step).  ``batched=True``
        # (default) runs each quantum in one Python frame with the
        # control registers held in locals; ``batched=False`` is the
        # per-step ablation driver, re-entering the reference stepper
        # once per transition — same transition relation, used as the
        # A/B baseline in benchmarks/run_all.py.
        self.batched = batched
        if not batched:
            self._run_quantum = run_quantum_stepped
        elif engine in ("compiled", "codegen"):
            self._run_quantum = run_quantum_compiled
        else:
            self._run_quantum = run_quantum
        # The apply seam: code thunks and the reference steppers apply
        # through these machine attributes, so the unbatched ablation
        # runs the PR-2 apply path (repro.machine.ablation) while the
        # batched engines get the fast path (precomputed arity windows,
        # direct Primitive/Closure dispatch) — the A/B columns in
        # benchmarks/run_all.py measure exactly this seam.
        if batched:
            self._apply_procedure = apply_procedure
            self._apply_deliver = apply_deliver
        else:
            from repro.machine.ablation import (
                apply_deliver_unbatched,
                apply_procedure_unbatched,
            )

            self._apply_procedure = apply_procedure_unbatched
            self._apply_deliver = apply_deliver_unbatched
        # VM counters (satellite observability).  Always allocated so
        # the run loops can reference it; only *updated* when
        # ``profile=True`` (the loops skip the bookkeeping otherwise).
        self.profile = profile
        self.vm_stats: dict[str, int] = {
            "vm_quanta": 0,
            "vm_quantum_steps": 0,
            "vm_spill_apply": 0,
            "vm_spill_control": 0,
            "vm_spill_suspend": 0,
            "vm_spill_budget": 0,
            "vm_spill_trace": 0,
            "vm_spill_fallback": 0,
            "vm_allocations_avoided": 0,
        }
        self.rng = random.Random(seed)
        self.toplevel_env = Environment.toplevel(self.globals)

        # Per-evaluation state.
        self.root_entity: Any = None
        self.root_label_link: LabelLink | None = None
        self.queue: deque[Task] = deque()
        self.halt_value: Any = _NO_HALT
        self.steps_total = 0

        # Future trees (Section 8 forest) surviving across top-level
        # forms: runnable future-tree tasks parked between evals, and
        # the set of tasks currently blocked on placeholders.
        self.parked_futures: list[Task] = []
        self.waiting_tasks: set[Task] = set()

        # Lifetime counters (introspection / benchmarks).
        self.stats: dict[str, int] = {
            "forks": 0,
            "label_pops": 0,
            "join_fires": 0,
            "captures": 0,
            "reinstatements": 0,
            "tasks_created": 0,
        }
        # Optional step hook for tracing: fn(machine, task) before each step.
        self.trace_hook: Callable[["Machine", Task], None] | None = None
        # Observability recorder (repro.obs).  ``record=True`` builds a
        # fresh ring buffer; an existing Recorder is shared (the host
        # passes one recorder down through every session's machine so
        # spans from all layers land in one stream).  None — the
        # default — keeps every emit site on its zero-cost path.
        if record is True:
            self.recorder: Recorder | None = Recorder()
        elif record is False:
            self.recorder = None
        else:
            self.recorder = record

    # -- scheduler interface used by step/tree/control ----------------------

    def spawn_task(self, task: Task) -> None:
        """Register a *newly created* task: count it in
        ``tasks_created`` and queue it.  Every site that constructs a
        fresh ``Task`` (root install, pcall branches, join successors,
        capture/reinstate successors, future roots) goes through here.
        """
        self.stats["tasks_created"] += 1
        self.queue.append(task)

    def enqueue(self, task: Task) -> None:
        """Queue an *existing* task: pure queueing, no accounting.
        Used for re-runnable tasks — woken placeholder waiters, parked
        future-tree tasks resuming at the next top-level form."""
        self.queue.append(task)

    def halt(self, value: Any) -> None:
        self.halt_value = value

    # -- control-event notify points ----------------------------------------
    #
    # Every control operation lands on exactly one of these, from all
    # three engines (the sites live in shared code: the steppers'
    # _deliver_through_link/_eval_pcall and the control primitives'
    # machine_apply).  They are the single source of truth for both the
    # stats counters and the observability stream: counted == emitted
    # by construction, which is what fixes the seed Tracer's event
    # loss (it sniffed counter deltas from a per-step hook and dropped
    # events when the evaluation aborted between hook calls).

    def notify_fork(self, join: Join) -> None:
        self.stats["forks"] += 1
        rec = self.recorder
        if rec is not None and rec.enabled:
            rec.emit("fork", f"join {id(join) & 0xFFFF:04x}", step=self.steps_total)

    def notify_label_pop(self, link: LabelLink) -> None:
        self.stats["label_pops"] += 1
        rec = self.recorder
        if rec is not None and rec.enabled:
            rec.emit("label-pop", str(link.label), step=self.steps_total)

    def notify_join_fire(self, join: Join) -> None:
        self.stats["join_fires"] += 1
        rec = self.recorder
        if rec is not None and rec.enabled:
            rec.emit("join-fire", f"join {id(join) & 0xFFFF:04x}", step=self.steps_total)

    def notify_capture(self, task: Task, kind: str = "") -> None:
        """A continuation (subtree or whole-tree) was captured by
        ``task``.  Counts into ``stats["captures"]`` and emits one
        recorder event — one call per capture, from every engine."""
        self.stats["captures"] += 1
        rec = self.recorder
        if rec is not None and rec.enabled:
            detail = f"{kind} by task {task.uid}" if kind else f"by task {task.uid}"
            rec.emit("capture", detail, step=self.steps_total)

    def notify_reinstate(self, task: Task, kind: str = "") -> None:
        """A captured continuation was reinstated by ``task``."""
        self.stats["reinstatements"] += 1
        rec = self.recorder
        if rec is not None and rec.enabled:
            detail = f"{kind} by task {task.uid}" if kind else f"by task {task.uid}"
            rec.emit("reinstate", detail, step=self.steps_total)

    def register_future_root(self, task: Task) -> None:
        self.stats["futures"] = self.stats.get("futures", 0) + 1

    def kill_main_tree_tasks(self) -> None:
        """Abort every task of the *main* tree only (whole-tree
        abortive continuations must not touch independent future
        trees — Section 8's isolation)."""
        survivors: list[Task] = []
        for task in self.queue:
            if task.state is not TaskState.RUNNABLE:
                continue
            root = self._tree_root(task)
            if isinstance(root, HaltLink) and root.placeholder is not None:
                survivors.append(task)
            else:
                task.state = TaskState.DEAD
        self.queue.clear()
        self.queue.extend(survivors)

    def _tree_root(self, task: Task) -> Any:
        """The HaltLink at the base of the tree containing ``task``,
        or None if the task sits in a detached (captured) subtree."""
        link: Any = task.link
        while True:
            if isinstance(link, HaltLink):
                return link
            if isinstance(link, LabelLink):
                link = link.cont_link
            elif link is None:
                return None
            else:  # ForkLink
                link = link.join.cont_link

    def _park_surviving_futures(self) -> None:
        """At the end of a top-level form: future-tree tasks survive
        into the next form; main-tree tasks die, and main-tree waiters
        are detached from their placeholders so a later resolve cannot
        wake a task of a finished form."""
        survivors: list[Task] = []
        for task in self.queue:
            if task.state is not TaskState.RUNNABLE:
                continue
            root = self._tree_root(task)
            if isinstance(root, HaltLink) and root.placeholder is not None:
                survivors.append(task)
            else:
                task.state = TaskState.DEAD
        self.queue.clear()
        self.parked_futures = survivors
        for task in list(self.waiting_tasks):
            root = self._tree_root(task)
            if not (isinstance(root, HaltLink) and root.placeholder is not None):
                task.state = TaskState.DEAD
                self.waiting_tasks.discard(task)

    # -- evaluation ----------------------------------------------------------

    def begin_eval(self, node: Node, env: Environment | None = None) -> None:
        """Set up a fresh tree for ``node`` without running it.

        Drive it with :meth:`step_n` (incremental — engines use this)
        or :meth:`finish` (run to completion).
        """
        env = env if env is not None else self.toplevel_env
        root_task = Task((EVAL, node), env, None, None)  # type: ignore[arg-type]
        self._install_root(root_task)

    def begin_apply(self, fn: Any, args: list[Any]) -> None:
        """Like :meth:`begin_eval`, but the root task applies ``fn`` to
        ``args`` (used to run an existing closure, e.g. an engine's
        thunk)."""
        from repro.machine.task import APPLY

        root_task = Task((APPLY, fn, args), self.toplevel_env, None, None)  # type: ignore[arg-type]
        self._install_root(root_task)

    def _install_root(self, root_task: Task) -> None:
        halt = HaltLink(self)
        root_label = LabelLink(Label("root"), None, halt)
        self.root_entity = root_label
        self.root_label_link = root_label
        self.queue = deque()
        self.halt_value = _NO_HALT
        root_task.link = root_label
        root_label.child = root_task
        self.spawn_task(root_task)
        # Future trees parked at the end of the previous form resume:
        # these tasks already exist, so this is pure re-queueing — they
        # must not be recounted in tasks_created.
        for survivor in self.parked_futures:
            self.enqueue(survivor)
        self.parked_futures = []

    def finish(self) -> Any:
        """Run the current tree to completion and return its value.

        The chunk size only bounds how often control returns here;
        :meth:`step_n` clamps every quantum to the ``max_steps``
        headroom itself, so the budget is honoured exactly regardless
        of the chunking.
        """
        while not self.step_n(4096):
            pass
        self._park_surviving_futures()
        return self.halt_value

    def eval_node(self, node: Node, env: Environment | None = None) -> Any:
        """Evaluate one top-level IR node to a value."""
        self.begin_eval(node, env)
        return self.finish()

    def abort_tree(self) -> None:
        """Discard the in-flight tree at its root (cooperative
        cancellation / deadline enforcement).

        This is capture-and-discard: every main-tree task is unlinked
        exactly as an abortive controller discards a captured subtree —
        no exception is delivered into a running frame.  Independent
        future trees survive (they are parked for the next form, as at
        a normal form boundary), main-tree placeholder waiters are
        detached, and the machine is left ready for the next
        :meth:`begin_eval`.  Safe to call after an exception escaped
        :meth:`step_n` mid-run.
        """
        self.kill_main_tree_tasks()
        self._park_surviving_futures()
        self.halt_value = _NO_HALT
        self.root_entity = None
        self.root_label_link = None

    @contextlib.contextmanager
    def budget_scope(
        self,
        max_steps: int | None = None,
        deadline_at: float | None = None,
    ) -> Iterator[None]:
        """Temporarily tighten the step budget and wall-clock deadline.

        ``max_steps`` is an absolute ``steps_total`` ceiling,
        ``deadline_at`` an absolute ``time.monotonic`` timestamp.  The
        scope only ever *tightens*: an enclosing budget (the machine's
        lifetime ``max_steps``, or an outer scope — scopes nest, which
        is how the host hands a per-request budget down through
        re-entrant :meth:`step_n` calls) keeps binding if it is
        stricter.  Previous bounds are restored on exit, including when
        :class:`StepBudgetExceeded` / :class:`DeadlineExceeded`
        propagates.  This is the single budget mechanism shared by
        ``Interpreter.eval(max_steps=..., deadline=...)`` and the host
        runtime's per-request deadlines.
        """
        prev_max, prev_deadline = self.max_steps, self.deadline
        if max_steps is not None:
            self.max_steps = max_steps if prev_max is None else min(prev_max, max_steps)
        if deadline_at is not None:
            self.deadline = (
                deadline_at if prev_deadline is None else min(prev_deadline, deadline_at)
            )
        try:
            yield
        finally:
            self.max_steps = prev_max
            self.deadline = prev_deadline

    def run(self, nodes: list[Node]) -> list[Any]:
        """Evaluate a program (list of top-level nodes) in order."""
        return [self.eval_node(node) for node in nodes]

    # -- the loop ------------------------------------------------------------

    def _pick(self) -> Task | None:
        """Pop the next runnable task per policy; None if none left."""
        queue = self.queue
        if self.policy is SchedulerPolicy.RANDOM:
            # Compact while scanning: dead/suspended entries are dropped
            # the first time they are seen, so a long-dead task is never
            # rescanned on a later pick.
            runnable = [t for t in queue if t.state is TaskState.RUNNABLE]
            queue.clear()
            if not runnable:
                return None
            # randrange consumes the RNG exactly like the rng.choice
            # this replaces, preserving seeded schedules.
            index = self.rng.randrange(len(runnable))
            choice = runnable[index]
            del runnable[index]
            queue.extend(runnable)
            return choice
        while queue:
            task = queue.popleft()
            if task.state is TaskState.RUNNABLE:
                return task
        return None

    def step_n(self, n: int) -> bool:
        """Run up to ``n`` machine steps; True iff the current tree has
        produced its value.  Raises on deadlock or budget exhaustion.

        The inner loop hands whole quanta to the engine's run-quantum
        driver (one Python call per quantum rather than per step); each
        quantum's budget is clamped to both ``n`` and the remaining
        ``max_steps`` headroom, so :class:`StepBudgetExceeded` is
        raised at *exactly* the budget — never after an overflow step.
        """
        serial = self.policy is SchedulerPolicy.SERIAL
        run_quantum_fn = self._run_quantum
        max_steps = self.max_steps
        deadline = self.deadline
        rec = self.recorder
        if rec is not None and not rec.enabled:
            rec = None
        remaining = n
        while remaining > 0 and self.halt_value is _NO_HALT:
            if deadline is not None and _monotonic() >= deadline:
                # Checked at quantum granularity: an expired deadline
                # refuses the next quantum rather than interrupting one,
                # so enforcement lands within one quantum of the budget
                # and never mid-frame.
                raise DeadlineExceeded(
                    f"wall-clock deadline exceeded after {self.steps_total} steps",
                    steps=self.steps_total,
                )
            task = self._pick()
            if task is None:
                if self.waiting_tasks:
                    raise MachineError(
                        "deadlock: every runnable task is blocked on an "
                        "unresolved future placeholder whose tree can no "
                        "longer run"
                    )
                raise MachineError(
                    "deadlock: no runnable tasks but the program has not "
                    "produced a value (an abandoned pcall branch or a "
                    "dropped process continuation holds the only path to "
                    "the root)"
                )
            if serial:
                budget = remaining
            else:
                budget = min(self.quantum, remaining)
                grant = self.quantum_grant
                if grant is not None and grant > budget and not self.queue:
                    # The session proved this form single-task (capture-
                    # and spawn-free), so with no rotation partner a
                    # larger batch executes the identical step sequence.
                    # The empty-queue check is defense in depth: any
                    # second runnable task reverts to the base quantum.
                    budget = min(grant, remaining)
            if max_steps is not None:
                headroom = max_steps - self.steps_total
                if headroom <= 0:
                    # A runnable task exists but the budget is spent:
                    # the overflow step is refused, not executed.
                    self.queue.appendleft(task)
                    raise StepBudgetExceeded(self.steps_total)
                if budget > headroom:
                    budget = headroom
            if rec is None:
                taken = run_quantum_fn(self, task, budget)
            else:
                # One X (complete) event per quantum: which task ran,
                # for how many steps, and how long it took.  Emitted
                # even when the quantum raises (budget/deadline/error)
                # so aborted work stays visible in the trace.
                t0 = rec.clock()
                s0 = self.steps_total
                try:
                    taken = run_quantum_fn(self, task, budget)
                finally:
                    rec.complete(
                        "quantum",
                        t0,
                        rec.clock() - t0,
                        f"task {task.uid} ({self.steps_total - s0} steps)",
                        step=self.steps_total,
                    )
            remaining -= taken
            if task.state is TaskState.RUNNABLE and self.halt_value is _NO_HALT:
                self.queue.append(task)
        return self.halt_value is not _NO_HALT
