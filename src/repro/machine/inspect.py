"""Process-tree introspection.

:func:`render_tree` draws the live process tree as indented ASCII —
used by tests asserting on tree *structure* (who is under which label,
which branches a capture suspended) and handy when debugging control
operators.  :func:`tree_summary` returns the same information as data.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.machine.frames import frame_chain_length
from repro.machine.links import TOMBSTONE, Join, LabelLink, PromptLabel
from repro.machine.task import Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.scheduler import Machine

__all__ = ["render_tree", "tree_summary", "render_entity"]


def render_entity(entity: Any, indent: int = 0) -> list[str]:
    """Recursive ASCII rendering of a subtree."""
    pad = "  " * indent
    if entity is None:
        return [f"{pad}(empty)"]
    if entity is TOMBSTONE:
        return [f"{pad}(tombstone)"]
    if isinstance(entity, Task):
        tag = entity.tag
        return [
            f"{pad}task#{entity.uid} [{entity.state.value}] control={tag} "
            f"frames={frame_chain_length(entity.frames)}"
        ]
    if isinstance(entity, LabelLink):
        kind = "prompt" if isinstance(entity.label, PromptLabel) else "label"
        lines = [
            f"{pad}{kind} {entity.label.name} "
            f"(frames-above={frame_chain_length(entity.cont_frames)})"
        ]
        lines.extend(render_entity(entity.child, indent + 1))
        return lines
    if isinstance(entity, Join):
        done = len(entity.slots) - entity.remaining
        lines = [f"{pad}join {done}/{len(entity.slots)} delivered"]
        for index, child in enumerate(entity.children):
            lines.append(f"{pad}  branch {index}:")
            lines.extend(render_entity(child, indent + 2))
        return lines
    return [f"{pad}?{entity!r}"]


def render_tree(machine: "Machine") -> str:
    """The whole live tree of ``machine`` as text."""
    return "\n".join(render_entity(machine.root_entity))


def tree_summary(entity: Any) -> dict[str, int]:
    """Counts of labels, prompts, joins, tasks (by state) in a subtree."""
    out = {
        "labels": 0,
        "prompts": 0,
        "joins": 0,
        "tasks": 0,
        "runnable": 0,
        "suspended": 0,
        "tombstones": 0,
    }
    stack = [entity]
    while stack:
        node = stack.pop()
        if node is None:
            continue
        if node is TOMBSTONE:
            out["tombstones"] += 1
        elif isinstance(node, Task):
            out["tasks"] += 1
            key = node.state.value
            if key in out:
                out[key] += 1
        elif isinstance(node, LabelLink):
            if isinstance(node.label, PromptLabel):
                out["prompts"] += 1
            else:
                out["labels"] += 1
            stack.append(node.child)
        elif isinstance(node, Join):
            out["joins"] += 1
            stack.extend(node.children)
    return out
