"""The abstract machine.

A running program is a **process tree** (Section 7 of the paper): a tree
of *labeled stacks*.  The leaves are :class:`~repro.machine.task.Task`
objects — each holds a control (the expression or value being worked
on), an environment, and a **segment**: an immutable chain of
continuation frames.  Interior nodes are **control points**:

* :class:`~repro.machine.links.LabelLink` — a process root created by
  ``spawn`` (or a prompt, which is a label no controller knows);
* :class:`~repro.machine.links.Join` — a fork created by ``pcall``.

Frames are persistent (never mutated after creation), so capturing a
subtree of the computation — the core operation behind process
continuations — moves or clones only the *control points*, giving the
paper's complexity bound: **linear in labels + forks, independent of
continuation size**.

:class:`~repro.machine.scheduler.Machine` drives everything with a
deterministic interleaving scheduler.
"""

from repro.machine.values import Closure, Primitive, ControlPrimitive
from repro.machine.environment import Environment, GlobalCell, GlobalEnv, SlotRib
from repro.machine.frames import (
    Frame,
    AppFrame,
    IfFrame,
    SeqFrame,
    SetFrame,
    LocalSetFrame,
    GlobalSetFrame,
    DefineFrame,
)
from repro.machine.links import (
    Label,
    PromptLabel,
    HaltLink,
    LabelLink,
    ForkLink,
    Join,
    TOMBSTONE,
)
from repro.machine.task import Task, TaskState
from repro.machine.tree import (
    replace_child,
    child_of,
    parent_of,
    find_label_link,
    collect_subtree,
    capture_subtree,
    reinstate,
    Capture,
)
from repro.machine.scheduler import Machine, SchedulerPolicy

__all__ = [
    "Closure",
    "Primitive",
    "ControlPrimitive",
    "Environment",
    "GlobalCell",
    "GlobalEnv",
    "SlotRib",
    "Frame",
    "AppFrame",
    "IfFrame",
    "SeqFrame",
    "SetFrame",
    "LocalSetFrame",
    "GlobalSetFrame",
    "DefineFrame",
    "Label",
    "PromptLabel",
    "HaltLink",
    "LabelLink",
    "ForkLink",
    "Join",
    "TOMBSTONE",
    "Task",
    "TaskState",
    "replace_child",
    "child_of",
    "parent_of",
    "find_label_link",
    "collect_subtree",
    "capture_subtree",
    "reinstate",
    "Capture",
    "Machine",
    "SchedulerPolicy",
]
