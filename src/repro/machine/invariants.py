"""Process-tree invariant checking.

The capture/reinstate algebra maintains a bidirectional tree (upward
links, downward child slots).  :func:`check_tree` walks the live tree
of a machine and verifies every structural invariant; tests install it
as a trace hook so *every* machine step of a whole test run is checked.

Invariants:

I1  child/parent coherence — for every entity `e` in the tree, the
    child slot of `parent_of(e)` holds `e`.
I2  join accounting — a join's `remaining` equals the number of
    branches that are neither delivered nor tombstoned, and delivered
    branches have empty child slots.
I3  task states — every tree-resident task is RUNNABLE or WAITING on
    a future placeholder (SUSPENDED and DEAD tasks must not be
    reachable from the root).
I4  frame sanity — every frame chain is finite and ends in None.
I5  single residence — no entity appears twice in the tree.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.machine.frames import Frame
from repro.machine.links import TOMBSTONE, ForkLink, Join, LabelLink
from repro.machine.task import Task, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.scheduler import Machine

__all__ = ["InvariantViolation", "check_tree", "install_checker"]


class InvariantViolation(AssertionError):
    """A process-tree invariant failed (always a machine bug)."""


def _check_frames(frames: Frame | None, where: str) -> None:
    seen: set[int] = set()
    node = frames
    while node is not None:
        if id(node) in seen:
            raise InvariantViolation(f"I4: cyclic frame chain at {where}")
        seen.add(id(node))
        if len(seen) > 1_000_000:  # pragma: no cover - safety valve
            raise InvariantViolation(f"I4: frame chain too long at {where}")
        node = node.next


def check_tree(machine: "Machine") -> int:
    """Verify all invariants on the live tree; returns the number of
    entities visited.  Raises :class:`InvariantViolation` on failure.
    """
    root = machine.root_entity
    if root is None or root is TOMBSTONE:
        return 0
    visited: set[int] = set()
    count = 0
    # Each stack entry: (entity, expected_parent_link)
    stack: list[tuple[Any, Any]] = [(root, None)]
    while stack:
        entity, expected_parent = stack.pop()
        if entity is None or entity is TOMBSTONE:
            continue
        if id(entity) in visited:
            raise InvariantViolation(f"I5: entity appears twice: {entity!r}")
        visited.add(id(entity))
        count += 1
        if isinstance(entity, Task):
            if expected_parent is not None and entity.link is not expected_parent:
                raise InvariantViolation(
                    f"I1: task {entity!r} link does not point at its parent"
                )
            if entity.state not in (TaskState.RUNNABLE, TaskState.WAITING):
                raise InvariantViolation(
                    f"I3: non-runnable task in live tree: {entity!r}"
                )
            _check_frames(entity.frames, repr(entity))
            continue
        if isinstance(entity, LabelLink):
            if expected_parent is not None and entity.cont_link is not expected_parent:
                raise InvariantViolation(
                    f"I1: label {entity!r} cont_link does not point at its parent"
                )
            _check_frames(entity.cont_frames, repr(entity))
            stack.append((entity.child, entity))
            continue
        if isinstance(entity, Join):
            if expected_parent is not None and entity.cont_link is not expected_parent:
                raise InvariantViolation(
                    f"I1: join {entity!r} cont_link does not point at its parent"
                )
            _check_frames(entity.cont_frames, repr(entity))
            live = 0
            for index, child in enumerate(entity.children):
                if entity.delivered[index]:
                    if child is not None:
                        raise InvariantViolation(
                            f"I2: delivered branch {index} of {entity!r} still "
                            "has a child"
                        )
                    continue
                if child is TOMBSTONE:
                    continue
                if child is None:
                    raise InvariantViolation(
                        f"I2: undelivered branch {index} of {entity!r} has no "
                        "child and no tombstone"
                    )
                live += 1
                # Child's upward pointer must be a ForkLink back to us.
                up = child.link if isinstance(child, Task) else child.cont_link
                if not (
                    isinstance(up, ForkLink)
                    and up.join is entity
                    and up.index == index
                ):
                    raise InvariantViolation(
                        f"I1: branch {index} of {entity!r} has a bad upward link"
                    )
                stack.append((child, up))
            delivered = sum(1 for d in entity.delivered if d)
            if entity.remaining != len(entity.slots) - delivered:
                raise InvariantViolation(
                    f"I2: join {entity!r} remaining={entity.remaining} but "
                    f"{delivered}/{len(entity.slots)} delivered"
                )
            continue
        raise InvariantViolation(f"unknown tree entity: {entity!r}")
    return count


def install_checker(machine: "Machine", every: int = 1) -> None:
    """Install :func:`check_tree` as the machine's trace hook, checking
    every ``every``-th step."""
    counter = {"n": 0}

    def hook(m: "Machine", task: Task) -> None:
        counter["n"] += 1
        if counter["n"] % every == 0:
            check_tree(m)

    machine.trace_hook = hook
