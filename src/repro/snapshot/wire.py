"""Low-level byte plumbing for the snapshot codec.

A deliberately tiny, dependency-free binary layer: unsigned LEB128
varints (``varint``), zigzag signed varints (``svarint`` — exact for
arbitrary-precision Python ints, which LEB128 handles natively),
big-endian IEEE-754 doubles, and length-prefixed UTF-8 strings.  The
structured layer (:mod:`repro.snapshot.codec`) builds every record out
of these five primitives, so the wire format is fully described by this
module plus the codec's tag tables — see ``docs/CLUSTER.md`` for the
normative layout.

Readers fail with :class:`~repro.errors.SnapshotFormatError` on
truncation rather than ``IndexError``, so a corrupt blob is always
reported as a snapshot problem.
"""

from __future__ import annotations

import struct

from repro.errors import SnapshotFormatError

__all__ = ["Reader", "Writer"]

_F64 = struct.Struct(">d")


class Writer:
    """Append-only byte sink."""

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    def u8(self, value: int) -> None:
        self._buf.append(value & 0xFF)

    def varint(self, value: int) -> None:
        """Unsigned LEB128 (value must be >= 0)."""
        if value < 0:
            raise ValueError(f"varint: negative value {value}")
        buf = self._buf
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                buf.append(byte | 0x80)
            else:
                buf.append(byte)
                return

    def svarint(self, value: int) -> None:
        """Zigzag-then-LEB128; exact for any Python int."""
        self.varint(-2 * value - 1 if value < 0 else 2 * value)

    def f64(self, value: float) -> None:
        self._buf += _F64.pack(value)

    def raw(self, data: bytes) -> None:
        self._buf += data

    def str_(self, text: str) -> None:
        encoded = text.encode("utf-8")
        self.varint(len(encoded))
        self._buf += encoded

    def getvalue(self) -> bytes:
        return bytes(self._buf)

    def __len__(self) -> int:
        return len(self._buf)


class Reader:
    """Sequential reader over a snapshot blob (or a slice of one)."""

    __slots__ = ("data", "pos", "end")

    def __init__(self, data: bytes, pos: int = 0, end: int | None = None):
        self.data = data
        self.pos = pos
        if end is None:
            end = len(data)
        elif end > len(data):
            # A length prefix promising more bytes than the blob holds:
            # the blob is truncated, not the reader out of bounds.
            raise SnapshotFormatError(
                f"truncated snapshot: record claims {end - len(data)} "
                f"byte(s) past the end of the blob"
            )
        self.end = end

    def _need(self, n: int) -> None:
        if self.pos + n > self.end:
            raise SnapshotFormatError(
                f"truncated snapshot: wanted {n} byte(s) at offset {self.pos}, "
                f"only {self.end - self.pos} available"
            )

    def u8(self) -> int:
        self._need(1)
        value = self.data[self.pos]
        self.pos += 1
        return value

    def varint(self) -> int:
        data, pos, end = self.data, self.pos, self.end
        result = 0
        shift = 0
        while True:
            if pos >= end:
                raise SnapshotFormatError("truncated snapshot: unterminated varint")
            byte = data[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                self.pos = pos
                return result
            shift += 7

    def svarint(self) -> int:
        z = self.varint()
        return -(z + 1) // 2 if z & 1 else z // 2

    def f64(self) -> float:
        self._need(8)
        value = _F64.unpack_from(self.data, self.pos)[0]
        self.pos += 8
        return value

    def raw(self, n: int) -> bytes:
        self._need(n)
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return bytes(chunk)

    def str_(self) -> str:
        n = self.varint()
        return self.raw(n).decode("utf-8")

    def at_end(self) -> bool:
        return self.pos >= self.end
