"""The session snapshot codec: a suspended :class:`~repro.host.session.Session`
as a versioned, deterministic byte string.

What the paper makes possible, this module makes durable: at every
quantum boundary a session's entire computation — process trees with
captured continuations, suspended ``pcall`` branches, parked future
trees, mid-``spawn`` controllers — is a first-class value sitting in
ordinary Python objects.  The codec walks that reachable graph and
writes it down; :func:`restore_session` rebuilds an equivalent session
in any process, byte-for-byte equivalent in observable behaviour
(output, per-step stats, uid streams) to the never-snapshotted run.

Layout of a blob (all integers LEB128 varints; see
:mod:`repro.snapshot.wire` and ``docs/CLUSTER.md``)::

    magic "RSNP"  version u8
    header    name, engine, policy, quantum, flags, max_pending,
              six uid-counter watermarks
    objects   the cyclic heap: tagged records, each a length-prefixed
              payload of a fixed *head* (construction scalars) plus
              *rest* (reference-bearing fields, filled in a second pass)
    nodes     the IR DAG in topological order (children first), plus
              compiled-code stubs — code is **never** pickled; a stub
              is (source-node ref, stable hash) and the restorer
              recompiles, one ``compile_node`` per distinct hash, so
              closures that shared a body keep sharing one
    roots     the session record: machine, macro table, output buffer,
              stats, metrics, pending/active handles

Identity and sharing are exact: every mutable object (pairs, vectors,
ribs, cells, tasks, links, frames by chain) is a table entry referenced
by id, so shared and cyclic structure round-trips with its aliasing
intact.  Interned symbols are re-interned by name on load; gensyms are
table objects (identity-unique) and the gensym counter watermark is
carried so printed names never collide after restore.  Global cells
merge into the restoring session's table by name, which is how
snapshot-side closures reconnect to the freshly installed primitives
(primitives are encoded by name only and re-linked — their Python
closures, e.g. over the output buffer, are never serialized).

Not serialized (by design): the observability recorder (pass ``record=``
to :func:`restore_session`), ``Machine.trace_hook``, and in-flight pump
state — snapshotting from inside :meth:`Session.pump` raises
:class:`~repro.errors.SnapshotError`.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from fractions import Fraction
from time import monotonic as _monotonic
from typing import Any, Callable

from repro.control.callcc import LeafContinuation, RootContinuation
from repro.analysis.effects import EffectInfo
from repro.control.engines import EngineValue
from repro.control.fcontrol import FunctionalContinuation
from repro.control.futures import FuturePlaceholder
from repro.control.spawn import ProcessContinuation, ProcessController
from repro.datum import NIL, Char, MVector, Pair, Symbol, intern
from repro.datum.singletons import EOF_OBJECT, UNSPECIFIED
from repro.errors import SnapshotError, SnapshotFormatError
from repro.expander.syntax_rules import Macro, Rule
from repro.host.handle import EvalHandle, HandleState
from repro.host.session import Session
from repro.ir import codegen_node, compile_node, stable_hash
from repro.ir.codegen import CodegenStats
from repro.ir.compile import CompileStats
from repro.ir.nodes import (
    App,
    Const,
    DefineTop,
    GlobalRef,
    GlobalSet,
    If,
    Lambda,
    LocalRef,
    LocalSet,
    Pcall,
    Seq,
    SetBang,
    Var,
)
from repro.machine.environment import UNBOUND, Environment, GlobalCell, SlotRib
from repro.machine.frames import (
    AppFrame,
    DefineFrame,
    GlobalSetFrame,
    IfFrame,
    LocalSetFrame,
    SeqFrame,
    SetFrame,
)
from repro.machine.links import (
    TOMBSTONE,
    ForkLink,
    HaltLink,
    Join,
    Label,
    LabelLink,
    PromptLabel,
)
from repro.machine.scheduler import Machine, SchedulerPolicy
from repro.machine.scheduler import _NO_HALT  # the halt-register sentinel
from repro.machine.task import APPLY, EVAL, HOLE, VALUE, Task, TaskState
from repro.machine.tree import Capture
from repro.machine.values import Closure, ControlPrimitive, Primitive
from repro.obs.histogram import Histogram
from repro.snapshot.wire import Reader, Writer

__all__ = ["FORMAT_VERSION", "MAGIC", "restore_session", "snapshot_session"]

MAGIC = b"RSNP"
#: Bump on any wire-format change; restore refuses other versions.
#: v2: capture/effect analysis — Lambda/Closure effects bitmasks, the
#: handle classification, AnalysisStats roots, the analysis header flag
#: and the three submits_* session counters.
#: v3: codegen engine — the CodegenStats root tuple (written for every
#: engine, zeros when codegen never ran).
FORMAT_VERSION = 3

# -- value tags (the self-describing scalar/reference layer) -------------

_V_NONE = 0
_V_TRUE = 1
_V_FALSE = 2
_V_INT = 3
_V_FLOAT = 4
_V_STR = 5
_V_LIST = 6
_V_TUPLE = 7
_V_FRACTION = 8
_V_NIL = 9
_V_UNSPECIFIED = 10
_V_EOF = 11
_V_UNBOUND = 12
_V_TOMBSTONE = 13
_V_NO_HALT = 14
_V_CHAR = 15
_V_ISYM = 16  # interned symbol, by spelling
_V_OREF = 17  # object-table reference
_V_NREF = 18  # node-table reference (IR node or code stub)

# -- object-table tags ---------------------------------------------------

_O_PAIR = 1
_O_MVECTOR = 2
_O_GENSYM = 3
_O_CELL = 4
_O_PRIMITIVE = 5
_O_CONTROL_PRIMITIVE = 6
_O_CLOSURE = 7
_O_ENVIRONMENT = 8
_O_SLOT_RIB = 9
_O_TASK = 10
_O_LABEL = 11
_O_HALT_LINK = 12
_O_LABEL_LINK = 13
_O_FORK_LINK = 14
_O_JOIN = 15
_O_APP_FRAME = 16
_O_IF_FRAME = 17
_O_SEQ_FRAME = 18
_O_SET_FRAME = 19
_O_LOCAL_SET_FRAME = 20
_O_GLOBAL_SET_FRAME = 21
_O_DEFINE_FRAME = 22
_O_CAPTURE = 23
_O_CONTROLLER = 24
_O_PROCESS_CONT = 25
_O_ROOT_CONT = 26
_O_LEAF_CONT = 27
_O_FUNCTIONAL_CONT = 28
_O_PLACEHOLDER = 29
_O_ENGINE = 30
_O_MACHINE = 31
_O_MACRO = 32
_O_HANDLE = 33

# -- node-table tags -----------------------------------------------------

_N_CONST = 1
_N_VAR = 2
_N_LAMBDA = 3
_N_APP = 4
_N_IF = 5
_N_SETBANG = 6
_N_SEQ = 7
_N_DEFINE_TOP = 8
_N_PCALL = 9
_N_LOCAL_REF = 10
_N_LOCAL_SET = 11
_N_GLOBAL_REF = 12
_N_GLOBAL_SET = 13
_N_CODE = 14

_NODE_CLASSES = (
    Const,
    Var,
    Lambda,
    App,
    If,
    SetBang,
    Seq,
    DefineTop,
    Pcall,
    LocalRef,
    LocalSet,
    GlobalRef,
    GlobalSet,
)

#: The canonical control-tag string objects (``task.tag`` is compared
#: with ``is``, so restore must rebind exactly these).
_CONTROL_TAGS = {EVAL: 0, VALUE: 1, APPLY: 2, HOLE: 3}
_CONTROL_TAG_LIST = (EVAL, VALUE, APPLY, HOLE)


def _node_source(value: Any) -> Any:
    """The IR node behind a compiled code thunk, or None if ``value``
    is not a thunk (thunks are plain functions carrying ``.node``)."""
    if callable(value) and not isinstance(value, type):
        return getattr(value, "node", None)
    return None


# =======================================================================
# Encoder
# =======================================================================


class _Encoder:
    def __init__(self, session: Session):
        self.session = session
        self.obj_ids: dict[int, int] = {}
        self.objects: list[Any] = []
        self.node_ids: dict[int, int] = {}
        self.node_list: list[Any] = []
        self.now = _monotonic()

    # -- discovery -------------------------------------------------------

    def _note(self, value: Any, queue: deque) -> None:
        """Classify ``value``: inline scalars are ignored, IR/code goes
        to the node table (postorder), everything else becomes an
        object-table entry queued for child discovery."""
        if value is None or value is True or value is False:
            return
        cls = value.__class__
        if cls is int or cls is float or cls is str or cls is Fraction or cls is Char:
            return
        if cls is Symbol:
            if value._interned:
                return
            # gensym: identity-bearing, falls through to the table
        elif cls is list or cls is tuple:
            queue.append(value)
            return
        elif (
            value is NIL
            or value is UNSPECIFIED
            or value is EOF_OBJECT
            or value is UNBOUND
            or value is TOMBSTONE
            or value is _NO_HALT
        ):
            return
        elif cls in _NODE_CLASS_SET or _node_source(value) is not None:
            self._add_node_tree(value, queue)
            return
        if id(value) in self.obj_ids:
            return
        if cls not in _EMITTERS:
            raise SnapshotError(
                f"snapshot: cannot serialize a value of type "
                f"{cls.__module__}.{cls.__name__}: {value!r}"
            )
        self.obj_ids[id(value)] = len(self.objects)
        self.objects.append(value)
        queue.append(_ObjVisit(value))

    def _add_node_tree(self, root: Any, queue: deque) -> None:
        """Register an IR tree (or code thunk) in the node table,
        children before parents, discovering constants/cells/symbols
        into the main object walk."""
        node_ids = self.node_ids
        stack: list[tuple[Any, bool]] = [(root, False)]
        while stack:
            item, expanded = stack.pop()
            if id(item) in node_ids:
                continue
            if expanded:
                node_ids[id(item)] = len(self.node_list)
                self.node_list.append(item)
                continue
            stack.append((item, True))
            node_kids, value_kids = _node_children(item)
            for v in value_kids:
                self._note(v, queue)
            for child in reversed(node_kids):
                stack.append((child, False))

    def _discover(self) -> None:
        session = self.session
        queue: deque = deque()
        # Global cells first: their table order *is* their id order, so
        # restore recreates the insertion order of the global table.
        for cell in session.globals.cells.values():
            self._note(cell, queue)
        self._note(session.machine, queue)
        for name, macro in session.expand_env.macros.items():
            self._note(name, queue)
            self._note(macro, queue)
        for handle in session._pending:
            self._note(handle, queue)
        if session._active is not None:
            self._note(session._active, queue)
        while queue:
            item = queue.popleft()
            cls = item.__class__
            if cls is _ObjVisit:
                obj = item.obj
                for child in _EMITTERS[obj.__class__][2](self, obj):
                    self._note(child, queue)
            else:  # list or tuple
                for child in item:
                    self._note(child, queue)

    # -- emission --------------------------------------------------------

    def _write_value(self, w: Writer, value: Any) -> None:
        if value is None:
            w.u8(_V_NONE)
            return
        if value is True:
            w.u8(_V_TRUE)
            return
        if value is False:
            w.u8(_V_FALSE)
            return
        cls = value.__class__
        if cls is int:
            w.u8(_V_INT)
            w.svarint(value)
        elif cls is float:
            w.u8(_V_FLOAT)
            w.f64(value)
        elif cls is str:
            w.u8(_V_STR)
            w.str_(value)
        elif cls is Fraction:
            w.u8(_V_FRACTION)
            w.svarint(value.numerator)
            w.svarint(value.denominator)
        elif cls is Char:
            w.u8(_V_CHAR)
            w.str_(value.value)
        elif cls is Symbol and value._interned:
            w.u8(_V_ISYM)
            w.str_(value.name)
        elif cls is list:
            w.u8(_V_LIST)
            w.varint(len(value))
            for item in value:
                self._write_value(w, item)
        elif cls is tuple:
            w.u8(_V_TUPLE)
            w.varint(len(value))
            for item in value:
                self._write_value(w, item)
        elif value is NIL:
            w.u8(_V_NIL)
        elif value is UNSPECIFIED:
            w.u8(_V_UNSPECIFIED)
        elif value is EOF_OBJECT:
            w.u8(_V_EOF)
        elif value is UNBOUND:
            w.u8(_V_UNBOUND)
        elif value is TOMBSTONE:
            w.u8(_V_TOMBSTONE)
        elif value is _NO_HALT:
            w.u8(_V_NO_HALT)
        else:
            oid = self.obj_ids.get(id(value))
            if oid is not None:
                w.u8(_V_OREF)
                w.varint(oid)
                return
            nid = self.node_ids.get(id(value))
            if nid is not None:
                w.u8(_V_NREF)
                w.varint(nid)
                return
            raise SnapshotError(f"snapshot: unregistered value {value!r}")

    def _write_node(self, w: Writer, node: Any) -> None:
        wv = self._write_value
        cls = node.__class__
        if cls is Const:
            w.u8(_N_CONST)
            wv(w, node.value)
        elif cls is Var:
            w.u8(_N_VAR)
            wv(w, node.name)
        elif cls is Lambda:
            w.u8(_N_LAMBDA)
            wv(w, node.params)
            wv(w, node.rest)
            wv(w, node.body)
            wv(w, node.name)
            wv(w, node.nslots)
            # EffectInfo travels as its bitmask (interned on read), so
            # facts survive without a dedicated object-table entry.
            wv(w, None if node.effects is None else node.effects.bits)
        elif cls is App:
            w.u8(_N_APP)
            wv(w, node.fn)
            wv(w, node.args)
        elif cls is If:
            w.u8(_N_IF)
            wv(w, node.test)
            wv(w, node.then)
            wv(w, node.els)
        elif cls is SetBang:
            w.u8(_N_SETBANG)
            wv(w, node.name)
            wv(w, node.expr)
        elif cls is Seq:
            w.u8(_N_SEQ)
            wv(w, node.exprs)
        elif cls is DefineTop:
            w.u8(_N_DEFINE_TOP)
            wv(w, node.name)
            wv(w, node.expr)
        elif cls is Pcall:
            w.u8(_N_PCALL)
            wv(w, node.exprs)
        elif cls is LocalRef:
            w.u8(_N_LOCAL_REF)
            w.varint(node.depth)
            w.varint(node.index)
            wv(w, node.name)
        elif cls is LocalSet:
            w.u8(_N_LOCAL_SET)
            w.varint(node.depth)
            w.varint(node.index)
            wv(w, node.expr)
            wv(w, node.name)
        elif cls is GlobalRef:
            w.u8(_N_GLOBAL_REF)
            wv(w, node.cell)
        elif cls is GlobalSet:
            w.u8(_N_GLOBAL_SET)
            wv(w, node.cell)
            wv(w, node.expr)
        else:
            source = _node_source(node)
            if source is None:
                raise SnapshotError(f"snapshot: not an IR node: {node!r}")
            w.u8(_N_CODE)
            wv(w, source)
            w.str_(stable_hash(source))

    def encode(self) -> bytes:
        session = self.session
        if session._in_pump:
            raise SnapshotError(
                f"session {session.name}: cannot snapshot from inside pump() — "
                "the machine is mid-quantum; snapshot between pumps"
            )
        self._discover()
        w = Writer()
        w.raw(MAGIC)
        w.u8(FORMAT_VERSION)
        machine = session.machine
        w.str_(session.name)
        w.str_(session.engine)
        w.str_(machine.policy.value)
        w.varint(machine.quantum)
        w.u8(
            (1 if machine.batched else 0)
            | (2 if machine.profile else 0)
            | (4 if session.output.echo else 0)
            | (8 if session.analysis else 0)
        )
        w.varint(session.max_pending)
        for watermark in _counter_watermarks():
            w.varint(watermark)
        # Object table.
        w.varint(len(self.objects))
        for obj in self.objects:
            tag, head, rest = _EMITTERS[obj.__class__]
            sub = Writer()
            head(self, sub, obj)
            for value in rest(self, obj):
                self._write_value(sub, value)
            payload = sub.getvalue()
            w.u8(tag)
            w.varint(len(payload))
            w.raw(payload)
        # Node table (already topologically ordered by discovery).
        w.varint(len(self.node_list))
        for node in self.node_list:
            self._write_node(w, node)
        # Session roots.
        wv = self._write_value
        wv(w, machine)
        wv(w, [(name, macro) for name, macro in session.expand_env.macros.items()])
        wv(w, sorted(session._loaded_examples))
        wv(w, list(session.output.parts))
        rs = session.resolver_stats
        wv(
            w,
            (
                rs.locals_resolved,
                rs.globals_resolved,
                rs.lambdas_resolved,
                rs.cells_interned,
                rs.cell_cache_hits,
            ),
        )
        cs = session.compile_stats
        wv(
            w,
            (cs.nodes_compiled, cs.lambdas_compiled, cs.apps_inlined, cs.tests_inlined),
        )
        gs = session.codegen_stats
        wv(w, tuple(getattr(gs, f.name) for f in dataclasses.fields(gs)))
        ast = session.analysis_stats
        wv(w, tuple(getattr(ast, name) for name in ast._FIELDS))
        m = session.metrics
        wv(
            w,
            (
                tuple(getattr(m, c) for c in m._COUNTERS),
                _hist_tuple(m.latency_us),
                _hist_tuple(m.steps_hist),
            ),
        )
        wv(w, list(session._pending))
        wv(w, session._active)
        return w.getvalue()


class _ObjVisit:
    """Discovery-queue marker: expand this object's children."""

    __slots__ = ("obj",)

    def __init__(self, obj: Any):
        self.obj = obj


def _node_children(item: Any) -> tuple[list, list]:
    """``(node children, value children)`` of an IR node / code thunk."""
    cls = item.__class__
    if cls is Const:
        return [], [item.value]
    if cls is Var:
        return [], [item.name]
    if cls is Lambda:
        return [item.body], [item.params, item.rest]
    if cls is App:
        return [item.fn, *item.args], []
    if cls is If:
        return [item.test, item.then, item.els], []
    if cls is SetBang:
        return [item.expr], [item.name]
    if cls is Seq:
        return list(item.exprs), []
    if cls is DefineTop:
        return [item.expr], [item.name]
    if cls is Pcall:
        return list(item.exprs), []
    if cls is LocalRef:
        return [], []
    if cls is LocalSet:
        return [item.expr], []
    if cls is GlobalRef:
        return [], [item.cell]
    if cls is GlobalSet:
        return [item.expr], [item.cell]
    source = _node_source(item)
    if source is None:
        raise SnapshotError(f"snapshot: not an IR node: {item!r}")
    return [source], []


def _hist_tuple(h: Histogram) -> tuple:
    return (list(h.counts), h.count, h.total, h.min, h.max)


def _counter_watermarks() -> tuple[int, int, int, int, int, int]:
    """Current positions of the six process-global uid streams, in
    wire order (gensym, task, label, future, handle, engine)."""
    from repro.control import engines as _engines
    from repro.control import futures as _futures
    from repro.datum import symbols as _symbols
    from repro.host import handle as _handle
    from repro.machine import links as _links
    from repro.machine import task as _task

    return (
        _symbols._gensym_counter.peek(),
        _task._task_ids.peek(),
        _links._label_ids.peek(),
        _futures._ids.peek(),
        _handle._handle_ids.peek(),
        _engines._ids.peek(),
    )


def _advance_counters(watermarks: tuple[int, ...]) -> None:
    """Advance the six uid streams to at least the snapshot's
    positions (never backwards: other sessions in this process may be
    further along)."""
    from repro.control import engines as _engines
    from repro.control import futures as _futures
    from repro.datum import symbols as _symbols
    from repro.host import handle as _handle
    from repro.machine import links as _links
    from repro.machine import task as _task

    gensym, task, label, future, handle, engine = watermarks
    _symbols._gensym_counter.advance(gensym)
    _task._task_ids.advance(task)
    _links._label_ids.advance(label)
    _futures._ids.advance(future)
    _handle._handle_ids.advance(handle)
    _engines._ids.advance(engine)


# -- per-type head/rest emitters ----------------------------------------
#
# Each entry: tag, head(enc, w, obj) writing construction scalars, and
# rest(enc, obj) returning the reference-bearing fields as a list of
# generic values.  ``rest`` doubles as the child enumerator for
# discovery, so emitted fields and discovered children can never drift.


def _no_head(enc: _Encoder, w: Writer, obj: Any) -> None:
    pass


def _name_head(enc: _Encoder, w: Writer, obj: Any) -> None:
    w.str_(obj.name)


def _uid_head(enc: _Encoder, w: Writer, obj: Any) -> None:
    w.varint(obj.uid)


def _no_rest(enc: _Encoder, obj: Any) -> list:
    return []


def _label_head(enc: _Encoder, w: Writer, obj: Label) -> None:
    w.varint(obj.uid)
    w.str_(obj.name)
    w.u8(1 if isinstance(obj, PromptLabel) else 0)


def _cell_head(enc: _Encoder, w: Writer, obj: GlobalCell) -> None:
    w.str_(obj.name.name)
    w.u8(1 if obj.name._interned else 0)


def _cell_rest(enc: _Encoder, obj: GlobalCell) -> list:
    return [obj.name, obj.value]


def _task_rest(enc: _Encoder, obj: Task) -> list:
    return [
        _CONTROL_TAGS[obj.tag],
        obj.payload,
        obj.env,
        obj.frames,
        obj.link,
        obj.state.value,
        obj.steps,
    ]


def _machine_rest(enc: _Encoder, obj: Machine) -> list:
    deadline = None if obj.deadline is None else obj.deadline - enc.now
    waiting = sorted(obj.waiting_tasks, key=lambda t: t.uid)
    state = obj.rng.getstate()
    return [
        obj.policy.value,
        obj.quantum,
        obj.max_steps,
        obj.engine,
        obj.batched,
        obj.profile,
        obj.fold,
        obj.recorder is not None,
        deadline,
        obj.toplevel_env,
        obj.root_entity,
        obj.root_label_link,
        list(obj.queue),
        obj.halt_value,
        obj.steps_total,
        list(obj.parked_futures),
        waiting,
        [(k, v) for k, v in obj.stats.items()],
        [(k, v) for k, v in obj.vm_stats.items()],
        (state[0], state[1], state[2]),
    ]


def _handle_rest(enc: _Encoder, obj: EvalHandle) -> list:
    deadline = None if obj.deadline_at is None else obj.deadline_at - enc.now
    return [
        list(obj.nodes),
        obj.max_steps,
        deadline,
        obj.state.value,
        list(obj.values),
        obj.steps,
        enc.now - obj.submitted_at,
        obj._cancel_requested,
        obj._node_index,
        obj._node_running,
        # The classification survives; the full ProgramReport is
        # transient (re-derivable by re-analyzing the source).
        obj.classification,
    ]


def _macro_rest(enc: _Encoder, obj: Macro) -> list:
    keywords = sorted(obj.keywords, key=lambda s: s.name)
    return [
        obj.name,
        keywords,
        [(rule.pattern, rule.template) for rule in obj.rules],
    ]


def _attr_rest(*names: str) -> Callable[[_Encoder, Any], list]:
    def rest(enc: _Encoder, obj: Any) -> list:
        return [getattr(obj, name) for name in names]

    return rest


def _closure_rest(enc: _Encoder, obj: Closure) -> list:
    eff = obj.effects
    return [
        obj.params,
        obj.rest,
        obj.body,
        obj.env,
        obj.name,
        obj.nslots,
        obj.low,
        obj.high,
        # EffectInfo as its interned bitmask, like Lambda nodes.
        None if eff is None else eff.bits,
    ]


_EMITTERS: dict[type, tuple[int, Callable, Callable]] = {
    Pair: (_O_PAIR, _no_head, _attr_rest("car", "cdr")),
    MVector: (_O_MVECTOR, _no_head, _attr_rest("items")),
    Symbol: (_O_GENSYM, _name_head, _no_rest),  # gensyms only (see _note)
    GlobalCell: (_O_CELL, _cell_head, _cell_rest),
    Primitive: (_O_PRIMITIVE, _name_head, _no_rest),
    ControlPrimitive: (_O_CONTROL_PRIMITIVE, _name_head, _no_rest),
    Closure: (_O_CLOSURE, _no_head, _closure_rest),
    Environment: (
        _O_ENVIRONMENT,
        _no_head,
        lambda enc, obj: [[(k, v) for k, v in obj.bindings.items()], obj.parent],
    ),
    SlotRib: (_O_SLOT_RIB, _no_head, lambda enc, obj: [list(obj.values), obj.parent]),
    Task: (_O_TASK, _uid_head, _task_rest),
    Label: (_O_LABEL, _label_head, _no_rest),
    PromptLabel: (_O_LABEL, _label_head, _no_rest),
    HaltLink: (_O_HALT_LINK, _no_head, _attr_rest("machine", "placeholder", "child")),
    LabelLink: (
        _O_LABEL_LINK,
        _no_head,
        _attr_rest("label", "cont_frames", "cont_link", "child"),
    ),
    ForkLink: (_O_FORK_LINK, _no_head, _attr_rest("join", "index")),
    Join: (
        _O_JOIN,
        _no_head,
        _attr_rest("slots", "delivered", "remaining", "children", "cont_frames", "cont_link"),
    ),
    AppFrame: (_O_APP_FRAME, _no_head, _attr_rest("done", "pending", "env", "next")),
    IfFrame: (_O_IF_FRAME, _no_head, _attr_rest("then", "els", "env", "next")),
    SeqFrame: (_O_SEQ_FRAME, _no_head, _attr_rest("remaining", "env", "next")),
    SetFrame: (_O_SET_FRAME, _no_head, _attr_rest("name", "env", "next")),
    LocalSetFrame: (
        _O_LOCAL_SET_FRAME,
        _no_head,
        _attr_rest("depth", "index", "env", "next"),
    ),
    GlobalSetFrame: (_O_GLOBAL_SET_FRAME, _no_head, _attr_rest("cell", "next")),
    DefineFrame: (_O_DEFINE_FRAME, _no_head, _attr_rest("name", "env", "next")),
    Capture: (_O_CAPTURE, _no_head, _attr_rest("root", "hole")),
    ProcessController: (_O_CONTROLLER, _no_head, _attr_rest("label")),
    ProcessContinuation: (_O_PROCESS_CONT, _no_head, _attr_rest("capture")),
    RootContinuation: (_O_ROOT_CONT, _no_head, _attr_rest("capture")),
    LeafContinuation: (_O_LEAF_CONT, _no_head, _attr_rest("frames", "link")),
    FunctionalContinuation: (_O_FUNCTIONAL_CONT, _no_head, _attr_rest("capture")),
    FuturePlaceholder: (
        _O_PLACEHOLDER,
        _uid_head,
        _attr_rest("resolved", "value", "waiters"),
    ),
    EngineValue: (_O_ENGINE, _uid_head, _attr_rest("machine", "spent", "mileage")),
    Machine: (_O_MACHINE, _no_head, _machine_rest),
    Macro: (_O_MACRO, _no_head, _macro_rest),
    EvalHandle: (_O_HANDLE, _uid_head, _handle_rest),
}

_NODE_CLASS_SET = set(_NODE_CLASSES)


# =======================================================================
# Decoder
# =======================================================================


class _Decoder:
    def __init__(
        self,
        blob: bytes,
        *,
        record: Any = None,
        name: str | None = None,
        engine: str | None = None,
    ):
        self.reader = Reader(blob)
        self.record = record
        self.name_override = name
        self.engine_override = engine
        #: The engine the restored session runs under (stored engine or
        #: the override); decided in :meth:`decode` before the node
        #: table is built, because it selects the ``_N_CODE`` recompile
        #: path.
        self.engine: str | None = None
        self.objects: list[Any] = []
        self.nodes: list[Any] = []
        self.code_cache: dict[str, Any] = {}
        self.scratch_compile_stats = CompileStats()
        self.scratch_codegen_stats = CodegenStats()
        self.now = _monotonic()
        self.session: Session | None = None
        self.globals = None
        self.primitives: dict[str, Primitive] = {}
        self.control_primitives: dict[str, ControlPrimitive] = {}

    # -- generic value reader -------------------------------------------

    def _read_value(self, r: Reader) -> Any:
        tag = r.u8()
        if tag == _V_NONE:
            return None
        if tag == _V_TRUE:
            return True
        if tag == _V_FALSE:
            return False
        if tag == _V_INT:
            return r.svarint()
        if tag == _V_FLOAT:
            return r.f64()
        if tag == _V_STR:
            return r.str_()
        if tag == _V_LIST:
            return [self._read_value(r) for _ in range(r.varint())]
        if tag == _V_TUPLE:
            return tuple(self._read_value(r) for _ in range(r.varint()))
        if tag == _V_FRACTION:
            num = r.svarint()
            return Fraction(num, r.svarint())
        if tag == _V_NIL:
            return NIL
        if tag == _V_UNSPECIFIED:
            return UNSPECIFIED
        if tag == _V_EOF:
            return EOF_OBJECT
        if tag == _V_UNBOUND:
            return UNBOUND
        if tag == _V_TOMBSTONE:
            return TOMBSTONE
        if tag == _V_NO_HALT:
            return _NO_HALT
        if tag == _V_CHAR:
            return Char(r.str_())
        if tag == _V_ISYM:
            return intern(r.str_())
        if tag == _V_OREF:
            idx = r.varint()
            if idx >= len(self.objects):
                raise SnapshotFormatError(f"dangling object reference #{idx}")
            return self.objects[idx]
        if tag == _V_NREF:
            idx = r.varint()
            if idx >= len(self.nodes):
                raise SnapshotFormatError(f"dangling node reference #{idx}")
            return self.nodes[idx]
        raise SnapshotFormatError(f"unknown value tag {tag}")

    # -- node building ---------------------------------------------------

    def _build_node(self, r: Reader) -> Any:
        rv = self._read_value
        tag = r.u8()
        if tag == _N_CONST:
            return Const(rv(r))
        if tag == _N_VAR:
            return Var(rv(r))
        if tag == _N_LAMBDA:
            params = rv(r)
            rest = rv(r)
            body = rv(r)
            name = rv(r)
            nslots = rv(r)
            bits = rv(r)
            return Lambda(
                params,
                rest,
                body,
                name,
                nslots,
                None if bits is None else EffectInfo.from_bits(bits),
            )
        if tag == _N_APP:
            fn = rv(r)
            return App(fn, rv(r))
        if tag == _N_IF:
            test = rv(r)
            then = rv(r)
            return If(test, then, rv(r))
        if tag == _N_SETBANG:
            name = rv(r)
            return SetBang(name, rv(r))
        if tag == _N_SEQ:
            return Seq(rv(r))
        if tag == _N_DEFINE_TOP:
            name = rv(r)
            return DefineTop(name, rv(r))
        if tag == _N_PCALL:
            return Pcall(rv(r))
        if tag == _N_LOCAL_REF:
            depth = r.varint()
            index = r.varint()
            return LocalRef(depth, index, rv(r))
        if tag == _N_LOCAL_SET:
            depth = r.varint()
            index = r.varint()
            expr = rv(r)
            return LocalSet(depth, index, expr, rv(r))
        if tag == _N_GLOBAL_REF:
            return GlobalRef(rv(r))
        if tag == _N_GLOBAL_SET:
            cell = rv(r)
            return GlobalSet(cell, rv(r))
        if tag == _N_CODE:
            node = rv(r)
            digest = r.str_()
            cached = self.code_cache.get(digest)
            if cached is not None:
                return cached
            if stable_hash(node) != digest:
                raise SnapshotFormatError(
                    "snapshot integrity failure: decoded IR does not match "
                    f"its stored hash {digest[:16]}…"
                )
            # The restoring engine decides the executable form: codegen
            # routes through its digest-keyed code cache, compiled
            # rebuilds closure thunks, and the tree-walking engines
            # keep the raw resolved IR (their steppers evaluate nodes
            # directly — a restored closure's resolved body runs fine
            # under either walker).
            if self.engine == "codegen":
                thunk = codegen_node(node, self.scratch_codegen_stats)
            elif self.engine == "compiled":
                thunk = compile_node(node, self.scratch_compile_stats)
            else:
                thunk = node
            self.code_cache[digest] = thunk
            return thunk
        raise SnapshotFormatError(f"unknown node tag {tag}")

    # -- decode ----------------------------------------------------------

    def decode(self) -> Session:
        r = self.reader
        if r.raw(4) != MAGIC:
            raise SnapshotFormatError("not a session snapshot (bad magic)")
        version = r.u8()
        if version != FORMAT_VERSION:
            raise SnapshotFormatError(
                f"unsupported snapshot format version {version} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        name = r.str_()
        engine = r.str_()
        if self.engine_override is not None:
            engine = self.engine_override
        self.engine = engine
        policy = r.str_()
        quantum = r.varint()
        flags = r.u8()
        batched = bool(flags & 1)
        profile = bool(flags & 2)
        echo = bool(flags & 4)
        analysis = bool(flags & 8)
        max_pending = r.varint()
        watermarks = tuple(r.varint() for _ in range(6))

        session = Session(
            policy=SchedulerPolicy(policy),
            quantum=quantum,
            prelude=False,
            echo_output=echo,
            engine=engine,
            batched=batched,
            profile=profile,
            max_pending=max_pending,
            name=self.name_override if self.name_override is not None else name,
            record=self.record,
            analysis=analysis,
        )
        self.session = session
        self.globals = session.globals
        self.record = session.machine.recorder  # resolved Recorder or None
        for cell in session.globals.cells.values():
            value = cell.value
            if isinstance(value, Primitive):
                self.primitives[value.name] = value
            elif isinstance(value, ControlPrimitive):
                self.control_primitives[value.name] = value

        # Phase 1: construct every object from its head; stash the
        # rest-bytes for phase 3.
        count = r.varint()
        rests: list[tuple[int, Reader, Any]] = []
        for _ in range(count):
            tag = r.u8()
            length = r.varint()
            payload = Reader(r.data, r.pos, r.pos + length)
            r.pos += length
            maker = _MAKERS.get(tag)
            if maker is None:
                raise SnapshotFormatError(f"unknown object tag {tag}")
            obj = maker(self, payload)
            self.objects.append(obj)
            rests.append((tag, payload, obj))

        # Phase 2: the IR DAG (children precede parents), recompiling
        # code stubs as their source nodes complete.
        for _ in range(r.varint()):
            self.nodes.append(self._build_node(r))

        # Phase 3: fill reference-bearing fields.
        for tag, payload, obj in rests:
            _FILLERS[tag](self, payload, obj)

        # Phase 4: session roots.
        rv = self._read_value
        machine = rv(r)
        if not isinstance(machine, Machine):
            raise SnapshotFormatError("snapshot root is not a machine")
        macros = rv(r)
        loaded = rv(r)
        parts = rv(r)
        resolver = rv(r)
        compile_counts = rv(r)
        codegen_counts = rv(r)
        analysis_counts = rv(r)
        metrics = rv(r)
        pending = rv(r)
        active = rv(r)

        session.machine = machine
        session.output.parts = list(parts)
        session.expand_env.macros.clear()
        for macro_name, macro in macros:
            session.expand_env.macros[macro_name] = macro
        session._loaded_examples = set(loaded)
        rs = session.resolver_stats
        (
            rs.locals_resolved,
            rs.globals_resolved,
            rs.lambdas_resolved,
            rs.cells_interned,
            rs.cell_cache_hits,
        ) = resolver
        cs = session.compile_stats
        (
            cs.nodes_compiled,
            cs.lambdas_compiled,
            cs.apps_inlined,
            cs.tests_inlined,
        ) = compile_counts
        gs = session.codegen_stats
        for field, value in zip(dataclasses.fields(gs), codegen_counts):
            setattr(gs, field.name, value)
        ast = session.analysis_stats
        for field, value in zip(ast._FIELDS, analysis_counts):
            setattr(ast, field, value)
        counters, latency, steps_hist = metrics
        m = session.metrics
        for field, value in zip(m._COUNTERS, counters):
            setattr(m, field, value)
        _fill_hist(m.latency_us, latency)
        _fill_hist(m.steps_hist, steps_hist)
        session._pending = deque(pending)
        session._active = active
        for handle in session._pending:
            handle.session = session
        if active is not None:
            active.session = session
        _advance_counters(watermarks)
        return session


def _fill_hist(h: Histogram, data: tuple) -> None:
    counts, count, total, mn, mx = data
    h.counts = list(counts)
    h.count = count
    h.total = total
    h.min = mn
    h.max = mx


# -- per-type makers / fillers ------------------------------------------


def _make_blank(cls: type) -> Callable[["_Decoder", Reader], Any]:
    def make(dec: "_Decoder", r: Reader) -> Any:
        return object.__new__(cls)

    return make


def _fill_attrs(*names: str) -> Callable[["_Decoder", Reader, Any], None]:
    def fill(dec: "_Decoder", r: Reader, obj: Any) -> None:
        for name in names:
            setattr(obj, name, dec._read_value(r))

    return fill


def _fill_frozen(*names: str) -> Callable[["_Decoder", Reader, Any], None]:
    def fill(dec: "_Decoder", r: Reader, obj: Any) -> None:
        for name in names:
            object.__setattr__(obj, name, dec._read_value(r))

    return fill


def _make_gensym(dec: _Decoder, r: Reader) -> Symbol:
    return Symbol(r.str_(), _interned=False)


def _make_cell(dec: _Decoder, r: Reader) -> GlobalCell:
    name = r.str_()
    interned = bool(r.u8())
    if interned:
        # Merge by name into the restoring session's table: identity is
        # shared with the freshly installed bindings.
        return dec.globals.cell(intern(name))
    return object.__new__(GlobalCell)


def _fill_cell(dec: _Decoder, r: Reader, obj: GlobalCell) -> None:
    name = dec._read_value(r)
    obj.name = name
    obj.value = dec._read_value(r)
    if not name._interned and dec.globals.cells.get(name) is not obj:
        # A gensym-named cell can't merge by spelling; register it
        # under its (restored) identity.
        dec.globals.cells[name] = obj


def _make_primitive(dec: _Decoder, r: Reader) -> Primitive:
    name = r.str_()
    prim = dec.primitives.get(name)
    if prim is None:
        raise SnapshotError(
            f"snapshot references primitive {name!r}, which this build "
            "does not install"
        )
    return prim


def _make_control_primitive(dec: _Decoder, r: Reader) -> ControlPrimitive:
    name = r.str_()
    prim = dec.control_primitives.get(name)
    if prim is None:
        raise SnapshotError(
            f"snapshot references control primitive {name!r}, which this "
            "build does not install"
        )
    return prim


def _make_task(dec: _Decoder, r: Reader) -> Task:
    task = object.__new__(Task)
    task.uid = r.varint()
    return task


def _fill_task(dec: _Decoder, r: Reader, task: Task) -> None:
    rv = dec._read_value
    task.tag = _CONTROL_TAG_LIST[rv(r)]
    task.payload = rv(r)
    task.env = rv(r)
    task.frames = rv(r)
    task.link = rv(r)
    task.state = TaskState(rv(r))
    task.steps = rv(r)


def _make_label(dec: _Decoder, r: Reader) -> Label:
    uid = r.varint()
    name = r.str_()
    prompt = bool(r.u8())
    label = object.__new__(PromptLabel if prompt else Label)
    label.uid = uid
    label.name = name
    return label


def _make_uid(cls: type) -> Callable[["_Decoder", Reader], Any]:
    def make(dec: "_Decoder", r: Reader) -> Any:
        obj = object.__new__(cls)
        obj.uid = r.varint()
        return obj

    return make


def _fill_environment(dec: _Decoder, r: Reader, env: Environment) -> None:
    bindings = dec._read_value(r)
    env.bindings = dict(bindings)
    env.parent = dec._read_value(r)
    env.globals = dec.globals


def _fill_machine(dec: _Decoder, r: Reader, machine: Machine) -> None:
    rv = dec._read_value
    policy = rv(r)
    quantum = rv(r)
    max_steps = rv(r)
    engine = rv(r)
    batched = rv(r)
    profile = rv(r)
    fold = rv(r)
    has_recorder = rv(r)
    deadline = rv(r)
    machine.__init__(
        dec.globals,
        policy=SchedulerPolicy(policy),
        seed=0,
        quantum=quantum,
        max_steps=max_steps,
        engine=engine,
        batched=batched,
        profile=profile,
        record=dec.record if has_recorder else None,
    )
    machine.fold = fold
    machine.deadline = None if deadline is None else dec.now + deadline
    machine.toplevel_env = rv(r)
    machine.root_entity = rv(r)
    machine.root_label_link = rv(r)
    machine.queue = deque(rv(r))
    machine.halt_value = rv(r)
    machine.steps_total = rv(r)
    machine.parked_futures = rv(r)
    machine.waiting_tasks = set(rv(r))
    machine.stats = dict(rv(r))
    machine.vm_stats = dict(rv(r))
    state = rv(r)
    machine.rng.setstate((state[0], state[1], state[2]))


def _fill_handle(dec: _Decoder, r: Reader, handle: EvalHandle) -> None:
    rv = dec._read_value
    handle.session = None  # type: ignore[assignment]  # wired in finalize
    handle.nodes = rv(r)
    handle.max_steps = rv(r)
    deadline = rv(r)
    handle.deadline_at = None if deadline is None else dec.now + deadline
    handle.state = HandleState(rv(r))
    handle.values = rv(r)
    handle.steps = rv(r)
    handle.submitted_at = dec.now - rv(r)
    handle._exception = None
    handle._cancel_requested = rv(r)
    handle._node_index = rv(r)
    handle._node_running = rv(r)
    handle.report = None  # transient; re-derivable from the source
    handle.classification = rv(r)


def _fill_closure(dec: _Decoder, r: Reader, obj: Closure) -> None:
    rv = dec._read_value
    obj.params = rv(r)
    obj.rest = rv(r)
    obj.body = rv(r)
    obj.env = rv(r)
    obj.name = rv(r)
    obj.nslots = rv(r)
    obj.low = rv(r)
    obj.high = rv(r)
    bits = rv(r)
    obj.effects = None if bits is None else EffectInfo.from_bits(bits)


def _fill_macro(dec: _Decoder, r: Reader, macro: Macro) -> None:
    rv = dec._read_value
    macro.name = rv(r)
    macro.keywords = frozenset(rv(r))
    macro.rules = [Rule(pattern, template) for pattern, template in rv(r)]


_MAKERS: dict[int, Callable[[_Decoder, Reader], Any]] = {
    _O_PAIR: _make_blank(Pair),
    _O_MVECTOR: _make_blank(MVector),
    _O_GENSYM: _make_gensym,
    _O_CELL: _make_cell,
    _O_PRIMITIVE: _make_primitive,
    _O_CONTROL_PRIMITIVE: _make_control_primitive,
    _O_CLOSURE: _make_blank(Closure),
    _O_ENVIRONMENT: _make_blank(Environment),
    _O_SLOT_RIB: _make_blank(SlotRib),
    _O_TASK: _make_task,
    _O_LABEL: _make_label,
    _O_HALT_LINK: _make_blank(HaltLink),
    _O_LABEL_LINK: _make_blank(LabelLink),
    _O_FORK_LINK: _make_blank(ForkLink),
    _O_JOIN: _make_blank(Join),
    _O_APP_FRAME: _make_blank(AppFrame),
    _O_IF_FRAME: _make_blank(IfFrame),
    _O_SEQ_FRAME: _make_blank(SeqFrame),
    _O_SET_FRAME: _make_blank(SetFrame),
    _O_LOCAL_SET_FRAME: _make_blank(LocalSetFrame),
    _O_GLOBAL_SET_FRAME: _make_blank(GlobalSetFrame),
    _O_DEFINE_FRAME: _make_blank(DefineFrame),
    _O_CAPTURE: _make_blank(Capture),
    _O_CONTROLLER: _make_blank(ProcessController),
    _O_PROCESS_CONT: _make_blank(ProcessContinuation),
    _O_ROOT_CONT: _make_blank(RootContinuation),
    _O_LEAF_CONT: _make_blank(LeafContinuation),
    _O_FUNCTIONAL_CONT: _make_blank(FunctionalContinuation),
    _O_PLACEHOLDER: _make_uid(FuturePlaceholder),
    _O_ENGINE: _make_uid(EngineValue),
    _O_MACHINE: _make_blank(Machine),
    _O_MACRO: _make_blank(Macro),
    _O_HANDLE: _make_uid(EvalHandle),
}

_FILLERS: dict[int, Callable[[_Decoder, Reader, Any], None]] = {
    _O_PAIR: _fill_attrs("car", "cdr"),
    _O_MVECTOR: _fill_attrs("items"),
    _O_GENSYM: lambda dec, r, obj: None,
    _O_CELL: _fill_cell,
    _O_PRIMITIVE: lambda dec, r, obj: None,
    _O_CONTROL_PRIMITIVE: lambda dec, r, obj: None,
    _O_CLOSURE: _fill_closure,
    _O_ENVIRONMENT: _fill_environment,
    _O_SLOT_RIB: _fill_attrs("values", "parent"),
    _O_TASK: _fill_task,
    _O_LABEL: lambda dec, r, obj: None,
    _O_HALT_LINK: _fill_attrs("machine", "placeholder", "child"),
    _O_LABEL_LINK: _fill_attrs("label", "cont_frames", "cont_link", "child"),
    _O_FORK_LINK: _fill_attrs("join", "index"),
    _O_JOIN: _fill_attrs(
        "slots", "delivered", "remaining", "children", "cont_frames", "cont_link"
    ),
    _O_APP_FRAME: _fill_attrs("done", "pending", "env", "next"),
    _O_IF_FRAME: _fill_attrs("then", "els", "env", "next"),
    _O_SEQ_FRAME: _fill_attrs("remaining", "env", "next"),
    _O_SET_FRAME: _fill_attrs("name", "env", "next"),
    _O_LOCAL_SET_FRAME: _fill_attrs("depth", "index", "env", "next"),
    _O_GLOBAL_SET_FRAME: _fill_attrs("cell", "next"),
    _O_DEFINE_FRAME: _fill_attrs("name", "env", "next"),
    _O_CAPTURE: _fill_frozen("root", "hole"),
    _O_CONTROLLER: _fill_attrs("label"),
    _O_PROCESS_CONT: _fill_attrs("capture"),
    _O_ROOT_CONT: _fill_attrs("capture"),
    _O_LEAF_CONT: _fill_attrs("frames", "link"),
    _O_FUNCTIONAL_CONT: _fill_attrs("capture"),
    _O_PLACEHOLDER: _fill_attrs("resolved", "value", "waiters"),
    _O_ENGINE: _fill_attrs("machine", "spent", "mileage"),
    _O_MACHINE: _fill_machine,
    _O_MACRO: _fill_macro,
    _O_HANDLE: _fill_handle,
}


# =======================================================================
# Public API
# =======================================================================


def snapshot_session(session: Session) -> bytes:
    """Serialize ``session`` — idle or suspended mid-evaluation — into
    a self-contained blob.  Deterministic: the same session state
    yields the same bytes."""
    return _Encoder(session).encode()


def restore_session(
    blob: bytes,
    *,
    record: Any = None,
    name: str | None = None,
    engine: str | None = None,
) -> Session:
    """Rebuild a :class:`~repro.host.session.Session` from a snapshot
    blob, in this or any other process.

    ``record`` attaches an observability recorder to the restored
    session (recorders are never serialized); ``name`` overrides the
    stored session name (the cluster tier uses this to keep shard-local
    names stable).  ``engine`` restores under a different engine than
    the one that took the snapshot — snapshots record code as resolved
    IR plus digest, so any engine can rebuild its own executable form
    (cross-engine migration; values are engine-independent).  Raises
    :class:`~repro.errors.SnapshotFormatError` on malformed or
    version-incompatible blobs.
    """
    from repro.machine.scheduler import normalize_engine

    if engine is not None:
        engine = normalize_engine(engine)
    return _Decoder(blob, record=record, name=name, engine=engine).decode()
