"""Serializable session snapshots.

:func:`snapshot_session` walks the reachable graph of a suspended
:class:`~repro.host.session.Session` — machine registers, process
trees, captured continuations, parked future forests, global cells,
macro tables, pending handles — into a versioned, deterministic byte
string; :func:`restore_session` rebuilds an equivalent session in any
process.  Compiled code is never serialized: closures carry the stable
hash of their source IR and are recompiled on restore.

This is the substrate of the cluster tier (:mod:`repro.cluster`), which
moves idle sessions between shard processes as snapshot blobs.  See
``docs/CLUSTER.md`` for the normative wire-format description.
"""

from repro.snapshot.codec import (
    FORMAT_VERSION,
    MAGIC,
    restore_session,
    snapshot_session,
)

#: Public alias for the wire-format version this build reads and writes.
SNAPSHOT_VERSION = FORMAT_VERSION

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "SNAPSHOT_VERSION",
    "restore_session",
    "snapshot_session",
]
