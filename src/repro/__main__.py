"""``python -m repro`` — the REPL / CLI entry point."""

import sys

from repro.repl import main

if __name__ == "__main__":
    sys.exit(main())
