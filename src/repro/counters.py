"""Serializable uid counters.

Every uid stream in the runtime (task uids, label uids, future
placeholder uids, eval-handle uids, the gensym counter) used to be an
:class:`itertools.count`, which cannot be *observed* without consuming
a value and cannot be *advanced* to a floor.  Both operations are
required by the snapshot codec (:mod:`repro.snapshot`): a snapshot
records each stream's watermark (the next value it would hand out), and
restoring in a fresh process advances that process's streams to the
watermark so the resumed computation allocates exactly the uids the
original process would have — uids leak into label names, task reprs,
trace events and error messages, so carrying them is part of the
byte-identical-resume contract.

:class:`SerialCounter` is a drop-in replacement: ``next(counter)``
works unchanged, ``peek()`` reads the watermark without consuming, and
``advance(floor)`` raises the stream to at least ``floor`` (never
lowers it — a restore must not hand out uids the restoring process has
already used).
"""

from __future__ import annotations

__all__ = ["SerialCounter"]


class SerialCounter:
    """A monotone integer stream supporting peek and advance."""

    __slots__ = ("value",)

    def __init__(self, start: int = 0):
        self.value = start

    def __next__(self) -> int:
        value = self.value
        self.value = value + 1
        return value

    def __iter__(self) -> "SerialCounter":
        return self

    def peek(self) -> int:
        """The next value :func:`next` would return (the watermark)."""
        return self.value

    def advance(self, floor: int) -> None:
        """Raise the stream so the next value is at least ``floor``."""
        if floor > self.value:
            self.value = floor

    def reset(self, start: int = 0) -> None:
        """Restart the stream (test determinism only)."""
        self.value = start

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SerialCounter({self.value})"
