"""The Scheme prelude, loaded into every interpreter.

Everything here is ordinary Scheme over the primitives — exercising the
expander and machine on real library code.  The binary-tree helpers
(``make-tree``/``empty?``/``node``/``left``/``right``) provide the
representation Section 5's ``parallel-search`` example presumes.
"""

PRELUDE = r"""
;; ------------------------------------------------------------------
;; Higher-order list utilities
;; ------------------------------------------------------------------

(define (map f ls . more)
  (define (map1 ls)
    (if (null? ls)
        '()
        (cons (f (car ls)) (map1 (cdr ls)))))
  (define (any-null? lss)
    (cond
      [(null? lss) #f]
      [(null? (car lss)) #t]
      [else (any-null? (cdr lss))]))
  (define (cars lss)
    (if (null? lss) '() (cons (car (car lss)) (cars (cdr lss)))))
  (define (cdrs lss)
    (if (null? lss) '() (cons (cdr (car lss)) (cdrs (cdr lss)))))
  (define (mapn lss)
    (if (any-null? lss)
        '()
        (cons (apply f (cars lss)) (mapn (cdrs lss)))))
  (if (null? more)
      (map1 ls)
      (mapn (cons ls more))))

(define (for-each f ls . more)
  (if (null? more)
      (let loop ([ls ls])
        (unless (null? ls)
          (f (car ls))
          (loop (cdr ls))))
      (let loop ([lss (cons ls more)])
        (unless (memv '() lss)
          (apply f (map car lss))
          (loop (map cdr lss))))))

(define (filter keep? ls)
  (cond
    [(null? ls) '()]
    [(keep? (car ls)) (cons (car ls) (filter keep? (cdr ls)))]
    [else (filter keep? (cdr ls))]))

(define (fold-left f init ls)
  (if (null? ls)
      init
      (fold-left f (f init (car ls)) (cdr ls))))

(define (fold-right f init ls)
  (if (null? ls)
      init
      (f (car ls) (fold-right f init (cdr ls)))))

(define (reduce f init ls)
  (if (null? ls) init (fold-left f (car ls) (cdr ls))))

(define (remove x ls)
  (filter (lambda (y) (not (equal? x y))) ls))

(define (list-copy ls)
  (if (null? ls) '() (cons (car ls) (list-copy (cdr ls)))))

(define (list-index pred? ls)
  (let loop ([ls ls] [i 0])
    (cond
      [(null? ls) #f]
      [(pred? (car ls)) i]
      [else (loop (cdr ls) (+ i 1))])))

(define (count pred? ls)
  (fold-left (lambda (n x) (if (pred? x) (+ n 1) n)) 0 ls))

(define (andmap pred? ls)
  (cond
    [(null? ls) #t]
    [(pred? (car ls)) (andmap pred? (cdr ls))]
    [else #f]))

(define (ormap pred? ls)
  (cond
    [(null? ls) #f]
    [(pred? (car ls)) #t]
    [else (ormap pred? (cdr ls))]))

;; ------------------------------------------------------------------
;; Binary trees (the representation Section 5's examples assume)
;; ------------------------------------------------------------------

;; A tree is either '() (empty) or (vector node-value left right).

(define the-empty-tree '())

(define (empty? tree) (null? tree))

(define (make-tree value left right) (vector value left right))

(define (leaf value) (make-tree value '() '()))

(define (node tree) (vector-ref tree 0))
(define (left tree) (vector-ref tree 1))
(define (right tree) (vector-ref tree 2))

(define (tree-insert tree value)
  ;; Binary-search-tree insertion; used by tests and benches to build
  ;; deterministic trees.
  (if (empty? tree)
      (leaf value)
      (if (< value (node tree))
          (make-tree (node tree) (tree-insert (left tree) value) (right tree))
          (make-tree (node tree) (left tree) (tree-insert (right tree) value)))))

(define (list->tree ls)
  (fold-left tree-insert the-empty-tree ls))

(define (tree-size tree)
  (if (empty? tree)
      0
      (+ 1 (tree-size (left tree)) (tree-size (right tree)))))

(define (tree->list tree)
  ;; In-order walk.
  (if (empty? tree)
      '()
      (append (tree->list (left tree))
              (cons (node tree) (tree->list (right tree))))))

;; ------------------------------------------------------------------
;; Promises (R3RS delay/force, memoized)
;; ------------------------------------------------------------------

(define (make-promise thunk)
  (let ([done #f] [value #f])
    (lambda ()
      (unless done
        (let ([v (thunk)])
          ;; Re-check: the thunk may have forced this promise itself.
          (unless done
            (set! value v)
            (set! done #t))))
      value)))

(extend-syntax (delay)
  [(delay e) (make-promise (lambda () e))])

(define (force promise) (promise))

;; ------------------------------------------------------------------
;; Miscellany
;; ------------------------------------------------------------------

(define (compose f g) (lambda args (f (apply g args))))

(define (identity x) x)

(define (constantly x) (lambda args x))
"""
