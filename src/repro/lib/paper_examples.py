"""Every program that appears in the paper, as named Scheme sources.

Subscripted names (``product₀``) are spelled with ASCII (``product0``);
everything else is verbatim.  Tests in ``tests/lib`` and the benchmark
harness load these rather than re-typing the programs, so the repo has
exactly one copy of each paper figure.
"""

# Section 2 — make-cell (first-class procedures demonstration).
MAKE_CELL = r"""
(define make-cell
  (lambda (x)
    (cons (lambda () x)
          (lambda (v) (set! x v)))))
"""

# Section 3 — product with an escape continuation.
PRODUCT0 = r"""
(define product0
  (lambda (ls exit)
    (cond
      [(null? ls) 1]
      [(= (car ls) 0) (exit 0)]
      [else (* (car ls) (product0 (cdr ls) exit))])))
"""

PRODUCT_CALLCC = r"""
(define product
  (lambda (ls)
    (call/cc
      (lambda (exit)
        (product0 ls exit)))))
"""

# The same, with the leaf policy, for use inside pcall branches.
PRODUCT_CALLCC_LEAF = r"""
(define product-leaf
  (lambda (ls)
    (call/cc-leaf
      (lambda (exit)
        (product0 ls exit)))))
"""

# Section 3 — the shared-exit product of two lists (sequential).
PRODUCT_OF_PRODUCTS_CALLCC = r"""
(define (product-of-products ls1 ls2)
  (call/cc
    (lambda (k)
      (* (product0 ls1 k)
         (product0 ls2 k)))))
"""

# Section 5 — spawn/exit: the general-purpose nonlocal exit.
SPAWN_EXIT = r"""
(define spawn/exit
  (lambda (proc)
    (spawn
      (lambda (controller)
        (proc (lambda (exit-value)
                (controller (lambda (ignored-continuation) exit-value))))))))
"""

# Section 5 — sum of concurrently computed products (branch-local exits).
SUM_OF_PRODUCTS = r"""
(define (sum-of-products ls1 ls2)
  (pcall +
         (spawn/exit (lambda (exit) (product0 ls1 exit)))
         (spawn/exit (lambda (exit) (product0 ls2 exit)))))
"""

# Section 5 — product of concurrently computed products (subtree abort).
PRODUCT_OF_PRODUCTS_SPAWN = r"""
(define (product-of-products/spawn ls1 ls2)
  (spawn/exit
    (lambda (exit)
      (pcall * (product0 ls1 exit) (product0 ls2 exit)))))
"""

# Section 5 — first-true and parallel-or.  If neither branch exits,
# the operator branch yields the identity procedure and the argument
# branch yields #f, so the pcall "returns an identity procedure applied
# to a false value" exactly as the paper describes.
FIRST_TRUE = r"""
(define first-true
  (lambda (proc1 proc2)
    (spawn/exit
      (lambda (exit)
        (pcall
          (let ([v (proc1)]) (when v (exit v)) (lambda (x) x))
          (let ([v (proc2)]) (when v (exit v)) #f))))))
"""

PARALLEL_OR = r"""
(extend-syntax (parallel-or)
  [(parallel-or e1 e2)
   (first-true (lambda () e1) (lambda () e2))])
"""

# Section 5 — parallel-search: suspend on a hit, resume on demand.
PARALLEL_SEARCH = r"""
(define parallel-search
  (lambda (tree predicate?)
    (spawn
      (lambda (c)
        (define search
          (lambda (tree)
            (unless (empty? tree)
              (pcall
                (lambda (x y z) #f)
                (when (predicate? (node tree))
                  (c (lambda (k)
                       (cons (node tree)
                             (lambda ()
                               (k #f))))))
                (search (left tree))
                (search (right tree))))))
        (search tree)
        #f))))
"""

SEARCH_ALL = r"""
(define search-all
  (lambda (tree predicate?)
    (let loop ([result (parallel-search tree predicate?)])
      (if (pair? result)
          (cons (car result) (loop ((cdr result))))
          '()))))
"""

# Section 4 — the three controller-validity examples, as expressions.
INVALID_AFTER_RETURN = r"""
((spawn (lambda (c) c)) (lambda (k) k))
"""

INVALID_AFTER_USE = r"""
(spawn
  (lambda (c)
    (c (lambda (k)
         (c (lambda (k2) k2))))))
"""

VALID_AFTER_REINSTATEMENT = r"""
(spawn (lambda (c)
         (c (c (lambda (k)
                 (k (lambda (k)
                      (k (lambda (k) k)))))))))
"""

#: Everything a loader needs: name -> (source, kind) where kind is
#: "definitions" (top-level defines/macros) or "expression".
ALL = {
    "make-cell": (MAKE_CELL, "definitions"),
    "product0": (PRODUCT0, "definitions"),
    "product-callcc": (PRODUCT_CALLCC, "definitions"),
    "product-callcc-leaf": (PRODUCT_CALLCC_LEAF, "definitions"),
    "product-of-products-callcc": (PRODUCT_OF_PRODUCTS_CALLCC, "definitions"),
    "spawn/exit": (SPAWN_EXIT, "definitions"),
    "sum-of-products": (SUM_OF_PRODUCTS, "definitions"),
    "product-of-products-spawn": (PRODUCT_OF_PRODUCTS_SPAWN, "definitions"),
    "first-true": (FIRST_TRUE, "definitions"),
    "parallel-or": (PARALLEL_OR, "definitions"),
    "parallel-search": (PARALLEL_SEARCH, "definitions"),
    "search-all": (SEARCH_ALL, "definitions"),
    "invalid-after-return": (INVALID_AFTER_RETURN, "expression"),
    "invalid-after-use": (INVALID_AFTER_USE, "expression"),
    "valid-after-reinstatement": (VALID_AFTER_REINSTATEMENT, "expression"),
}

#: Load-order prerequisites: example name -> the examples that must be
#: loaded first.  Built once at import (loaders used to rebuild an
#: equivalent dict per call); lives next to :data:`ALL` so a new
#: example's dependencies are declared in the same module that defines
#: its source.
PREREQUISITES = {
    "product-callcc": ["product0"],
    "product-callcc-leaf": ["product0"],
    "product-of-products-callcc": ["product0"],
    "sum-of-products": ["product0", "spawn/exit"],
    "product-of-products-spawn": ["product0", "spawn/exit"],
    "first-true": ["spawn/exit"],
    "parallel-or": ["spawn/exit", "first-true"],
    "search-all": ["parallel-search"],
}
