"""Derived control libraries, written in the embedded Scheme.

The paper's Section 5/8 thesis is that ``spawn`` *subsumes* the control
abstractions other languages bake in.  These libraries make the claim
concrete — each is pure Scheme over ``spawn``/``pcall``:

* ``exceptions`` — handlers with nonlocal raise;
* ``generators`` — suspendable producers (one-at-a-time values);
* ``coroutines`` — symmetric resumable computations;
* ``parallel`` — ``parallel-and``, recursive ``par-map``, ``race``;
* ``amb`` — backtracking search with early exit.

Load with :meth:`repro.api.Interpreter.load_library`.
"""

EXCEPTIONS = r"""
;; (with-handler handler thunk): thunk receives `raise`; (raise e)
;; aborts to the nearest with-handler, which applies handler to e.
(define (with-handler handler thunk)
  (spawn (lambda (c)
           (thunk (lambda (e)
                    (c (lambda (k) (handler e))))))))

;; (guard-else thunk fallback): value of (thunk raise), or (fallback e).
(define (guard-else thunk fallback)
  (with-handler fallback thunk))
"""

GENERATORS = r"""
;; (make-generator producer): producer receives `emit`; each call of
;; the generator returns the next emitted value, then 'generator-done.
(define (make-generator producer)
  (define resume-point #f)
  (lambda ()
    (if resume-point
        (resume-point #f)
        (spawn (lambda (c)
                 (producer (lambda (v)
                             (c (lambda (k)
                                  (set! resume-point k)
                                  v))))
                 (set! resume-point (lambda (ignored) 'generator-done))
                 'generator-done)))))

;; Drain a generator into a list.
(define (generator->list gen)
  (let loop ([v (gen)] [acc '()])
    (if (eq? v 'generator-done)
        (reverse acc)
        (loop (gen) (cons v acc)))))

;; The inorder tree walker as a generator.
(define (tree-generator tree)
  (make-generator
    (lambda (emit)
      (let walk ([t tree])
        (unless (empty? t)
          (walk (left t))
          (emit (node t))
          (walk (right t)))))))
"""

COROUTINES = r"""
;; (make-coroutine body): body receives `yield`; (yield v) suspends,
;; returning v to the resumer; the yield's value is what the next
;; (resume co x) passes back.  (resume co x) returns (cons 'yield v) or
;; (cons 'done result).
(define (make-coroutine body)
  (define k #f)
  (define started #f)
  (lambda (input)
    (cond
      [(not started)
       (set! started #t)
       (spawn (lambda (c)
                (define (yield v)
                  (c (lambda (kk)
                       (set! k kk)
                       (cons 'yield v))))
                (cons 'done (body yield))))]
      [k (let ([kk k])
           (set! k #f)
           (kk input))]
      [else (error "coroutine already completed")])))

(define (resume co . args)
  (co (if (null? args) #f (car args))))

(define (coroutine-yielded? r) (and (pair? r) (eq? (car r) 'yield)))
(define (coroutine-done? r) (and (pair? r) (eq? (car r) 'done)))
(define (coroutine-value r) (cdr r))
"""

PARALLEL = r"""
;; parallel-and: both arms run concurrently; #f from either wins
;; immediately and abandons the other; otherwise the second arm's value.
(extend-syntax (parallel-and)
  [(parallel-and e1 e2)
   (spawn (lambda (c)
            (define (check v) (unless v (c (lambda (k) #f))) v)
            (pcall (lambda (a b) b)
                   (check e1)
                   (check e2))))])

;; par-map: map with one pcall fork per element (a cons tree of joins).
(define (par-map f ls)
  (if (null? ls)
      '()
      (pcall cons (f (car ls)) (par-map f (cdr ls)))))

;; race: first thunk to finish wins outright (values need not be true).
(define (race thunk1 thunk2)
  (spawn (lambda (c)
           (define (finish v) (c (lambda (k) v)))
           (pcall (lambda (a b) a)
                  (finish (thunk1))
                  (finish (thunk2))))))
"""

AMB = r"""
;; (amb-solve choices pred?): first combination (one element per choice
;; list) satisfying pred?, or #f.  Early exit through the controller.
(define (amb-solve choices-list pred?)
  (spawn (lambda (c)
           (define (try chosen rest)
             (if (null? rest)
                 (when (pred? (reverse chosen))
                   (c (lambda (k) (reverse chosen))))
                 (for-each
                   (lambda (choice) (try (cons choice chosen) (cdr rest)))
                   (car rest))))
           (try '() choices-list)
           #f)))

;; All solutions, via suspend/resume like parallel-search.
(define (amb-solve-all choices-list pred?)
  (define (emit-search)
    (spawn (lambda (c)
             (define (try chosen rest)
               (if (null? rest)
                   (when (pred? (reverse chosen))
                     (c (lambda (k)
                          (cons (reverse chosen)
                                (lambda () (k #f))))))
                   (for-each
                     (lambda (choice) (try (cons choice chosen) (cdr rest)))
                     (car rest))))
             (try '() choices-list)
             #f)))
  (let loop ([r (emit-search)])
    (if (pair? r)
        (cons (car r) (loop ((cdr r))))
        '())))
"""

ENGINES_UTIL = r"""
;; (with-timeout fuel thunk default): run thunk for at most `fuel`
;; machine steps; its value if it finishes, `default` otherwise.  The
;; partial computation is simply dropped (a paused process tree).
(define (with-timeout fuel thunk default)
  (engine-run (make-engine thunk) fuel
    (lambda (v remaining) v)
    (lambda (eng) default)))

;; (run-engines-fairly thunks fuel): round-robin a list of thunks to
;; completion; values in completion order.
(define (run-engines-fairly thunks fuel)
  (let loop ([engines (map make-engine thunks)] [acc '()])
    (if (null? engines)
        (reverse acc)
        (engine-run (car engines) fuel
          (lambda (v r) (loop (cdr engines) (cons v acc)))
          (lambda (e) (loop (append (cdr engines) (list e)) acc))))))

;; (first-to-finish thunk1 thunk2 fuel): race via fair slicing — the
;; engine that halts first wins; the loser is dropped mid-run.
(define (first-to-finish thunk1 thunk2 fuel)
  (let loop ([e1 (make-engine thunk1)] [e2 (make-engine thunk2)])
    (engine-run e1 fuel
      (lambda (v r) v)
      (lambda (e1*) (loop e2 e1*)))))
"""

#: name -> source
LIBRARIES = {
    "exceptions": EXCEPTIONS,
    "generators": GENERATORS,
    "coroutines": COROUTINES,
    "parallel": PARALLEL,
    "amb": AMB,
    "engines-util": ENGINES_UTIL,
}
