"""Scheme-level library code.

* :data:`repro.lib.prelude.PRELUDE` — list/higher-order utilities and
  the binary-tree helpers the paper's ``parallel-search`` assumes,
  written in the embedded Scheme and loaded into every interpreter.
* :mod:`repro.lib.paper_examples` — every program that appears in the
  paper, verbatim modulo subscripts, as named source strings.
"""

from repro.lib.prelude import PRELUDE
from repro.lib import paper_examples
from repro.lib.derived import LIBRARIES

__all__ = ["PRELUDE", "paper_examples", "LIBRARIES"]
