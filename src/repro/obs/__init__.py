"""``repro.obs`` — the unified observability layer.

One :class:`Recorder` threads through machine → session → host, so a
single host request reconstructs as a span tree (host.tick →
session.pump → quantum → control events).  See
``docs/OBSERVABILITY.md`` for the model and overhead numbers.
"""

from repro.obs.export import render_timeline, to_chrome_trace, validate_chrome_trace
from repro.obs.histogram import Histogram
from repro.obs.recorder import ObsEvent, Recorder

__all__ = [
    "Histogram",
    "ObsEvent",
    "Recorder",
    "render_timeline",
    "to_chrome_trace",
    "validate_chrome_trace",
]
