"""Fixed-bucket log2 histograms for latency and step counts.

A :class:`Histogram` has 48 power-of-two buckets (bucket ``i`` holds
values ``v`` with ``v.bit_length() == i``, i.e. ``2^(i-1) <= v < 2^i``;
bucket 0 holds zeros).  Observation is two integer ops and an array
increment — cheap enough to leave on unconditionally in the host's
serving path — and quantiles come back as bucket upper bounds, which is
the right fidelity for "p99 latency is under 2^k µs" style gates.

Used by :class:`~repro.host.metrics.SessionMetrics` (per-request
latency in µs, per-request steps) and
:class:`~repro.host.metrics.HostMetrics` (per-tick duration and steps),
and surfaced into ``BENCH_results.json`` by the benchmark drivers.
"""

from __future__ import annotations

from typing import Any

__all__ = ["BUCKETS", "Histogram"]

#: Number of log2 buckets.  Bucket 47 holds everything from 2^46 up —
#: about 22 years in µs, comfortably "never" for latency and steps.
BUCKETS = 48


class Histogram:
    """A log2-bucketed histogram of non-negative integers."""

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.counts = [0] * BUCKETS
        self.count = 0
        self.total = 0
        self.min = 0
        self.max = 0

    def observe(self, value: float) -> None:
        """Record one observation (floats are truncated; negatives
        clamp to zero)."""
        v = int(value)
        if v < 0:
            v = 0
        idx = v.bit_length()
        if idx >= BUCKETS:
            idx = BUCKETS - 1
        self.counts[idx] += 1
        self.total += v
        if self.count == 0 or v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        self.count += 1

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram."""
        if other.count == 0:
            return
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        if self.count == 0 or other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        self.count += other.count
        self.total += other.total

    def quantile(self, q: float) -> int:
        """Upper bound of the bucket containing the ``q``-quantile
        (``0 <= q <= 1``); 0 on an empty histogram."""
        if self.count == 0:
            return 0
        rank = q * self.count
        seen = 0
        for idx, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                return (1 << idx) - 1 if idx else 0
        return (1 << (BUCKETS - 1)) - 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, Any]:
        """Summary plus the non-empty buckets, JSON-ready."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": round(self.mean, 3),
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "buckets": {
                str((1 << idx) - 1 if idx else 0): c
                for idx, c in enumerate(self.counts)
                if c
            },
        }

    def __repr__(self) -> str:
        if not self.count:
            return "#<histogram empty>"
        return (
            f"#<histogram n={self.count} min={self.min} "
            f"p50={self.quantile(0.5)} p99={self.quantile(0.99)} max={self.max}>"
        )
