"""The ring-buffer :class:`Recorder` — the machine-to-host event spine.

One :class:`Recorder` instance is shared by every layer that emits
control events: the machine's notify points (fork, label pop, join
fire, capture, reinstate), the scheduler's per-quantum driver, the
session's pump and the host's tick loop.  Events land in a
fixed-capacity ring buffer (old events are evicted, never reallocated),
so a recorder can stay attached to a production host indefinitely and
always holds the most recent window of activity.

Design constraints:

* **Zero cost when absent.**  Emitting sites hold the recorder in a
  local and guard with ``rec is not None and rec.enabled`` — a machine
  built without ``record=`` pays one attribute read per *quantum*, not
  per step, and nothing at all at the notify points (they only run on
  control operations, which are rare by §7's own cost model).
* **Spans, not just points.**  ``begin``/``end`` (or the ``span``
  context manager) bracket host ticks, session pumps and any
  caller-defined region; instants and per-quantum complete events
  emitted inside carry the innermost open span's id, so a host request
  reconstructs as a span tree: host.tick → session.pump → quantum →
  control events.
* **Typed, compact events.**  One ``__slots__`` class for all four
  phases (``B``/``E``/``i``/``X`` — deliberately the Chrome trace
  phase letters; see :mod:`repro.obs.export`).

Usage::

    from repro import Interpreter
    interp = Interpreter(record=True)
    interp.eval("(spawn (lambda (c) (c (lambda (k) (k 1)))))")
    interp.recorder.render()            # text timeline
    interp.recorder.to_chrome_trace()   # load in chrome://tracing / Perfetto
"""

from __future__ import annotations

import itertools
from collections import deque
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Iterator

__all__ = ["ObsEvent", "Recorder"]

#: Default ring capacity: large enough for several host ticks of dense
#: control traffic, small enough (a few MB of events) to pin forever.
DEFAULT_CAPACITY = 65536


class ObsEvent:
    """One recorded event.

    ``phase`` is one of the Chrome trace phases:

    * ``"B"``/``"E"`` — span begin/end; ``span`` is the span's own id,
      ``parent`` the enclosing span's id (0 = top level).
    * ``"i"`` — instant (capture, reinstate, fork, label-pop, ...);
      ``span`` is the innermost open span.
    * ``"X"`` — complete event with a duration (``dur``, seconds);
      used for scheduler quanta.

    ``ts`` is a ``time.perf_counter`` timestamp (seconds; monotonic),
    ``step`` the machine's ``steps_total`` at emission (quantum
    granularity under the batched run loops), ``track`` the logical
    thread the event belongs to (session name, ``"host"``, ...).
    """

    __slots__ = ("ts", "phase", "name", "detail", "step", "span", "parent", "track", "dur")

    def __init__(
        self,
        ts: float,
        phase: str,
        name: str,
        detail: str,
        step: int,
        span: int,
        parent: int,
        track: str,
        dur: float = 0.0,
    ):
        self.ts = ts
        self.phase = phase
        self.name = name
        self.detail = detail
        self.step = step
        self.span = span
        self.parent = parent
        self.track = track
        self.dur = dur

    def __repr__(self) -> str:
        extra = f" dur={self.dur * 1e6:.1f}us" if self.phase == "X" else ""
        return (
            f"#<obs {self.phase} {self.name} {self.detail!r} "
            f"span={self.span} step={self.step}{extra}>"
        )


class Recorder:
    """A fixed-capacity ring buffer of typed observability events.

    Parameters
    ----------
    capacity:
        Maximum events held; the oldest are evicted first (``dropped``
        counts evictions, so truncation is never silent).
    enabled:
        Start recording immediately (default).  Toggle the ``enabled``
        attribute to pause/resume; a disabled recorder appends nothing.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, enabled: bool = True):
        self.capacity = max(1, capacity)
        self.enabled = enabled
        self.clock = perf_counter
        self.dropped = 0
        self._ring: deque[ObsEvent] = deque(maxlen=self.capacity)
        self._span_ids = itertools.count(1)
        self._stack: list[int] = []  # open span ids, innermost last
        self._open_names: dict[int, str] = {}  # open span id -> name
        self._track = "main"

    # -- emission --------------------------------------------------------

    def _append(self, event: ObsEvent) -> None:
        ring = self._ring
        if len(ring) == self.capacity:
            self.dropped += 1
        ring.append(event)

    def emit(self, name: str, detail: str = "", step: int = 0) -> None:
        """Record an instant event under the innermost open span."""
        if not self.enabled:
            return
        stack = self._stack
        span = stack[-1] if stack else 0
        self._append(
            ObsEvent(self.clock(), "i", name, detail, step, span, span, self._track)
        )

    def complete(
        self, name: str, start_ts: float, dur: float, detail: str = "", step: int = 0
    ) -> None:
        """Record a complete (``X``) event that ran ``dur`` seconds from
        ``start_ts`` (a ``self.clock()`` timestamp)."""
        if not self.enabled:
            return
        stack = self._stack
        span = stack[-1] if stack else 0
        self._append(
            ObsEvent(start_ts, "X", name, detail, step, span, span, self._track, dur)
        )

    def begin(self, name: str, detail: str = "", step: int = 0) -> int:
        """Open a span; returns its id (pass to :meth:`end`)."""
        if not self.enabled:
            return 0
        stack = self._stack
        parent = stack[-1] if stack else 0
        span = next(self._span_ids)
        stack.append(span)
        self._open_names[span] = name
        self._append(
            ObsEvent(self.clock(), "B", name, detail, step, span, parent, self._track)
        )
        return span

    def end(self, span: int, step: int = 0) -> None:
        """Close span ``span`` (and any unclosed spans nested inside
        it, innermost first — ends are never allowed to cross)."""
        if span == 0 or span not in self._open_names:
            return
        stack = self._stack
        while stack:
            top = stack.pop()
            name = self._open_names.pop(top, "?")
            parent = stack[-1] if stack else 0
            if self.enabled:
                self._append(
                    ObsEvent(self.clock(), "E", name, "", step, top, parent, self._track)
                )
            if top == span:
                break

    @contextmanager
    def span(
        self, name: str, detail: str = "", track: str | None = None, step: int = 0
    ) -> Iterator[int]:
        """Bracket a region as a span; optionally switch the logical
        ``track`` (restored on exit)."""
        if not self.enabled:
            yield 0
            return
        prev_track = self._track
        if track is not None:
            self._track = track
        span = self.begin(name, detail, step=step)
        try:
            yield span
        finally:
            self.end(span, step=step)
            self._track = prev_track

    # -- queries ---------------------------------------------------------

    @property
    def events(self) -> list[ObsEvent]:
        """A snapshot of the ring's current contents, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def events_of(self, name: str) -> list[ObsEvent]:
        return [e for e in self._ring if e.name == name]

    def clear(self) -> None:
        """Drop all buffered events (open spans stay open)."""
        self._ring.clear()
        self.dropped = 0

    # -- exporters (delegate to repro.obs.export) ------------------------

    def to_chrome_trace(self) -> dict[str, Any]:
        """The buffered events as a ``chrome://tracing`` / Perfetto
        JSON-serialisable dict (see :func:`repro.obs.export.to_chrome_trace`)."""
        from repro.obs.export import to_chrome_trace

        return to_chrome_trace(self.events)

    def render(self) -> str:
        """A readable text timeline of the buffered events."""
        from repro.obs.export import render_timeline

        return render_timeline(self.events)

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (
            f"#<recorder {state} {len(self._ring)}/{self.capacity} events"
            f"{f' dropped={self.dropped}' if self.dropped else ''}>"
        )
