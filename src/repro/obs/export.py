"""Exporters for :class:`~repro.obs.recorder.Recorder` event streams.

Two renderings of the same ring buffer:

* :func:`to_chrome_trace` — the Chrome trace-event JSON format (the
  ``{"traceEvents": [...]}`` object form), loadable in
  ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_.
  Tracks become thread ids, spans become ``B``/``E`` pairs, instants
  stay instants, quanta are ``X`` complete events.
* :func:`render_timeline` — a plain-text timeline with indentation by
  span depth, for terminal use (the REPL's ``,trace`` and quick
  debugging).

Ring eviction can orphan span halves: a long recording may retain an
``E`` whose ``B`` was evicted, or the process may stop with spans still
open.  :func:`to_chrome_trace` repairs both — orphan ends are dropped
and unclosed begins are auto-closed at the trace's end — so the export
*always* satisfies :func:`validate_chrome_trace`, which the tests and
``benchmarks/bench_obs.py`` use as the schema gate.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.obs.recorder import ObsEvent, Recorder

__all__ = ["to_chrome_trace", "validate_chrome_trace", "render_timeline"]


def _event_list(events: "Iterable[ObsEvent] | Recorder") -> list[ObsEvent]:
    evs = events.events if isinstance(events, Recorder) else list(events)
    # X (complete) events carry their *start* timestamp but are
    # appended to the ring at their end, after any instants emitted
    # inside them; a stable sort by ts restores timeline order without
    # disturbing same-timestamp B/E nesting.
    evs.sort(key=lambda e: e.ts)
    return evs


def to_chrome_trace(events: "Iterable[ObsEvent] | Recorder") -> dict[str, Any]:
    """Convert recorded events to a Chrome trace-event JSON dict.

    Timestamps are microseconds relative to the first event; each
    recorder track maps to its own ``tid`` (named via thread_name
    metadata) under a single ``pid``.
    """
    evs = _event_list(events)
    if not evs:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    t0 = min(e.ts for e in evs)
    end_ts = max(e.ts + (e.dur if e.phase == "X" else 0.0) for e in evs)

    tids: dict[str, int] = {}

    def tid_of(track: str) -> int:
        if track not in tids:
            tids[track] = len(tids) + 1
        return tids[track]

    def us(ts: float) -> int:
        return int(round((ts - t0) * 1e6))

    # First pass: find which span ids have a surviving B (orphan-E
    # repair) and which have a surviving E (auto-close repair).
    begun: set[int] = set()
    ended: set[int] = set()
    for e in evs:
        if e.phase == "B":
            begun.add(e.span)
        elif e.phase == "E":
            ended.add(e.span)

    trace: list[dict[str, Any]] = []
    # Per-track stack of open span ids, to close in LIFO order at EOF.
    open_stacks: dict[str, list[tuple[int, int]]] = {}

    for e in evs:
        tid = tid_of(e.track)
        args = {"step": e.step}
        if e.detail:
            args["detail"] = e.detail
        base = {"pid": 1, "tid": tid, "ts": us(e.ts), "name": e.name, "args": args}
        if e.phase == "B":
            if e.span not in ended:
                # Will need an auto-close at EOF.
                open_stacks.setdefault(e.track, []).append((e.span, tid))
            trace.append({**base, "ph": "B", "cat": "span"})
        elif e.phase == "E":
            if e.span not in begun:
                continue  # orphaned end: its B was evicted from the ring
            trace.append({**base, "ph": "E", "cat": "span"})
        elif e.phase == "X":
            trace.append(
                {**base, "ph": "X", "cat": "span", "dur": max(0, int(round(e.dur * 1e6)))}
            )
        else:  # "i"
            trace.append({**base, "ph": "i", "cat": "event", "s": "t"})

    # Auto-close still-open spans, innermost first, at the trace end.
    eof_us = us(end_ts)
    for track, stack in open_stacks.items():
        for span, tid in reversed(stack):
            trace.append(
                {
                    "pid": 1,
                    "tid": tid,
                    "ts": eof_us,
                    "ph": "E",
                    "cat": "span",
                    "name": "(auto-close)",
                    "args": {"span": span},
                }
            )

    # Thread-name metadata rows so Perfetto labels tracks.
    meta = [
        {
            "pid": 1,
            "tid": tid,
            "ph": "M",
            "name": "thread_name",
            "args": {"name": track},
        }
        for track, tid in tids.items()
    ]
    return {"traceEvents": meta + trace, "displayTimeUnit": "ms"}


def validate_chrome_trace(trace: dict[str, Any]) -> list[str]:
    """Schema-check a :func:`to_chrome_trace` result; returns a list of
    problems (empty = valid).

    Checks: the container shape, required keys per event, monotonically
    non-decreasing ``ts`` per thread, properly nested ``B``/``E`` pairs
    per thread, and non-negative ``dur`` on ``X`` events.
    """
    problems: list[str] = []
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        return ["not a dict with a traceEvents key"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]

    last_ts: dict[tuple[int, int], int] = {}
    stacks: dict[tuple[int, int], list[str]] = {}
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = e.get("ph")
        if ph not in ("B", "E", "i", "X", "M"):
            problems.append(f"event {i}: bad ph {ph!r}")
            continue
        for key in ("pid", "tid", "name"):
            if key not in e:
                problems.append(f"event {i}: missing {key}")
        if ph == "M":
            continue
        if not isinstance(e.get("ts"), int):
            problems.append(f"event {i}: ts missing or not an int")
            continue
        key = (e.get("pid", 0), e.get("tid", 0))
        ts = e["ts"]
        if key in last_ts and ts < last_ts[key]:
            problems.append(
                f"event {i}: ts {ts} < previous {last_ts[key]} on tid {key[1]}"
            )
        last_ts[key] = ts
        if ph == "B":
            stacks.setdefault(key, []).append(e.get("name", "?"))
        elif ph == "E":
            stack = stacks.setdefault(key, [])
            if not stack:
                problems.append(f"event {i}: E with no open B on tid {key[1]}")
            else:
                stack.pop()
        elif ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, int) or dur < 0:
                problems.append(f"event {i}: X dur missing or negative")
    for key, stack in stacks.items():
        if stack:
            problems.append(f"tid {key[1]}: {len(stack)} unclosed B ({stack[-1]!r})")
    return problems


def render_timeline(events: "Iterable[ObsEvent] | Recorder") -> str:
    """A readable text timeline, indented by span depth per track."""
    evs = _event_list(events)
    if not evs:
        return "(no events recorded)"
    t0 = min(e.ts for e in evs)
    depth: dict[str, int] = {}
    lines: list[str] = []
    for e in evs:
        d = depth.get(e.track, 0)
        rel_ms = (e.ts - t0) * 1e3
        indent = "  " * d
        detail = f"  {e.detail}" if e.detail else ""
        step = f" @step {e.step}" if e.step else ""
        if e.phase == "B":
            lines.append(f"{rel_ms:10.3f}ms [{e.track}] {indent}▶ {e.name}{detail}{step}")
            depth[e.track] = d + 1
        elif e.phase == "E":
            depth[e.track] = max(0, d - 1)
            indent = "  " * depth[e.track]
            lines.append(f"{rel_ms:10.3f}ms [{e.track}] {indent}◀ {e.name}{step}")
        elif e.phase == "X":
            lines.append(
                f"{rel_ms:10.3f}ms [{e.track}] {indent}■ {e.name}"
                f" ({e.dur * 1e6:.0f}us){detail}{step}"
            )
        else:
            lines.append(f"{rel_ms:10.3f}ms [{e.track}] {indent}· {e.name}{detail}{step}")
    return "\n".join(lines)
