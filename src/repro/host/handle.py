"""The :class:`EvalHandle`: one submitted evaluation, as a value.

A handle is created by :meth:`Session.submit` and moves through a
small state machine::

    PENDING ──▶ RUNNING ──▶ DONE
        │          │  └────▶ FAILED      (error / deadline / budget)
        └──────────┴───────▶ CANCELLED   (cooperative cancel)

The terminal states are exactly those three; :meth:`EvalHandle.done`
tests for them.  The handle carries the evaluation's per-request cost
bounds (``max_steps``, a step budget relative to this evaluation, and
``deadline_at``, an absolute wall-clock timestamp started at submit —
queueing time counts against a request's deadline, as in any serving
system), the per-form values produced so far, and the failure if one
occurred.
"""

from __future__ import annotations

import enum
from time import monotonic
from typing import TYPE_CHECKING, Any

from repro.counters import SerialCounter

if TYPE_CHECKING:  # pragma: no cover
    from repro.host.session import Session

__all__ = ["EvalHandle", "HandleState"]

_handle_ids = SerialCounter()


class HandleState(enum.Enum):
    PENDING = "pending"  # queued, not yet started
    RUNNING = "running"  # dequeued; tree may be suspended between pumps
    DONE = "done"  # every form evaluated; values available
    FAILED = "failed"  # an error, deadline or step budget ended it
    CANCELLED = "cancelled"  # cooperatively cancelled


_TERMINAL = (HandleState.DONE, HandleState.FAILED, HandleState.CANCELLED)


class EvalHandle:
    """A submitted evaluation; resolved by pumping its session."""

    __slots__ = (
        "uid",
        "session",
        "nodes",
        "max_steps",
        "deadline_at",
        "tenant",
        "state",
        "values",
        "steps",
        "submitted_at",
        "report",
        "classification",
        "_exception",
        "_cancel_requested",
        "_node_index",
        "_node_running",
    )

    def __init__(
        self,
        session: "Session",
        nodes: list[Any],
        *,
        max_steps: int | None = None,
        deadline_at: float | None = None,
        tenant: str | None = None,
    ):
        self.uid = next(_handle_ids)
        self.session = session
        self.nodes = nodes
        self.max_steps = max_steps
        self.deadline_at = deadline_at
        self.tenant = tenant  # attribution label (gateway quota accounting)
        self.state = HandleState.PENDING
        self.values: list[Any] = []  # one value per completed top-level form
        self.steps = 0  # machine steps spent on this evaluation
        self.submitted_at = monotonic()  # for request-latency histograms
        # Capture/effect analysis results (repro.analysis.effects): the
        # ProgramReport from submit (transient — not serialized) and the
        # request classification pure/capture-heavy/spawning ("unknown"
        # on the dict engine or with analysis off).
        self.report: Any = None
        self.classification: str = "unknown"
        self._exception: BaseException | None = None
        self._cancel_requested = False
        self._node_index = 0  # next form to evaluate
        self._node_running = False  # a tree for nodes[_node_index] is in flight

    # -- inspection ------------------------------------------------------

    def done(self) -> bool:
        """True once the handle is in a terminal state."""
        return self.state in _TERMINAL

    def exception(self) -> BaseException | None:
        """The failure that ended this evaluation, or None (also None
        while still pending/running — this never blocks)."""
        return self._exception

    def result(self) -> Any:
        """The value of the evaluation's *last* form.

        If the handle is not yet terminal, pumps its own session to
        completion first (convenient for single-session embedding; under
        a :class:`~repro.host.host.Host` prefer driving via the host's
        tick loop and checking :meth:`done`).  Raises the recorded
        exception for FAILED/CANCELLED handles.
        """
        if not self.done():
            self.session.drive(self)
        if self._exception is not None:
            raise self._exception
        return self.values[-1] if self.values else None

    # -- control ---------------------------------------------------------

    def cancel(self) -> bool:
        """Request cooperative cancellation; returns True if the handle
        was still cancellable.  A queued handle is cancelled on the
        spot; an in-flight one is discarded at the next quantum
        boundary (immediately when called between pumps)."""
        return self.session.cancel(self)

    # -- internal --------------------------------------------------------

    def _fail(self, exc: BaseException, state: HandleState = HandleState.FAILED) -> None:
        self._exception = exc
        self.state = state

    def __repr__(self) -> str:
        return (
            f"#<eval-handle {self.uid} {self.state.value} "
            f"{self._node_index}/{len(self.nodes)} forms {self.steps} steps>"
        )
