"""One hosted interpreter session: a machine plus its whole pipeline,
drivable in bounded increments.

A :class:`Session` owns everything one tenant's programs touch — global
environment, expansion environment, machine, output buffer, compile
stats — so sessions are fully isolated from each other: no error,
deadline, cancellation or mutation in one session can corrupt a
sibling.  What makes a session *hostable* is the paper's own machinery:
at every quantum boundary the machine's entire state (the process tree,
including captured continuations, suspended ``pcall`` branches and
parked future trees) is a first-class value sitting in the
:class:`~repro.machine.scheduler.Machine`, so an evaluation can be
suspended between :meth:`pump` calls and resumed arbitrarily later —
engines-style time-slicing at the session level.

The lifecycle::

    session = Session(engine="compiled")
    handle = session.submit("(+ 1 2)", max_steps=10_000, deadline=0.25)
    while not handle.done():
        session.pump(512)          # ≤ 512 machine steps, then yield
    handle.result()                # => 3

``submit`` runs the frontend eagerly (read → expand → resolve →
compile), so malformed programs are rejected at the queue, not after
occupying the machine; the queue is bounded (``max_pending``), and a
full queue raises :class:`~repro.errors.HostSaturated` — backpressure,
not buffering.  ``pump`` enforces the handle's step budget *exactly*
(via the machine's ``max_steps`` clamp) and its wall-clock deadline at
quantum granularity (via ``Machine.deadline``); both are scoped through
:meth:`Machine.budget_scope`, the same mechanism behind
``Interpreter.eval(max_steps=..., deadline=...)``.  Cancellation and
deadline enforcement are capture-and-discard at the session root
(:meth:`Machine.abort_tree`): tasks are unlinked at a quantum boundary,
never interrupted mid-frame, and the session's parked future trees
survive.
"""

from __future__ import annotations

import itertools
from collections import deque
from time import monotonic as _monotonic
from typing import Any

from repro.datum import scheme_repr
from repro.errors import (
    DeadlineExceeded,
    HostSaturated,
    ReproError,
    SessionCancelled,
    StepBudgetExceeded,
)
from repro.analysis.effects import (
    GRANT_QUANTUM,
    AnalysisStats,
    annotate_program,
    single_task_form,
)
from repro.expander import ExpandEnv, expand_program
from repro.control import register_control_primitives
from repro.host.handle import EvalHandle, HandleState
from repro.host.metrics import SessionMetrics
from repro.ir import (
    CodegenStats,
    CompileStats,
    ResolverStats,
    codegen_program,
    compile_program,
    resolve_program,
)
from repro.lib import PRELUDE, paper_examples
from repro.lib.derived import LIBRARIES
from repro.machine.environment import GlobalEnv
from repro.machine.scheduler import Engine, Machine, SchedulerPolicy, normalize_engine
from repro.obs.recorder import Recorder
from repro.primitives import OutputBuffer, install_primitives
from repro.reader import read_all

__all__ = ["Session"]

_session_ids = itertools.count()

#: Ordering for backlog_classification: higher = more demanding.
_CLASS_RANK = {"pure": 0, "unknown": 1, "capture-heavy": 2, "spawning": 3}

#: Default pump chunk for synchronous driving (drive()/result()): big
#: enough that chunking is invisible, small enough that wall-clock
#: deadlines are still honoured promptly inside one pump.
_DRIVE_CHUNK = 1 << 20


class Session:
    """A complete, independently hosted interpreter session.

    Parameters mirror :class:`repro.api.Interpreter` (which is a thin
    single-session façade over this class); see ``docs/API.md`` for the
    canonical constructor surface.  Host-specific knobs:

    max_pending:
        Bound on queued + in-flight evaluations; ``submit`` beyond it
        raises :class:`~repro.errors.HostSaturated`.
    name:
        Label used in error messages and host listings.
    analysis:
        Run the capture/effect analysis phase
        (:mod:`repro.analysis.effects`) on every submit: stamps
        ``EffectInfo`` facts on lambdas, classifies each request
        pure / capture-heavy / spawning, and lets the pump grant
        enlarged quanta to forms proven single-task.  On by default
        (``--no-analysis`` in the REPL is the ablation flag); forced
        off on the dict engine, whose IR the phase does not target.
    """

    def __init__(
        self,
        *,
        policy: str | SchedulerPolicy = SchedulerPolicy.ROUND_ROBIN,
        seed: int | None = None,
        quantum: int = 16,
        max_steps: int | None = None,
        prelude: bool = True,
        echo_output: bool = False,
        engine: str | Engine | None = None,
        batched: bool = True,
        profile: bool = False,
        max_pending: int = 64,
        name: str | None = None,
        record: "Recorder | bool | None" = None,
        analysis: bool = True,
    ):
        engine = normalize_engine(engine if engine is not None else "compiled")
        self.name = name if name is not None else f"session-{next(_session_ids)}"
        self.engine = engine
        self.analysis = bool(analysis) and engine != "dict"
        self.analysis_stats = AnalysisStats()
        self.resolver_stats = ResolverStats()
        self.compile_stats = CompileStats()
        self.codegen_stats = CodegenStats()
        self.globals = GlobalEnv()
        self.output = install_primitives(self.globals, OutputBuffer(echo=echo_output))
        register_control_primitives(self.globals)
        self.machine = Machine(
            self.globals,
            policy=policy,
            seed=seed,
            quantum=quantum,
            max_steps=None,  # budgets apply to user code only
            engine=engine,
            batched=batched,
            profile=profile,
            record=record,
        )
        self.expand_env = ExpandEnv()
        self._loaded_examples: set[str] = set()
        self.max_pending = max(1, max_pending)
        self._pending: deque[EvalHandle] = deque()
        self._active: EvalHandle | None = None
        self._in_pump = False
        self.metrics = SessionMetrics()
        if prelude:
            self.drive(self.submit(PRELUDE))
            self.metrics = SessionMetrics()  # the prelude is not user traffic
            if self.machine.recorder is not None:
                self.machine.recorder.clear()  # nor are its events
        self.machine.steps_total = 0
        self.machine.max_steps = max_steps

    # -- submission ------------------------------------------------------

    def submit(
        self,
        source: str,
        *,
        max_steps: int | None = None,
        deadline: float | None = None,
        tenant: str | None = None,
    ) -> EvalHandle:
        """Queue ``source`` for evaluation; returns its handle.

        This is the **shared submit contract** (``source, *,
        max_steps=None, deadline=None, tenant=None``) honoured by every
        frontend — ``Session``, ``Interpreter``, ``Host`` and
        ``Cluster`` — see ``docs/API.md``.

        The frontend (read → expand → resolve → compile, per the
        session's engine) runs eagerly here, so reader/expansion errors
        raise immediately and never occupy the machine.  ``max_steps``
        bounds the evaluation's machine steps (enforced exactly;
        exceeding it fails the handle with
        :class:`~repro.errors.StepBudgetExceeded`); ``deadline`` is a
        wall-clock allowance in seconds, started *now* — queueing time
        counts — and expiry fails the handle with
        :class:`~repro.errors.DeadlineExceeded` within one quantum.
        ``tenant`` is an attribution label stamped on the handle
        (quota accounting in :mod:`repro.gateway`); it never affects
        evaluation.  Raises :class:`~repro.errors.HostSaturated` when
        the bounded queue is full.
        """
        if self.queue_depth >= self.max_pending:
            self.metrics.saturations += 1
            raise HostSaturated(
                f"session {self.name}: submit queue full "
                f"({self.queue_depth}/{self.max_pending})"
            )
        nodes, report = self._frontend(source)
        handle = EvalHandle(
            self,
            nodes,
            max_steps=max_steps,
            deadline_at=None if deadline is None else _monotonic() + deadline,
            tenant=tenant,
        )
        if report is not None:
            handle.report = report
            handle.classification = report.classification
            if report.classification == "pure":
                self.metrics.submits_pure += 1
            elif report.classification == "capture-heavy":
                self.metrics.submits_capture_heavy += 1
            elif report.classification == "spawning":
                self.metrics.submits_spawning += 1
        self._pending.append(handle)
        self.metrics.submits += 1
        depth = self.queue_depth
        if depth > self.metrics.max_queue_depth:
            self.metrics.max_queue_depth = depth
        return handle

    def _frontend(self, source: str) -> tuple[list[Any], Any]:
        forms = read_all(source)
        nodes = expand_program(forms, self.expand_env)
        report = None
        if self.engine != "dict":
            nodes = resolve_program(nodes, self.globals, self.resolver_stats)
            if self.analysis:
                # The phase runs on resolved IR, before compilation, so
                # the compiler bakes the stamped facts into closures.
                report = annotate_program(nodes, self.globals, self.analysis_stats)
            if self.engine == "compiled":
                nodes = compile_program(nodes, self.compile_stats)
            elif self.engine == "codegen":
                nodes = codegen_program(nodes, self.codegen_stats)
        return nodes, report

    # -- state -----------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Queued plus in-flight evaluations."""
        return len(self._pending) + (1 if self._active is not None else 0)

    @property
    def idle(self) -> bool:
        """True when the session has no queued or in-flight work."""
        return self._active is None and not self._pending

    def backlog_classification(self) -> str:
        """The most demanding analysis classification among queued and
        in-flight evaluations: ``spawning`` > ``capture-heavy`` >
        ``unknown`` > ``pure``; ``idle`` with no work.  A host with
        ``class_weights`` budgets its deficit-round-robin credits by
        this label."""
        best: str | None = None
        best_rank = -1
        handles: list[EvalHandle] = list(self._pending)
        if self._active is not None:
            handles.append(self._active)
        for handle in handles:
            rank = _CLASS_RANK.get(handle.classification, 1)
            if rank > best_rank:
                best, best_rank = handle.classification, rank
        return best if best is not None else "idle"

    # -- observability ---------------------------------------------------

    @property
    def recorder(self) -> Recorder | None:
        """The attached observability recorder, if any (shared with —
        and stored on — this session's machine)."""
        return self.machine.recorder

    def attach_recorder(self, recorder: Recorder | None) -> None:
        """Attach (or detach, with None) a recorder.  A host attaches
        its own recorder to member sessions so all layers' spans land
        in one stream."""
        self.machine.recorder = recorder

    # -- the pump --------------------------------------------------------

    def pump(self, budget: int) -> int:
        """Run up to ``budget`` machine steps of this session's queued
        work; returns the number of steps actually executed.  When a
        recorder is attached the pump is bracketed as a
        ``session.pump`` span on this session's track, so quantum and
        control events emitted inside nest under it.

        Evaluations are served FIFO; an unfinished one is suspended in
        place (its whole process tree survives on the machine) and
        resumes at the next pump.  Budget/deadline expiry, errors and
        cancellations terminate only the *current* evaluation — the
        failure is recorded on its handle, the tree is discarded at the
        root, and the session keeps serving.  The single exception is
        the session-lifetime ``max_steps`` (the constructor knob):
        exhausting it both fails the in-flight handle and re-raises, so
        a direct driver sees :class:`StepBudgetExceeded` exactly as the
        pre-host ``Interpreter`` raised it.
        """
        if budget <= 0:
            return 0
        rec = self.machine.recorder
        if rec is not None and rec.enabled:
            with rec.span(
                "session.pump",
                f"{self.name} budget={budget}",
                track=self.name,
                step=self.machine.steps_total,
            ):
                return self._pump(budget)
        return self._pump(budget)

    def _pump(self, budget: int) -> int:
        machine = self.machine
        spent = 0
        served = False
        self._in_pump = True
        try:
            while spent < budget:
                handle = self._active
                if handle is None:
                    if not self._pending:
                        break
                    handle = self._pending.popleft()
                    handle.state = HandleState.RUNNING
                    self._active = handle
                served = True
                if handle._cancel_requested:
                    self._abort_active(
                        SessionCancelled(
                            f"session {self.name}: evaluation {handle.uid} cancelled"
                        ),
                        kind="cancel",
                    )
                    continue
                if handle.deadline_at is not None and _monotonic() >= handle.deadline_at:
                    self._abort_active(
                        DeadlineExceeded(
                            f"session {self.name}: evaluation {handle.uid} missed "
                            "its wall-clock deadline",
                            steps=handle.steps,
                        ),
                        kind="deadline",
                    )
                    continue
                if handle._node_index >= len(handle.nodes):
                    handle.state = HandleState.DONE
                    self.metrics.evals_completed += 1
                    self._finish_request(handle)
                    self._active = None
                    continue
                if not handle._node_running:
                    node = handle.nodes[handle._node_index]
                    # Quantum grant: decided here, against *current*
                    # global cell values, because submit-time facts can
                    # go stale (an earlier form may have redefined a
                    # global this form applies).  Between this proof
                    # and the form's end nothing foreign runs — the
                    # machine has no parked futures or waiting tasks —
                    # and self-mutation is rejected inside the walk.
                    # The random policy draws from the RNG once per
                    # pick even for a solo task, so enlarging quanta
                    # there would perturb seeded schedules of *later*
                    # forms; grants are FIFO-policy only.
                    granted = (
                        self.analysis
                        and machine.policy is SchedulerPolicy.ROUND_ROBIN
                        and machine.quantum < GRANT_QUANTUM
                        and not machine.parked_futures
                        and not machine.waiting_tasks
                        and single_task_form(node, self.globals)
                    )
                    machine.quantum_grant = GRANT_QUANTUM if granted else None
                    if granted:
                        self.analysis_stats.grants += 1
                    machine.begin_eval(node)
                    handle._node_running = True
                handle_cap = None
                if handle.max_steps is not None:
                    remaining = handle.max_steps - handle.steps
                    if remaining <= 0:
                        self._abort_active(
                            StepBudgetExceeded(handle.steps), kind="deadline"
                        )
                        continue
                    handle_cap = machine.steps_total + remaining
                before = machine.steps_total
                try:
                    with machine.budget_scope(
                        max_steps=handle_cap, deadline_at=handle.deadline_at
                    ):
                        finished = machine.step_n(budget - spent)
                except StepBudgetExceeded as exc:
                    spent += self._account(handle, machine.steps_total - before)
                    lifetime = machine.max_steps
                    if handle_cap is not None and (
                        lifetime is None or handle_cap < lifetime
                    ):
                        # The per-request budget was the binding bound:
                        # a deadline miss for this evaluation only.
                        self._abort_active(
                            StepBudgetExceeded(handle.steps), kind="deadline"
                        )
                        continue
                    # The session-lifetime budget: the session will
                    # never pump again, so fail the in-flight handle
                    # AND drain the queue — a queued handle left
                    # PENDING here would block its waiter forever and
                    # re-fault the session on every future tick.
                    self._abort_active(exc, kind="error")
                    self._fail_pending(exc)
                    raise
                except DeadlineExceeded as exc:
                    spent += self._account(handle, machine.steps_total - before)
                    self._abort_active(
                        DeadlineExceeded(
                            f"session {self.name}: evaluation {handle.uid} missed "
                            "its wall-clock deadline",
                            steps=handle.steps,
                        ),
                        kind="deadline",
                    )
                    continue
                except ReproError as exc:
                    spent += self._account(handle, machine.steps_total - before)
                    self._abort_active(exc, kind="error")
                    continue
                spent += self._account(handle, machine.steps_total - before)
                if finished:
                    machine.quantum_grant = None
                    handle.values.append(machine.finish())
                    handle._node_running = False
                    handle._node_index += 1
            return spent
        finally:
            self._in_pump = False
            if served:
                self.metrics.quanta_served += 1

    def _account(self, handle: EvalHandle, taken: int) -> int:
        handle.steps += taken
        self.metrics.steps_served += taken
        return taken

    def _finish_request(self, handle: EvalHandle) -> None:
        """Observe a request reaching *any* terminal state into the
        session's latency and steps histograms."""
        latency_us = (_monotonic() - handle.submitted_at) * 1e6
        self.metrics.observe_request(latency_us, handle.steps)

    def _fail_pending(self, fault: BaseException) -> None:
        """Session-fatal fault containment: resolve every still-queued
        handle to CANCELLED, naming the fault that killed the session.
        The queue is left empty, so the session reads as idle and a
        host keeps scheduling around it instead of re-faulting it on
        every tick."""
        while self._pending:
            handle = self._pending.popleft()
            handle._fail(
                SessionCancelled(
                    f"session {self.name}: evaluation {handle.uid} abandoned "
                    f"after session-fatal fault: {fault}"
                ),
                HandleState.CANCELLED,
            )
            self.metrics.evals_failed += 1
            self.metrics.cancellations += 1
            self._finish_request(handle)

    def _abort_active(self, exc: BaseException, *, kind: str) -> None:
        """End the in-flight evaluation: discard its tree at the root
        (capture-and-discard — never a mid-frame exception) and record
        the failure on its handle."""
        handle = self._active
        assert handle is not None
        if handle._node_running:
            self.machine.quantum_grant = None
            self.machine.abort_tree()
            handle._node_running = False
        state = HandleState.CANCELLED if kind == "cancel" else HandleState.FAILED
        handle._fail(exc, state)
        self.metrics.evals_failed += 1
        if kind == "deadline":
            self.metrics.deadline_misses += 1
        elif kind == "cancel":
            self.metrics.cancellations += 1
        self._finish_request(handle)
        self._active = None

    # -- cancellation ----------------------------------------------------

    def cancel(self, handle: EvalHandle) -> bool:
        """Cooperatively cancel ``handle``; True if it was still live.

        Queued handles are cancelled on the spot.  The in-flight handle
        is discarded immediately when called between pumps (the machine
        is guaranteed to be at a quantum boundary), or at the top of
        the next pump iteration when called from inside one (e.g. from
        a trace hook).
        """
        if handle.session is not self:
            raise ValueError(f"{handle!r} belongs to {handle.session.name}, not {self.name}")
        if handle.done():
            return False
        if handle is self._active:
            if self._in_pump:
                handle._cancel_requested = True
            else:
                self._abort_active(
                    SessionCancelled(
                        f"session {self.name}: evaluation {handle.uid} cancelled"
                    ),
                    kind="cancel",
                )
            return True
        self._pending.remove(handle)
        handle._fail(
            SessionCancelled(
                f"session {self.name}: evaluation {handle.uid} cancelled while queued"
            ),
            HandleState.CANCELLED,
        )
        self.metrics.evals_failed += 1
        self.metrics.cancellations += 1
        self._finish_request(handle)
        return True

    def cancel_all(self) -> int:
        """Cancel every queued and in-flight evaluation; returns the
        number cancelled."""
        count = 0
        for handle in list(self._pending):
            count += bool(self.cancel(handle))
        if self._active is not None:
            count += bool(self.cancel(self._active))
        return count

    # -- synchronous driving ---------------------------------------------

    def drive(self, handle: EvalHandle) -> list[Any]:
        """Pump until ``handle`` is terminal; return its per-form values
        or raise its failure.  Work queued ahead of it runs first
        (FIFO) — this is the single-session embedding path used by
        :class:`repro.api.Interpreter`."""
        if handle.session is not self:
            raise ValueError(f"{handle!r} belongs to {handle.session.name}, not {self.name}")
        while not handle.done():
            self.pump(_DRIVE_CHUNK)
        if handle._exception is not None:
            raise handle._exception
        return list(handle.values)

    def eval(
        self,
        source: str,
        *,
        max_steps: int | None = None,
        deadline: float | None = None,
    ) -> Any:
        """Submit and drive ``source``; returns its last form's value."""
        values = self.drive(self.submit(source, max_steps=max_steps, deadline=deadline))
        return values[-1] if values else None

    # -- conveniences (shared with the Interpreter façade) ---------------

    def run(self, source: str) -> list[Any]:
        """Submit and drive ``source``; returns every form's value."""
        return self.drive(self.submit(source))

    def eval_to_string(self, source: str) -> str:
        """Evaluate and render the result with ``write`` syntax."""
        return scheme_repr(self.eval(source))

    def load_paper_example(self, name: str) -> None:
        """Load one of the paper's programs (and its prerequisites,
        per :data:`repro.lib.paper_examples.PREREQUISITES`) by name."""
        for dep in paper_examples.PREREQUISITES.get(name, []):
            self.load_paper_example(dep)
        if name in self._loaded_examples:
            return
        source, kind = paper_examples.ALL[name]
        if kind == "definitions":
            self.run(source)
            self._loaded_examples.add(name)
        else:
            raise ValueError(
                f"{name} is an expression, not definitions; evaluate it "
                "with eval(paper_examples.ALL[name][0])"
            )

    def load_library(self, name: str) -> None:
        """Load a derived Scheme library (see :mod:`repro.lib.derived`)."""
        key = f"lib:{name}"
        if key in self._loaded_examples:
            return
        try:
            source = LIBRARIES[name]
        except KeyError:
            raise ValueError(
                f"unknown library {name!r}; available: {sorted(LIBRARIES)}"
            ) from None
        self.run(source)
        self._loaded_examples.add(key)

    def load_file(self, path: str) -> list[Any]:
        """Read and run a Scheme source file; returns the form values."""
        with open(path, encoding="utf-8") as handle:
            return self.run(handle.read())

    def output_text(self) -> str:
        """Everything ``display``/``write``/``newline`` produced so far."""
        return self.output.getvalue()

    def clear_output(self) -> None:
        self.output.clear()

    # -- snapshots -------------------------------------------------------

    def snapshot(self) -> bytes:
        """Serialize this session — including suspended evaluations,
        captured continuations and parked future trees — into a
        self-contained blob; see :mod:`repro.snapshot`.  Deterministic:
        the same state yields the same bytes.  Must be called between
        pumps, not from inside one."""
        from repro.snapshot import snapshot_session

        return snapshot_session(self)

    @classmethod
    def restore(
        cls,
        blob: bytes,
        *,
        record=None,
        name: str | None = None,
        engine: "str | Engine | None" = None,
    ) -> "Session":
        """Rebuild a session from a :meth:`snapshot` blob, in this or
        any other process.  ``record`` attaches a fresh observability
        recorder (recorders are never serialized); ``name`` overrides
        the stored session name; ``engine`` restores under a different
        engine (code is recorded as resolved IR + digest, so each
        engine rebuilds its own executable form on restore)."""
        from repro.snapshot import restore_session

        if engine is not None:
            engine = normalize_engine(engine)
        return restore_session(blob, record=record, name=name, engine=engine)

    # -- introspection ---------------------------------------------------

    @property
    def stats(self) -> dict[str, int]:
        """Machine counters plus the compile-stage and VM counters,
        namespaced (``resolver.*``, ``compile.*``, ``vm.*``,
        ``session.*``).  Namespacing makes the merge collision-safe —
        a namespaced key can never silently overwrite a machine
        counter.  The pre-1.4 flat aliases (``resolver_locals``,
        ``compile_nodes``, ``vm_quanta``, ...) are gone; see the 1.4.0
        release note in README.md."""
        out = dict(self.machine.stats)
        if self.engine != "dict":
            _merge_namespaced(out, "resolver", self.resolver_stats.as_dict())
            if self.analysis:
                _merge_namespaced(out, "analysis", self.analysis_stats.as_dict())
            if self.engine == "compiled":
                _merge_namespaced(out, "compile", self.compile_stats.as_dict())
            elif self.engine == "codegen":
                _merge_namespaced(out, "codegen", self.codegen_stats.as_dict())
        if self.machine.profile:
            _merge_namespaced(out, "vm", self.machine.vm_stats)
        out.update(self.metrics.as_dict())
        return out

    def __repr__(self) -> str:
        return (
            f"#<session {self.name} engine={self.engine} "
            f"depth={self.queue_depth} {'idle' if self.idle else 'busy'}>"
        )


def _merge_namespaced(out: dict[str, int], prefix: str, counters: dict[str, int]) -> None:
    """Merge ``counters`` under ``prefix.*`` (the stats records export
    raw ``prefix_name`` keys; the namespaced form is the only public
    spelling since 1.4.0)."""
    marker = prefix + "_"
    for key, value in counters.items():
        short = key[len(marker):] if key.startswith(marker) else key
        out[f"{prefix}.{short}"] = value
