"""repro.host — the multi-session host runtime.

Multiplexes many interpreter sessions over the quantum-batched
machine: each :class:`Session` wraps one complete pipeline (machine,
globals, expansion environment) whose in-flight evaluation — including
a suspended ``pcall`` tree with captured subcontinuations — survives
between host ticks as a first-class process tree.  A :class:`Host`
drives N sessions under fair round-robin or deficit scheduling with
per-request deadlines (step budgets enforced exactly, wall-clock
checked at quantum boundaries), cooperative capture-and-discard
cancellation, and bounded-queue backpressure.

See ``docs/API.md`` for the serving API and ``examples/host_serving.py``
for a complete multi-tenant demo.
"""

from repro.errors import DeadlineExceeded, HostError, HostSaturated, SessionCancelled
from repro.host.handle import EvalHandle, HandleState
from repro.host.host import DEFICIT_CAP_TICKS, Host, HostPolicy
from repro.host.metrics import HostMetrics, SessionMetrics
from repro.host.session import Session

__all__ = [
    "DEFICIT_CAP_TICKS",
    "DeadlineExceeded",
    "EvalHandle",
    "HandleState",
    "Host",
    "HostError",
    "HostMetrics",
    "HostPolicy",
    "HostSaturated",
    "Session",
    "SessionCancelled",
    "SessionMetrics",
]
