"""Counters and histograms for the host runtime.

Two small fixed-slot metric records — one per :class:`~repro.host.session.Session`,
one per :class:`~repro.host.host.Host` — exported as namespaced
dictionaries (``session.*`` / ``host.*``) so they merge collision-free
into the machine's ``stats`` plumbing, the REPL's ``,stats`` and
``BENCH_results.json``.

Each record is counters plus a few log2 :class:`~repro.obs.histogram.Histogram`
distributions (request latency, steps per request / tick duration,
steps per tick).  ``as_dict`` stays int-only — it iterates the
``_COUNTERS`` tuple, not ``__slots__`` — because the host's stats
rollup sums those values across sessions; the distributions are
exported separately via ``histograms()``.
"""

from __future__ import annotations

from typing import Any

from repro.obs.histogram import Histogram

__all__ = ["SessionMetrics", "HostMetrics"]


class SessionMetrics:
    """Per-session counters and distributions, updated by the
    session's pump loop."""

    _COUNTERS = (
        "submits",
        "evals_completed",
        "evals_failed",
        "deadline_misses",
        "cancellations",
        "saturations",
        "quanta_served",
        "steps_served",
        "max_queue_depth",
        "submits_pure",
        "submits_capture_heavy",
        "submits_spawning",
    )

    __slots__ = _COUNTERS + ("latency_us", "steps_hist")

    def __init__(self) -> None:
        self.submits = 0  # evaluations accepted into the queue
        self.evals_completed = 0  # handles that reached DONE
        self.evals_failed = 0  # handles that reached FAILED/CANCELLED
        self.deadline_misses = 0  # step-budget or wall-clock expiries
        self.cancellations = 0  # cooperative cancels (queued or in-flight)
        self.saturations = 0  # submits refused by the queue bound
        self.quanta_served = 0  # pump() calls that found work
        self.steps_served = 0  # machine steps executed on behalf of evals
        self.max_queue_depth = 0  # high-water mark of pending + active
        # Request classifications from the capture/effect analysis
        # (repro.analysis.effects); "unknown" submits count in none.
        self.submits_pure = 0
        self.submits_capture_heavy = 0
        self.submits_spawning = 0
        self.latency_us = Histogram()  # submit -> terminal state, per request
        self.steps_hist = Histogram()  # machine steps, per request

    def observe_request(self, latency_us: float, steps: int) -> None:
        """Record one finished request (any terminal state): its
        submit-to-terminal latency in µs and its machine steps."""
        self.latency_us.observe(latency_us)
        self.steps_hist.observe(steps)

    def as_dict(self, prefix: str = "session") -> dict[str, int]:
        return {f"{prefix}.{name}": getattr(self, name) for name in self._COUNTERS}

    def histograms(self, prefix: str = "session") -> dict[str, Any]:
        """The distribution summaries, JSON-ready."""
        return {
            f"{prefix}.latency_us": self.latency_us.as_dict(),
            f"{prefix}.steps_per_request": self.steps_hist.as_dict(),
        }


class HostMetrics:
    """Host-level counters and distributions (the per-session ones
    roll up separately)."""

    _COUNTERS = ("ticks", "submits", "saturations", "steps_served", "session_faults")

    __slots__ = _COUNTERS + ("tick_us", "tick_steps")

    def __init__(self) -> None:
        self.ticks = 0  # scheduling rounds run
        self.submits = 0  # evaluations accepted host-wide
        self.saturations = 0  # submits refused (host-wide or per-session bound)
        self.steps_served = 0  # machine steps executed across all sessions
        self.session_faults = 0  # pumps that surfaced a session-fatal error
        self.tick_us = Histogram()  # wall-clock duration per tick
        self.tick_steps = Histogram()  # machine steps per tick

    def as_dict(self, prefix: str = "host") -> dict[str, int]:
        return {f"{prefix}.{name}": getattr(self, name) for name in self._COUNTERS}

    def histograms(self, prefix: str = "host") -> dict[str, Any]:
        """The distribution summaries, JSON-ready."""
        return {
            f"{prefix}.tick_us": self.tick_us.as_dict(),
            f"{prefix}.steps_per_tick": self.tick_steps.as_dict(),
        }
