"""Counters for the host runtime.

Two small fixed-slot counter records — one per :class:`~repro.host.session.Session`,
one per :class:`~repro.host.host.Host` — exported as namespaced
dictionaries (``session.*`` / ``host.*``) so they merge collision-free
into the machine's ``stats`` plumbing, the REPL's ``,stats`` and
``BENCH_results.json``.
"""

from __future__ import annotations

__all__ = ["SessionMetrics", "HostMetrics"]


class SessionMetrics:
    """Per-session counters, updated by the session's pump loop."""

    __slots__ = (
        "submits",
        "evals_completed",
        "evals_failed",
        "deadline_misses",
        "cancellations",
        "saturations",
        "quanta_served",
        "steps_served",
        "max_queue_depth",
    )

    def __init__(self) -> None:
        self.submits = 0  # evaluations accepted into the queue
        self.evals_completed = 0  # handles that reached DONE
        self.evals_failed = 0  # handles that reached FAILED/CANCELLED
        self.deadline_misses = 0  # step-budget or wall-clock expiries
        self.cancellations = 0  # cooperative cancels (queued or in-flight)
        self.saturations = 0  # submits refused by the queue bound
        self.quanta_served = 0  # pump() calls that found work
        self.steps_served = 0  # machine steps executed on behalf of evals
        self.max_queue_depth = 0  # high-water mark of pending + active

    def as_dict(self, prefix: str = "session") -> dict[str, int]:
        return {f"{prefix}.{name}": getattr(self, name) for name in self.__slots__}


class HostMetrics:
    """Host-level counters (the per-session ones roll up separately)."""

    __slots__ = ("ticks", "submits", "saturations", "steps_served", "session_faults")

    def __init__(self) -> None:
        self.ticks = 0  # scheduling rounds run
        self.submits = 0  # evaluations accepted host-wide
        self.saturations = 0  # submits refused (host-wide or per-session bound)
        self.steps_served = 0  # machine steps executed across all sessions
        self.session_faults = 0  # pumps that surfaced a session-fatal error

    def as_dict(self, prefix: str = "host") -> dict[str, int]:
        return {f"{prefix}.{name}": getattr(self, name) for name in self.__slots__}
