"""The :class:`Host`: N interpreter sessions multiplexed fairly.

A host owns a set of :class:`~repro.host.session.Session` objects and
drives them in *ticks*.  Each tick visits every session that has work
and pumps it for a bounded number of machine steps, so many tenants'
programs — including capture-heavy ones suspended mid-``pcall`` —
interleave at quantum granularity on one thread.  This is the paper's
own story one level up: just as ``pcall`` branches are tasks
multiplexed by the machine's scheduler, sessions are machines
multiplexed by the host, and in both cases suspension is cheap because
the suspended computation is a first-class tree, not a blocked OS
thread.

Two scheduling policies:

* ``round-robin`` — every busy session gets exactly ``quantum`` steps
  per tick.  Deterministic and strictly fair per tick.
* ``deficit`` — deficit round-robin: each session accrues ``quantum``
  credit per tick (capped at ``DEFICIT_CAP_TICKS`` ticks' worth) and
  may spend its full balance when visited.  A session that was idle or
  under-served catches up; sustained load converges to the same
  long-run share as round-robin.

Failure isolation: an error, deadline miss or cancellation inside one
session fails only that session's in-flight handle (see
``Session.pump``); the host additionally catches session-*fatal* errors
(a session exhausting its lifetime step budget) so one tenant's
exhaustion never stops the tick loop — it is recorded in
``host.session_faults`` and the session keeps its queue.
"""

from __future__ import annotations

import enum
import itertools
from time import perf_counter as _perf_counter
from typing import Any, Iterator

from repro.errors import HostSaturated, ReproError
from repro.host.handle import EvalHandle
from repro.host.metrics import HostMetrics
from repro.host.session import Session
from repro.obs.recorder import Recorder

__all__ = ["DEFICIT_CAP_TICKS", "Host", "HostPolicy"]

_host_ids = itertools.count()

#: Credit cap for the deficit policy, in ticks' worth of quantum: an
#: idle session can bank at most this many ticks of service, bounding
#: the burst it can claim in one visit (and hence how far one tick's
#: latency can stretch for everyone else).
DEFICIT_CAP_TICKS = 4


class HostPolicy(enum.Enum):
    """Session scheduling policy; constructors accept the enum or its
    string value, mirroring engine/policy selectors elsewhere."""

    ROUND_ROBIN = "round-robin"
    DEFICIT = "deficit"


class Host:
    """A multi-session serving runtime over the interpreter.

    Parameters
    ----------
    policy:
        Session scheduling policy (:class:`HostPolicy` or its string
        value): ``"round-robin"`` (default) or ``"deficit"``.
    quantum:
        Machine steps granted to each busy session per tick (the
        host-level quantum; sessions' machines keep their own, finer
        task quantum).
    max_pending:
        Host-wide bound on queued + in-flight evaluations across all
        sessions; ``submit`` beyond it raises
        :class:`~repro.errors.HostSaturated` (per-session bounds are
        enforced by the sessions themselves).
    record:
        Observability: ``True`` builds a fresh
        :class:`~repro.obs.recorder.Recorder`, or pass an existing one;
        it is shared with every attached session (unless a session
        brought its own), so host ticks, session pumps, quanta and
        control events land in one stream as a span tree.
    class_weights:
        Optional analysis-aware budgeting: a mapping from a session's
        :meth:`~repro.host.session.Session.backlog_classification`
        (``"pure"``, ``"capture-heavy"``, ``"spawning"``, ``"unknown"``)
        to a multiplier applied to that session's per-tick quantum —
        e.g. ``{"pure": 2.0, "spawning": 0.5}`` serves proven-pure
        backlogs twice the steps and throttles spawning ones.  Under
        the deficit policy the credit accrual *and* its cap scale with
        the weight.  ``None`` (default) budgets every session
        identically — byte-identical to the pre-analysis scheduler.
    """

    def __init__(
        self,
        *,
        policy: str | HostPolicy = HostPolicy.ROUND_ROBIN,
        quantum: int = 512,
        max_pending: int = 1024,
        name: str | None = None,
        record: "Recorder | bool | None" = None,
        class_weights: dict[str, float] | None = None,
    ):
        self.policy = HostPolicy(policy)
        self.quantum = max(1, quantum)
        self.class_weights = dict(class_weights) if class_weights else None
        self.max_pending = max(1, max_pending)
        self.name = name if name is not None else f"host-{next(_host_ids)}"
        self.sessions: list[Session] = []
        self._by_name: dict[str, Session] = {}
        self._deficit: dict[str, int] = {}
        self.metrics = HostMetrics()
        if record is True:
            self.recorder: Recorder | None = Recorder()
        elif record is False:
            self.recorder = None
        else:
            self.recorder = record

    # -- membership ------------------------------------------------------

    def session(self, name: str | None = None, **kwargs: Any) -> Session:
        """Create a new :class:`Session` (constructor kwargs pass
        through) and attach it to this host."""
        return self.add_session(Session(name=name, **kwargs))

    def add_session(self, session: Session) -> Session:
        """Attach an existing session; returns it.  Names must be
        unique within the host."""
        if session.name in self._by_name:
            raise ValueError(f"host {self.name}: duplicate session name {session.name!r}")
        self.sessions.append(session)
        self._by_name[session.name] = session
        self._deficit[session.name] = 0
        if self.recorder is not None and session.recorder is None:
            session.attach_recorder(self.recorder)
        return session

    def remove_session(self, session: Session | str) -> Session:
        """Detach a session (cancelling any queued/in-flight work) and
        return it."""
        session = self[session] if isinstance(session, str) else session
        session.cancel_all()
        self.sessions.remove(session)
        del self._by_name[session.name]
        del self._deficit[session.name]
        return session

    def __getitem__(self, name: str) -> Session:
        return self._by_name[name]

    def __iter__(self) -> Iterator[Session]:
        return iter(self.sessions)

    def __len__(self) -> int:
        return len(self.sessions)

    # -- submission ------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Queued plus in-flight evaluations, host-wide."""
        return sum(session.queue_depth for session in self.sessions)

    @property
    def idle(self) -> bool:
        """True when no session has queued or in-flight work."""
        return all(session.idle for session in self.sessions)

    def submit(
        self,
        session: Session | str,
        source: str,
        *,
        max_steps: int | None = None,
        deadline: float | None = None,
        tenant: str | None = None,
    ) -> EvalHandle:
        """Queue ``source`` on ``session`` (a member session or its
        name); the keyword surface is the shared submit contract
        (``max_steps``/``deadline``/``tenant`` — see ``docs/API.md``).
        Enforces the host-wide bound before the session's own; both
        refusals raise :class:`~repro.errors.HostSaturated`.  An
        unknown session name (or a session object belonging to another
        host) raises :class:`ValueError` naming this host."""
        if isinstance(session, str):
            if session not in self._by_name:
                raise ValueError(f"host {self.name}: {session!r} is not one of my sessions")
            session = self._by_name[session]
        if session.name not in self._by_name or self._by_name[session.name] is not session:
            raise ValueError(f"host {self.name}: {session.name!r} is not one of my sessions")
        if self.queue_depth >= self.max_pending:
            self.metrics.saturations += 1
            raise HostSaturated(
                f"host {self.name}: queue full ({self.queue_depth}/{self.max_pending})"
            )
        try:
            handle = session.submit(
                source, max_steps=max_steps, deadline=deadline, tenant=tenant
            )
        except HostSaturated:
            self.metrics.saturations += 1
            raise
        self.metrics.submits += 1
        return handle

    def cancel(self, handle: EvalHandle) -> bool:
        """Cancel a handle submitted to any of this host's sessions."""
        return handle.cancel()

    # -- the tick loop ---------------------------------------------------

    def tick(self) -> int:
        """One scheduling round: pump every busy session per the
        policy; returns total machine steps executed.

        A session-fatal :class:`~repro.errors.ReproError` surfacing
        from a pump (a session exhausting its *lifetime* step budget —
        per-request budget misses are absorbed by the session and never
        reach here) is caught, counted in ``host.session_faults``, and
        does not disturb the other sessions' service.

        With a recorder attached the tick is bracketed as a
        ``host.tick`` span on the ``host`` track; every tick's duration
        and step total also feed the host's histograms.
        """
        t0 = _perf_counter()
        rec = self.recorder
        if rec is not None and rec.enabled:
            with rec.span("host.tick", f"tick {self.metrics.ticks}", track="host"):
                total = self._tick()
        else:
            total = self._tick()
        self.metrics.tick_us.observe((_perf_counter() - t0) * 1e6)
        self.metrics.tick_steps.observe(total)
        return total

    def _tick(self) -> int:
        self.metrics.ticks += 1
        deficit = self.policy is HostPolicy.DEFICIT
        weights = self.class_weights
        total = 0
        # Snapshot: sessions added mid-tick wait for the next round.
        for session in list(self.sessions):
            quantum = self.quantum
            if weights is not None and not session.idle:
                weight = weights.get(session.backlog_classification())
                if weight is not None:
                    quantum = max(1, int(self.quantum * weight))
            if deficit:
                cap = DEFICIT_CAP_TICKS * quantum
                credit = min(cap, self._deficit[session.name] + quantum)
                if session.idle:
                    # No work to bank against; idle sessions do not
                    # accumulate claims on future ticks.
                    self._deficit[session.name] = 0
                    continue
                budget = credit
            else:
                if session.idle:
                    continue
                budget = quantum
            served_before = session.metrics.steps_served
            try:
                spent = session.pump(budget)
            except ReproError:
                self.metrics.session_faults += 1
                # The pump accounts every executed step into the
                # session's steps_served before the fault propagates;
                # recover the partial spend from that counter so the
                # steps stay visible in host.steps_served and the
                # deficit bank does not treat a faulted tick as free
                # credit.
                spent = session.metrics.steps_served - served_before
            total += spent
            if deficit:
                self._deficit[session.name] = max(0, credit - spent)
        self.metrics.steps_served += total
        return total

    def run_until_idle(self, max_ticks: int | None = None) -> int:
        """Tick until every session is idle (or ``max_ticks`` rounds
        have run); returns the number of ticks executed."""
        ticks = 0
        while not self.idle:
            if max_ticks is not None and ticks >= max_ticks:
                break
            self.tick()
            ticks += 1
        return ticks

    # -- introspection ---------------------------------------------------

    @property
    def stats(self) -> dict[str, int]:
        """Host counters (``host.*``) plus per-session rollups of the
        serving counters (summed across sessions, ``host.sessions.*``)."""
        out = self.metrics.as_dict()
        out["host.sessions"] = len(self.sessions)
        rollup: dict[str, int] = {}
        for session in self.sessions:
            for key, value in session.metrics.as_dict().items():
                short = key.split(".", 1)[1]
                rollup[short] = rollup.get(short, 0) + value
        for key, value in sorted(rollup.items()):
            out[f"host.sessions.{key}"] = value
        return out

    def session_stats(self) -> dict[str, dict[str, int]]:
        """Full per-session stats, keyed by session name."""
        return {session.name: session.stats for session in self.sessions}

    def histograms(self) -> dict[str, Any]:
        """Latency/steps distribution summaries: the host's tick
        histograms plus each session's request histograms, JSON-ready
        (this is what the benchmark drivers fold into
        ``BENCH_results.json``)."""
        out: dict[str, Any] = self.metrics.histograms()
        for session in self.sessions:
            out.update(session.metrics.histograms(prefix=f"session.{session.name}"))
        return out

    def __repr__(self) -> str:
        return (
            f"#<host {self.name} {self.policy.value} "
            f"{len(self.sessions)} sessions depth={self.queue_depth}>"
        )
