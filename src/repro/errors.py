"""Exception hierarchy for the whole reproduction.

Every error raised by the library derives from :class:`ReproError`, so a
host application can catch one type.  The hierarchy mirrors the
subsystem structure:

* :class:`ReaderError` — lexing / parsing an s-expression stream.
* :class:`ExpandError` — macro expansion and core-form analysis.
* :class:`MachineError` — runtime errors inside the abstract machine.
* :class:`ControlError` — misuse of control operators; this is where
  the paper's "invalid controller application" lives.
* :class:`SemanticsError` — the formal rewriting system of Section 6.
* :class:`RuntimeAPIError` — the Python-native tasklet runtime.
* :class:`HostError` — the multi-session host runtime
  (:mod:`repro.host`): per-request deadlines, cooperative cancellation
  and submit-queue backpressure.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ReaderError",
    "ExpandError",
    "CompileError",
    "MachineError",
    "SchemeError",
    "WrongTypeError",
    "ArityError",
    "UnboundVariableError",
    "ControlError",
    "InvalidControllerError",
    "DeadControllerError",
    "PromptMissingError",
    "ContinuationReusedError",
    "SemanticsError",
    "StuckTermError",
    "RuntimeAPIError",
    "StepBudgetExceeded",
    "HostError",
    "DeadlineExceeded",
    "SessionCancelled",
    "HostSaturated",
    "SnapshotError",
    "SnapshotFormatError",
    "ClusterError",
    "ClusterEvalError",
    "ShardDied",
    "GatewayError",
    "FrameError",
    "GatewayBusy",
    "GatewayClosed",
    "GatewayRequestError",
]


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ReaderError(ReproError):
    """Raised for malformed input text.

    Carries the source location of the offending token when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class ExpandError(ReproError):
    """Raised when a form cannot be expanded to core syntax."""


class CompileError(ReproError):
    """Raised when the closure compiler receives IR it cannot compile
    (e.g. the expander's unresolved ``Var`` dialect)."""


class MachineError(ReproError):
    """Base class for runtime errors inside the abstract machine."""


class SchemeError(MachineError):
    """A user-level Scheme error (raised by the ``error`` primitive)."""

    def __init__(self, message: str, irritants: tuple = ()):  # type: ignore[type-arg]
        self.irritants = irritants
        super().__init__(message)


class WrongTypeError(MachineError):
    """A primitive or application received a value of the wrong type."""


class ArityError(MachineError):
    """A procedure was applied to the wrong number of arguments."""


class UnboundVariableError(MachineError):
    """Reference to a variable with no binding."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(f"unbound variable: {name}")


class ControlError(MachineError):
    """Base class for control-operator misuse."""


class InvalidControllerError(ControlError):
    """A process controller was invoked outside the dynamic extent of
    its root.

    The paper (Section 4): "Application of a controller is valid only
    when its root is in the continuation of the application."
    """


class DeadControllerError(InvalidControllerError):
    """The controller's root was removed (by normal return or by a
    previous controller application) and has not been reinstated."""


class PromptMissingError(ControlError):
    """``F`` was invoked with no enclosing prompt (Section 3 baseline)."""


class ContinuationReusedError(ControlError):
    """A one-shot continuation (Python-native runtime) was invoked twice."""


class SemanticsError(ReproError):
    """Base class for errors in the Section 6 rewriting system."""


class StuckTermError(SemanticsError):
    """A term is neither a value nor reducible (e.g. ``e ↑ l`` with no
    matching label in its evaluation context)."""

    def __init__(self, message: str, term: object | None = None):
        self.term = term
        super().__init__(message)


class RuntimeAPIError(ReproError):
    """Misuse of the Python-native tasklet runtime."""


class StepBudgetExceeded(ReproError):
    """An evaluation exceeded its configured step budget.

    Used by tests and benchmarks to bound runaway programs; carries the
    number of steps executed so far.
    """

    def __init__(self, steps: int):
        self.steps = steps
        super().__init__(f"step budget exceeded after {steps} steps")


class HostError(ReproError):
    """Base class for errors raised by the multi-session host runtime
    (:mod:`repro.host`)."""


class DeadlineExceeded(HostError):
    """An evaluation ran past its wall-clock deadline.

    The machine checks the deadline at every quantum boundary, so the
    error fires within one quantum of the budget — never mid-frame.
    Step budgets (the other half of a request's cost bound) raise
    :class:`StepBudgetExceeded`, which is enforced *exactly* at the
    configured step count; host metrics count both as deadline misses.
    Carries the number of steps the evaluation had executed.
    """

    def __init__(self, message: str = "wall-clock deadline exceeded", *, steps: int | None = None):
        self.steps = steps
        super().__init__(message)


class SessionCancelled(HostError):
    """An in-flight or queued evaluation was cooperatively cancelled.

    Cancellation is capture-and-discard at the session root: the
    session's process tree is abandoned at a quantum boundary (the
    tasks are simply unlinked, exactly like an abortive controller
    discarding a captured subtree) — no exception is ever delivered
    into a running frame, so sibling sessions and the session's own
    parked future trees are untouched.
    """


class HostSaturated(HostError):
    """A submit was refused because a bounded queue is full.

    Backpressure, not failure: nothing was evaluated and nothing was
    corrupted; the caller should retry after draining, or shed load.
    """


class SnapshotError(HostError):
    """A session could not be snapshotted or restored.

    Raised for semantic problems: snapshotting from inside a pump,
    a value of a kind the codec does not know, a primitive present in
    the snapshot but missing from the restoring build.
    """


class SnapshotFormatError(SnapshotError):
    """A snapshot blob is malformed, truncated, from an incompatible
    format version, or fails its embedded integrity checks."""


class ClusterError(HostError):
    """Base class for errors raised by the sharded cluster tier
    (:mod:`repro.cluster`)."""


class ClusterEvalError(ClusterError):
    """An evaluation on a shard failed (the in-band ``status="error"``
    reply, surfaced as an exception by the handle-parity
    :meth:`~repro.cluster.handle.ClusterHandle.result` path).

    Carries the shard-side error type name and message; the shard and
    the session both survived — only this request failed.
    """

    def __init__(self, message: str, *, error_type: str | None = None):
        self.error_type = error_type
        super().__init__(message)


class ShardDied(ClusterError):
    """A shard worker process died while holding live (non-snapshotted)
    session state; the affected request cannot be recovered."""


class GatewayError(HostError):
    """Base class for errors raised by the network gateway tier
    (:mod:`repro.gateway`)."""


class FrameError(GatewayError):
    """A wire frame violated the protocol: not valid JSON, not an
    object, oversize, or missing/mistyped required fields.

    Carries the machine-readable error ``code`` (``"bad-frame"``,
    ``"oversize"``, ``"unknown-op"``, ...) that the server echoes in
    its structured error reply — see ``docs/SERVING.md``.
    """

    def __init__(self, message: str, *, code: str = "bad-frame"):
        self.code = code
        super().__init__(message)


class GatewayBusy(HostSaturated):
    """A gateway refused a submit for capacity reasons (tenant quota,
    inflight cap, or backend saturation).

    Subclasses :class:`HostSaturated` so every frontend's refusal is
    one catchable type; carries the server's ``retry_after_ms`` hint.
    Raised client-side only — the server never raises for load, it
    answers with a structured ``busy`` reply.
    """

    def __init__(self, message: str, *, retry_after_ms: int = 0, reason: str = "busy"):
        self.retry_after_ms = retry_after_ms
        self.reason = reason
        super().__init__(message)


class GatewayClosed(GatewayError):
    """The gateway (or the client's connection to it) is closed."""


class GatewayRequestError(GatewayError):
    """The server answered a request with a non-``busy`` structured
    error (``invalid`` source, ``unknown-request`` id, ...); carries
    the reply's error ``code``."""

    def __init__(self, message: str, *, code: str = "error"):
        self.code = code
        super().__init__(message)
