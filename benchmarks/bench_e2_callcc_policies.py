"""E2 — Section 3: traditional-continuation policies under concurrency.

Claims reproduced:

* whole-tree ``call/cc`` captures *every* sibling branch: the size of
  its captured snapshot grows linearly with sibling count;
* a ``spawn`` controller captures only its own subtree: its capture
  size is constant in sibling count;
* timing rows for branch-local early exit under both working policies.

(The semantic failures of each call/cc policy are reproduced as tests
in ``tests/control/test_callcc_concurrent.py``.)
"""

from __future__ import annotations

import pytest

from repro import Interpreter
from repro.datum import to_pylist
from benchmarks.conftest import scheme_list

LIST_LEN = 60


def capture_size(kind: str, nsiblings: int) -> tuple[int, int]:
    """Run a pcall with one capturing branch and ``nsiblings`` spinning
    branches; return (tasks, control points) inside the captured
    package."""
    interp = Interpreter(quantum=2)
    interp.run("(define (spin n) (if (= n 0) 0 (spin (- n 1))))")
    if kind == "callcc":
        body = "(call/cc (lambda (k) k))"
    else:
        body = "(spawn (lambda (c) (c (lambda (k) k))))"
    siblings = " ".join("(spin 400)" for _ in range(nsiblings))
    result = interp.eval(f"(pcall list {body} {siblings})")
    continuation = to_pylist(result)[0]
    capture = continuation.capture
    return capture.task_count(), capture.control_points()


def test_e2_whole_tree_capture_grows_with_siblings():
    print("\nE2  captured snapshot size vs sibling count")
    print("  siblings | call/cc tasks | spawn tasks")
    callcc_sizes = []
    spawn_sizes = []
    for nsiblings in (1, 4, 8):
        cc_tasks, _ = capture_size("callcc", nsiblings)
        sp_tasks, _ = capture_size("spawn", nsiblings)
        callcc_sizes.append(cc_tasks)
        spawn_sizes.append(sp_tasks)
        print(f"  {nsiblings:8d} | {cc_tasks:13d} | {sp_tasks:11d}")
    # Whole-tree policy: snapshot grows with siblings.
    assert callcc_sizes[0] < callcc_sizes[1] < callcc_sizes[2]
    # spawn controller: constant-size capture (its own branch only).
    assert spawn_sizes[0] == spawn_sizes[1] == spawn_sizes[2] == 1


def define_exits(interp: Interpreter) -> None:
    interp.run(
        """
        (define (product/callcc-leaf ls)
          (call/cc-leaf (lambda (exit) (product0 ls exit))))
        (define (product/spawn ls)
          (spawn/exit (lambda (exit) (product0 ls exit))))
        """
    )


@pytest.mark.parametrize("policy", ["product/callcc-leaf", "product/spawn"])
@pytest.mark.parametrize("nbranches", [2, 8])
def test_e2_branch_local_exit_cost(benchmark, policy, nbranches):
    """Branch-local early exit timing (lists are zero-free, so exits
    never fire: this times each policy's setup overhead)."""
    interp = Interpreter()
    interp.load_paper_example("product0")
    interp.load_paper_example("spawn/exit")
    define_exits(interp)
    values = scheme_list([2] * LIST_LEN)
    branches = " ".join(f"({policy} '{values})" for _ in range(nbranches))
    source = f"(pcall list {branches})"
    expected = [2**LIST_LEN] * nbranches

    result = benchmark(lambda: interp.eval(source))
    assert to_pylist(result) == expected
