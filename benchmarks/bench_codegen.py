#!/usr/bin/env python
"""Codegen engine benchmark: speedup floor, emit overhead and the
zero-divergence gate for engine #4.

    PYTHONPATH=src python benchmarks/bench_codegen.py           # full run
    PYTHONPATH=src python benchmarks/bench_codegen.py --smoke   # CI mode
    PYTHONPATH=src python benchmarks/bench_codegen.py --out x.json

Three measurements:

* **Speedup** — the point of the engine: fib, tak and a mutual
  recursion (best-of-N CPU time, interleaved samples) under
  ``engine="codegen"`` vs the batched ``engine="compiled"`` baseline.
  The gate is a geometric mean of at least ``SPEEDUP_FLOOR``; the mean
  gates the mechanism rather than one workload's step-shape ceiling.
* **Emit overhead** — first-emit cost (``codegen.emit_us``: walk the
  IR, build the source, ``compile()``, ``exec``) must stay under
  ``EMIT_OVERHEAD_CEILING`` of the end-to-end E1 suite wall time; the
  ir-hash code cache makes every later session in the process hit.
* **Divergence** — the acceptance gate: every engine × analysis
  {on, off} × quantum {1, 16, 4096} run of every workload must print
  the same output and agree with the other two analysis/quantum cells
  of its engine on values; analysis on vs off must additionally match
  on total step count and machine stats.  Any spread fails the run.

``--smoke`` (CI) gates divergence and emit overhead and reports the
speedup ratios without gating them (shared runners drift too much for
a single-repeat CPU-time gate); the full run gates the speedup floor
too.  Results merge into ``BENCH_results.json`` under the
``"codegen"`` key, preserving whatever ``run_all.py`` already wrote.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(_ROOT, "src")):
    sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.host import Session  # noqa: E402

#: The codegen engine must beat the batched compiled engine by at
#: least this much (geometric mean over the three workloads).
SPEEDUP_FLOOR = 2.0
#: First-emit cost may be at most this fraction of the end-to-end E1
#: suite run (prelude + example + evaluations, cold cache).
EMIT_OVERHEAD_CEILING = 0.10

DIVERGENCE_ENGINES = ("dict", "resolved", "compiled", "codegen")
DIVERGENCE_QUANTA = (1, 16, 4096)
#: Engines that run the analysis phase (the dict engine has no
#: resolved IR to annotate, so its on/off cells are identical by
#: construction but still probed).
ANALYSIS_STEP_GATED = ("resolved", "compiled", "codegen")

FIB = (
    "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))"
    " (fib %d)"
)
TAK = (
    "(define (tak x y z)"
    "  (if (< y x)"
    "      (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))"
    "      z))"
    " (tak %d %d %d)"
)
MUTUAL = (
    "(define (even? n) (if (= n 0) #t (odd? (- n 1))))"
    "(define (odd? n) (if (= n 0) #f (even? (- n 1))))"
    " (even? %d)"
)

#: Divergence workloads: a pure self-recursive program (self-call
#: inline territory), a capture-heavy escape, a pcall tree and a
#: spawn/future mix — the paths where codegen must spill and delegate.
DIVERGENCE_WORKLOADS = [
    ("pure-fib", FIB % 12 + ""),
    (
        "capture-product",
        "(define (p l) (call/cc (lambda (k) (let loop ([l l])"
        " (if (null? l) 1 (if (= (car l) 0) (k 0)"
        " (* (car l) (loop (cdr l)))))))))"
        " (display (p '(1 2 3 0 5)))",
    ),
    (
        "pcall-tree",
        "(define (loop n acc) (if (= n 0) acc (loop (- n 1) (+ acc 1))))"
        " (display (pcall + (loop 40 0) (pcall + (loop 9 1) (loop 17 0))"
        " (loop 3 2)))",
    ),
    (
        "spawn-future-mix",
        "(display (spawn (lambda (c) (+ 1 (c (lambda (k) (k 10)))))))"
        " (display (touch (future (lambda () 32))))",
    ),
]


def bench_speedup(repeats: int, smoke: bool) -> dict[str, object]:
    workloads = {
        "fib": FIB % (14 if smoke else 18),
        "tak": TAK % ((10, 6, 3) if smoke else (12, 8, 4)),
        "mutual": MUTUAL % (1000 if smoke else 6000),
    }
    out: dict[str, object] = {}
    for name, source in workloads.items():
        timings = {"compiled": float("inf"), "codegen": float("inf")}
        for _ in range(max(repeats, 5) if not smoke else repeats):
            for engine in ("compiled", "codegen"):  # interleaved samples
                session = Session(engine=engine, batched=True)
                t0 = time.process_time()
                session.run(source)
                timings[engine] = min(timings[engine], time.process_time() - t0)
        out[name] = {
            "run_s_compiled": timings["compiled"],
            "run_s_codegen": timings["codegen"],
            "speedup": (
                timings["compiled"] / timings["codegen"]
                if timings["codegen"]
                else 1.0
            ),
        }
    return out


def bench_emit_overhead(
    repeats: int, length: int = 1500, passes: int = 10
) -> dict[str, object]:
    """First-emit cost vs end-to-end on the E1 suite, cold cache.

    The end-to-end run is the paper's E1 zero-position sweep (a zero at
    the front, the middle, the back, and absent) over ``length``-element
    lists, iterated ``passes`` times — the same shape the timing cases
    of ``bench_e1_product_callcc.py`` iterate — so the gate compares a
    real workload against the one-time cost of walking the IR, building
    the source, ``compile()`` and ``exec``.  Emit time is one-time by
    construction: every pass after the first hits the ir-hash cache.
    The input lists are built by a small Scheme helper rather than
    pasted as giant literals, so emit cost stays independent of the
    workload size (a hoisted 1500-element constant would otherwise bill
    the data to the emitter).
    """
    from repro.ir.codegen import clear_cache

    build = (
        "(define (build n zero-at)"
        "  (if (= n 0) '()"
        "      (cons (if (= n zero-at) 0 2) (build (- n 1) zero-at))))"
    )
    # build counts n down from length, so zero-at=length puts the zero
    # first, 1 puts it last, and 0 never matches (no zero at all).
    sweeps = [
        f"(display (product (build {length} {zero_at})))"
        for zero_at in (length, length // 2, 1, 0)
    ]

    best_total = float("inf")
    best_emit = float("inf")
    for _ in range(max(repeats, 3)):
        clear_cache()  # force a genuinely cold first emit
        t0 = time.process_time()
        session = Session(engine="codegen")
        session.load_paper_example("product-callcc")
        session.run(build)
        for _ in range(passes):
            for source in sweeps:
                session.run(source)
        total = time.process_time() - t0
        emit = session.codegen_stats.emit_us / 1e6
        best_total = min(best_total, total)
        best_emit = min(best_emit, emit)
    return {
        "suite": (
            f"E1 product-callcc zero-position sweep "
            f"(length {length}, {passes} passes)"
        ),
        "end_to_end_s": best_total,
        "emit_s": best_emit,
        "emit_fraction": best_emit / best_total if best_total else 0.0,
    }


def run_divergence() -> dict[str, object]:
    failures: list[str] = []
    probes = 0
    for engine in DIVERGENCE_ENGINES:
        for name, source in DIVERGENCE_WORKLOADS:
            # Within one engine: every analysis × quantum cell must
            # print the same output; the analysis on/off pair at each
            # quantum must also agree on steps and machine stats.
            outputs = set()
            for quantum in DIVERGENCE_QUANTA:
                runs = {}
                for analysis in (True, False):
                    probes += 1
                    session = Session(
                        engine=engine, quantum=quantum, seed=5, analysis=analysis
                    )
                    session.run(source)
                    runs[analysis] = (
                        session.output_text(),
                        session.machine.steps_total,
                        dict(session.machine.stats),
                    )
                    outputs.add(runs[analysis][0])
                if runs[True] != runs[False]:
                    failures.append(f"{engine}/q{quantum}/{name}/analysis")
            if len(outputs) != 1:
                failures.append(f"{engine}/{name}/quantum-spread")
    # Engines must agree with each other on printed output too.
    for name, source in DIVERGENCE_WORKLOADS:
        outs = set()
        for engine in DIVERGENCE_ENGINES:
            probes += 1
            session = Session(engine=engine, quantum=16, seed=5)
            session.run(source)
            outs.add(session.output_text())
        if len(outs) != 1:
            failures.append(f"cross-engine/{name}")
    return {
        "engines": list(DIVERGENCE_ENGINES),
        "quanta": list(DIVERGENCE_QUANTA),
        "workloads": [name for name, _ in DIVERGENCE_WORKLOADS],
        "probes": probes,
        "failures": failures,
        "agree": not failures,
    }


def _merge_out(path: str, payload: dict[str, object]) -> None:
    data: dict[str, object] = {}
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data["codegen"] = payload
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2)
        handle.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=os.path.join(_ROOT, "BENCH_results.json"),
        help="result JSON path; the codegen section merges into an "
        "existing run_all.py file (default: BENCH_results.json)",
    )
    parser.add_argument("--repeats", type=int, default=5, help="best-of-N")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: divergence and emit overhead gated, speedup "
        "ratios reported but not gated (shared runners)",
    )
    args = parser.parse_args(argv)
    repeats = 1 if args.smoke else max(1, args.repeats)

    divergence = run_divergence()
    speedup = bench_speedup(repeats, args.smoke)
    emit = bench_emit_overhead(repeats)

    speedups = {
        name: timing["speedup"]
        for name, timing in speedup.items()
        if isinstance(timing, dict)
    }
    geomean = 1.0
    for s in speedups.values():
        geomean *= s
    geomean **= 1.0 / max(1, len(speedups))
    speedup_ok = geomean >= SPEEDUP_FLOOR
    emit_ok = emit["emit_fraction"] <= EMIT_OVERHEAD_CEILING  # type: ignore[operator]
    if args.smoke:
        acceptance_pass = bool(divergence["agree"]) and emit_ok
    else:
        acceptance_pass = bool(divergence["agree"]) and emit_ok and speedup_ok

    payload = {
        "repeats": repeats,
        "smoke": args.smoke,
        "speedup": speedup,
        "emit_overhead": emit,
        "divergence": divergence,
        "acceptance": {
            "speedup_floor": SPEEDUP_FLOOR,
            "speedups": speedups,
            "speedup_geomean": geomean,
            "speedup_ok": speedup_ok,
            "emit_overhead_ceiling": EMIT_OVERHEAD_CEILING,
            "emit_fraction": emit["emit_fraction"],
            "emit_ok": emit_ok,
            "divergence_ok": divergence["agree"],
            "pass": acceptance_pass,
        },
    }
    _merge_out(args.out, payload)
    print(f"\nwrote codegen section to {args.out}")
    status = "pass" if acceptance_pass else "FAIL"
    detail = " ".join(f"{name}={s:.2f}x" for name, s in speedups.items())
    print(
        f"acceptance [{status}]: divergence_ok={divergence['agree']} "
        f"({divergence['probes']} probes) "
        f"emit fraction {emit['emit_fraction']:.3f} "
        f"(ceiling {EMIT_OVERHEAD_CEILING}) "
        f"speedup geomean {geomean:.2f}x [{detail}] (floor {SPEEDUP_FLOOR}x"
        + (", timings not gated in --smoke" if args.smoke else "")
        + ")"
    )
    return 0 if acceptance_pass else 1


if __name__ == "__main__":
    sys.exit(main())
