"""Shared benchmark helpers.

Every benchmark prints the rows it reproduces (`-s` to see them live);
EXPERIMENTS.md records a captured run.  Benchmarks use modest sizes so
`pytest benchmarks/ --benchmark-only` completes in minutes on a laptop:
the claims are about *shape* (scaling, crossovers, who wins), not
absolute 1990 numbers.
"""

from __future__ import annotations

import pytest

from repro import Interpreter


@pytest.fixture
def interp() -> Interpreter:
    return Interpreter()


@pytest.fixture
def paper_interp() -> Interpreter:
    i = Interpreter()
    for name in (
        "product0",
        "product-callcc",
        "product-callcc-leaf",
        "product-of-products-callcc",
        "spawn/exit",
        "sum-of-products",
        "product-of-products-spawn",
        "first-true",
        "parallel-or",
        "parallel-search",
        "search-all",
    ):
        i.load_paper_example(name)
    return i


def scheme_list(values) -> str:
    return "(" + " ".join(str(v) for v in values) + ")"
