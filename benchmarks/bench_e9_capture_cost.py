"""E9 — the Section 7 complexity claim (the paper's one quantitative
statement, and this reproduction's headline plot):

    "operations involving process controllers and process
     continuations are linear with respect to the number of control
     points (labels and forks) within the process continuation rather
     than with respect to the size of the process continuation itself."

Three series are produced:

1. clone cost vs **continuation size** (frame-chain depth) at fixed
   control points → flat for the sharing implementation, linear for
   the copying ablation;
2. clone cost vs **control points** (nested spawns) at fixed depth →
   linear for both (that linearity is the claim's allowance);
3. end-to-end controller capture steps vs depth → flat.
"""

from __future__ import annotations

import time

import pytest

from repro import Interpreter
from repro.control.spawn import ProcessContinuation
from repro.machine.ablation import clone_capture_copying
from repro.machine.frames import frame_chain_length
from repro.machine.tree import clone_capture

REPEATS = 200


def continuation_with_depth(depth: int) -> ProcessContinuation:
    """k = <label: deep(depth) pending frames [hole]>."""
    interp = Interpreter()
    interp.run(
        """
        (define (deep n thunk)
          (if (= n 0) (thunk) (+ 1 (deep (- n 1) thunk))))
        """
    )
    k = interp.eval(
        f"(spawn (lambda (c) (deep {depth} (lambda () (c (lambda (kk) kk))))))"
    )
    assert isinstance(k, ProcessContinuation)
    return k


def continuation_with_control_points(nlabels: int) -> ProcessContinuation:
    """k's subtree contains ``nlabels`` nested spawn labels (built
    dynamically so syntactic nesting depth stays constant)."""
    interp = Interpreter()
    interp.run(
        """
        (define (nest n c0)
          (if (= n 0)
              (c0 (lambda (kk) kk))
              (+ 1 (spawn (lambda (ci) (nest (- n 1) c0))))))
        """
    )
    k = interp.eval(f"(spawn (lambda (c0) (nest {nlabels} c0)))")
    assert isinstance(k, ProcessContinuation)
    return k


def timed(fn) -> float:
    start = time.perf_counter()
    for _ in range(REPEATS):
        fn()
    return (time.perf_counter() - start) / REPEATS


def test_e9_clone_flat_in_continuation_size_sharing_vs_copying():
    depths = [50, 200, 800, 3200]
    print("\nE9  clone cost vs continuation size (μs; fixed 1 control point)")
    print("  depth | frames | sharing | copying")
    sharing, copying = [], []
    for depth in depths:
        k = continuation_with_depth(depth)
        frames = frame_chain_length(k.capture.hole.frames)
        share_t = timed(lambda: clone_capture(k.capture)) * 1e6
        copy_t = timed(lambda: clone_capture_copying(k.capture)) * 1e6
        sharing.append(share_t)
        copying.append(copy_t)
        print(f"  {depth:5d} | {frames:6d} | {share_t:7.2f} | {copy_t:7.2f}")
    # Sharing: flat — 64x depth may cost at most ~3x (allocator noise).
    assert sharing[-1] < sharing[0] * 3 + 5
    # Copying: clearly linear — 64x depth costs >10x.
    assert copying[-1] > copying[0] * 10
    # Crossover: at depth 3200 sharing wins by an order of magnitude.
    assert copying[-1] > sharing[-1] * 10


def test_e9_clone_linear_in_control_points():
    counts = [4, 16, 64, 256]
    print("\nE9  clone cost vs control points (μs; fixed shallow frames)")
    print("  labels | sharing-clone")
    times = []
    for count in counts:
        k = continuation_with_control_points(count)
        assert k.capture.control_points() == count + 1
        clone_capture(k.capture)  # warm up
        t = timed(lambda: clone_capture(k.capture)) * 1e6
        times.append(t)
        print(f"  {count:6d} | {t:10.2f}")
    # Linear-ish growth: 64x labels cost much more than 4...
    assert times[-1] > times[0] * 8
    # ...but not quadratic: cost per label stays bounded.
    assert times[-1] < times[0] * 64 * 4


def test_e9_abort_skips_pending_work():
    """End-to-end machine steps: the controller abort never traverses
    the continuation it discards.  The capturing run pays for building
    the frames but *not* for popping them — so it costs strictly less
    than the normal-return run, and the savings grow linearly with
    depth."""
    print("\nE9  abort vs normal return (machine steps)")
    savings = []
    for depth in (50, 400, 1600):
        interp = Interpreter()
        interp.run(
            """
            (define (deep n thunk)
              (if (= n 0) (thunk) (+ 1 (deep (- n 1) thunk))))
            """
        )
        base_before = interp.machine.steps_total
        interp.eval(f"(spawn (lambda (c) (deep {depth} (lambda () 0))))")
        base = interp.machine.steps_total - base_before
        cap_before = interp.machine.steps_total
        interp.eval(
            f"(spawn (lambda (c) (deep {depth} (lambda () (c (lambda (k) 0))))))"
        )
        cap = interp.machine.steps_total - cap_before
        saved = base - cap
        savings.append(saved)
        print(f"  depth {depth:5d}: return={base}  abort={cap}  saved={saved}")
    # Abort saves the pops: savings strictly increase with depth and
    # scale linearly (x32 depth ⇒ >x20 savings).
    assert savings[0] > 0
    assert savings[2] > savings[1] > savings[0]
    assert savings[2] > savings[0] * 20


@pytest.mark.parametrize("depth", [100, 1600])
def test_e9_clone_sharing_timing(benchmark, depth):
    k = continuation_with_depth(depth)
    benchmark(lambda: clone_capture(k.capture))


@pytest.mark.parametrize("depth", [100, 1600])
def test_e9_clone_copying_timing(benchmark, depth):
    k = continuation_with_depth(depth)
    benchmark(lambda: clone_capture_copying(k.capture))
