"""E3 — Section 4's validity rule, as an operational cost series.

The semantic side of E3 (the three paper examples) lives in
``tests/control/test_spawn_validity.py``.  This bench quantifies the
mechanism behind the rule: applying a controller walks *up* from the
application to the nearest instance of its root, so

* the check costs O(labels between application and root) — linear in
  the sweep below;
* an invalid application costs a full walk to the tree root before it
  is rejected (the error is not free, but bounded by tree depth).
"""

from __future__ import annotations

import pytest

from repro import Interpreter
from repro.errors import DeadControllerError
from repro.machine.tree import find_label_link


def machine_with_label_chain(depth: int):
    """Build a live tree with ``depth`` nested spawn labels, frozen
    mid-execution (the bottom of the chain spins until the step budget
    trips), and return (machine, bottom task)."""
    from repro.errors import StepBudgetExceeded

    interp = Interpreter()
    interp.run(
        """
        (define (nest n inner)
          (if (= n 0)
              (inner)
              (spawn (lambda (c) (nest (- n 1) inner)))))
        """
    )
    state = {}

    def hook(machine, task):
        # Track the deepest chain seen; the spin keeps it alive.
        from repro.machine.links import LabelLink

        count = 0
        link = task.link
        while isinstance(link, LabelLink):
            count += 1
            link = link.cont_link
        if count >= depth + 1:  # + the implicit root label
            state["task"] = task
            state["machine"] = machine

    interp.machine.trace_hook = hook
    interp.machine.max_steps = depth * 40 + 4000
    try:
        interp.eval(f"(nest {depth} (lambda () (let spin () (spin))))")
    except StepBudgetExceeded:
        pass
    interp.machine.trace_hook = None
    interp.machine.max_steps = None
    assert "task" in state, "chain never reached target depth"
    return state["machine"], state["task"]


@pytest.mark.parametrize("depth", [4, 64, 512])
def test_e3_validity_walkup_timing(benchmark, depth):
    machine, task = machine_with_label_chain(depth)

    # Search for a label that is NOT on the chain: the walk must scan
    # every link — the worst case.
    result = benchmark(lambda: find_label_link(task, lambda label: False))
    assert result is None


def test_e3_walkup_cost_linear_in_depth():
    import time

    print("\nE3  controller validity walk (μs) vs label depth")
    times = []
    for depth in (8, 64, 512):
        machine, task = machine_with_label_chain(depth)
        start = time.perf_counter()
        for _ in range(300):
            find_label_link(task, lambda label: False)
        elapsed = (time.perf_counter() - start) / 300 * 1e6
        times.append(elapsed)
        print(f"  depth {depth:4d}: {elapsed:8.2f}")
    assert times[2] > times[0] * 8  # linear growth
    assert times[2] < times[0] * 64 * 6  # not quadratic


def test_e3_invalid_application_is_detected_not_hung():
    """An invalid controller application deep in a tree errors promptly."""
    interp = Interpreter(max_steps=100_000)
    interp.run("(define dead (spawn (lambda (c) c)))")
    with pytest.raises(DeadControllerError):
        interp.eval(
            """
            (spawn (lambda (a)
              (spawn (lambda (b)
                (spawn (lambda (c)
                  (dead (lambda (k) k))))))))
            """
        )
