#!/usr/bin/env python
"""Observability-layer benchmark: the recorder overhead gate and the
Chrome-trace schema gate.

    PYTHONPATH=src python benchmarks/bench_obs.py           # full run
    PYTHONPATH=src python benchmarks/bench_obs.py --smoke   # CI mode
    PYTHONPATH=src python benchmarks/bench_obs.py --out x.json

Three measurements:

* **Disabled overhead** — the acceptance gate CI keys on: a machine
  with a recorder attached but ``enabled=False`` must run within
  ``OVERHEAD_CEILING`` (2%) of a machine with no recorder at all, on
  both a control-free workload (fib — pays only the per-``step_n``
  recorder check) and the E9-style capture workload (pays the
  ``rec is not None and rec.enabled`` guard at every notify point).
  CPU time (``process_time``); median of order-rotated paired ratios,
  re-measured up to 3 times (see ``run_overhead`` for the noise
  model).
* **Enabled overhead** — the same workloads with recording on,
  reported (not gated): what a live trace actually costs.
* **Trace schema** — record a two-session host serving capture-heavy
  requests, export with ``to_chrome_trace()`` and run
  :func:`repro.obs.validate_chrome_trace` over it; any problem
  (non-monotonic ``ts``, unmatched B/E, negative ``dur``) fails the
  run.  Event-conservation is checked too: recorded capture/reinstate
  instants must equal the machines' stats deltas exactly.

Results merge into ``BENCH_results.json`` under the ``"obs"`` key,
preserving whatever the other drivers already wrote.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(_ROOT, "src")):
    sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.api import Interpreter  # noqa: E402
from repro.host import Host  # noqa: E402
from repro.obs import Recorder, validate_chrome_trace  # noqa: E402

#: A disabled recorder may cost at most this fraction over no recorder.
OVERHEAD_CEILING = 0.02

FIB = """
(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
"""

#: E9-style capture churn: every iteration captures a process
#: continuation and reinstates it once — the densest realistic stream
#: of notify_capture/notify_reinstate events.
CAPTURE_DEFS = """
(define (churn n)
  (if (= n 0)
      0
      (begin
        (spawn (lambda (c) (c (lambda (k) (k 1)))))
        (churn (- n 1)))))
"""

WORKLOADS = {
    # name -> (definitions, expression per size, warm-up expr,
    # smoke size, full size).  Sizes target a ~50ms timed region: big
    # enough that timer granularity is irrelevant, small enough that a
    # whole round's three back-to-back evals fit inside one drift
    # phase of a noisy runner (frequency scaling / noisy neighbours
    # change the machine's speed on a ~1s timescale).
    "fib": (FIB, "(fib {n})", "(fib 15)", 19, 21),
    "capture-churn": (CAPTURE_DEFS, "(churn {n})", "(churn 50)", 3000, 8000),
}

_CONFIG_NAMES = ("base", "disabled", "enabled")


def _timed_eval(interp: Interpreter, expr: str) -> float:
    # One prior run's garbage must not be collected inside another
    # run's timed region — at a 2% ceiling, GC pauses are the noise
    # floor.
    gc.collect()
    gc.disable()
    try:
        start = time.process_time()
        interp.eval(expr)
        return time.process_time() - start
    finally:
        gc.enable()


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _measure_workload(
    defs: str, expr: str, warm: str, rounds: int
) -> dict[str, float]:
    """Median of per-round paired ratios, order-rotated.

    Runner noise has two components: sustained speed *drift*
    (frequency scaling — percent-per-second scale, which penalises
    whichever config runs later) and one-off *spikes* (reschedules,
    which trash a single sample).  Each round therefore builds all
    three interpreters first, warms them, and times the three evals
    back-to-back so they share one drift phase; the config order
    rotates per round so residual positional bias cancels in the
    median; and the median (not the mean) of the per-round ratios
    discards the spike-hit rounds."""
    ratios: dict[str, list[float]] = {"disabled": [], "enabled": []}
    for k in range(rounds):
        disabled = Recorder(enabled=False)
        interps = {
            "base": Interpreter(record=None),
            "disabled": Interpreter(record=disabled),
            "enabled": Interpreter(record=Recorder()),
        }
        for interp in interps.values():
            interp.definitions(defs)
            interp.eval(warm)  # warm-up, untimed
        order = _CONFIG_NAMES[k % 3:] + _CONFIG_NAMES[: k % 3]
        times = {name: _timed_eval(interps[name], expr) for name in order}
        assert len(disabled) == 0, "a disabled recorder must record nothing"
        if times["base"] > 0:
            ratios["disabled"].append(times["disabled"] / times["base"])
            ratios["enabled"].append(times["enabled"] / times["base"])
    return {
        "base_s": times["base"],
        "disabled_overhead": _median(ratios["disabled"]) - 1.0,
        "enabled_overhead": _median(ratios["enabled"]) - 1.0,
    }


def run_overhead(repeats: int, smoke: bool, retries: int = 3) -> dict[str, object]:
    """The disabled-overhead gate, with bounded re-measurement.

    The per-attempt statistic (see :func:`_measure_workload`) is
    unbiased but carries a few percent of sampling noise on a busy
    runner — the same order as the 2% ceiling — so a single attempt
    can fail spuriously.  The gate therefore retries the measurement
    up to ``retries`` times and passes if *any* attempt lands under
    the ceiling: noise of that size can fail a true ~0% overhead once,
    but cannot drag a real regression (the enabled path measures
    ~+40%) under 2%.  The last attempt's numbers are what gets
    reported."""
    print(
        "\n=== recorder overhead (median paired ratio, %d rotated rounds, "
        "process_time) ===" % repeats
    )
    out: dict[str, object] = {}
    for name, (defs, template, warm, smoke_n, full_n) in WORKLOADS.items():
        expr = template.format(n=smoke_n if smoke else full_n)
        for attempt in range(1, retries + 1):
            row = _measure_workload(defs, expr, warm, repeats)
            if row["disabled_overhead"] <= OVERHEAD_CEILING:
                break
            print(
                f"  {name:14s} attempt {attempt}/{retries}: disabled "
                f"{row['disabled_overhead']:+.1%} over ceiling, remeasuring"
            )
        out[name] = {
            "expr": expr,
            "baseline_s": row["base_s"],
            "attempts": attempt,
            "disabled_overhead": round(row["disabled_overhead"], 4),
            "enabled_overhead": round(row["enabled_overhead"], 4),
        }
        print(
            f"  {name:14s} base={row['base_s'] * 1e3:8.2f}ms  "
            f"disabled {row['disabled_overhead']:+6.1%}  "
            f"enabled {row['enabled_overhead']:+6.1%}  "
            f"(attempt {attempt})"
        )
    return out


def run_trace_schema() -> dict[str, object]:
    """Record a small two-session host run; validate the export and
    event conservation (recorded instants == stats deltas)."""
    print("\n=== chrome-trace schema & event conservation ===")
    host = Host(quantum=64, record=True)
    sessions = [host.session(f"s{k}", quantum=8) for k in range(2)]
    for sess in sessions:
        sess.run(CAPTURE_DEFS)
    host.recorder.clear()  # setup traffic is not part of the trace
    handles = [host.submit(sessions[i % 2], "(churn 5)") for i in range(4)]
    host.run_until_idle()
    assert all(h.exception() is None for h in handles)

    trace = host.recorder.to_chrome_trace()
    problems = validate_chrome_trace(trace)

    counted_captures = sum(s.machine.stats["captures"] for s in sessions)
    counted_reinstates = sum(s.machine.stats["reinstatements"] for s in sessions)
    emitted_captures = len(host.recorder.events_of("capture"))
    emitted_reinstates = len(host.recorder.events_of("reinstate"))
    conserved = (
        counted_captures == emitted_captures
        and counted_reinstates == emitted_reinstates
    )
    print(
        f"  events={len(host.recorder)} problems={len(problems)} "
        f"captures {emitted_captures}/{counted_captures} "
        f"reinstates {emitted_reinstates}/{counted_reinstates}"
    )
    for problem in problems[:5]:
        print(f"    schema: {problem}")
    return {
        "events": len(host.recorder),
        "trace_events": len(trace["traceEvents"]),
        "problems": problems,
        "captures_counted": counted_captures,
        "captures_emitted": emitted_captures,
        "reinstates_counted": counted_reinstates,
        "reinstates_emitted": emitted_reinstates,
        "schema_ok": not problems,
        "conservation_ok": conserved,
    }


def _merge_out(path: str, payload: dict[str, object]) -> None:
    data: dict[str, object] = {}
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data["obs"] = payload
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2)
        handle.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=os.path.join(_ROOT, "BENCH_results.json"),
        help="result JSON path; the obs section merges into an "
        "existing file (default: BENCH_results.json)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=12,
        help="paired rounds per measurement attempt (multiple of 3 "
        "balances the config-order rotation)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: smaller workloads, same gates",
    )
    args = parser.parse_args(argv)
    repeats = max(1, args.repeats)

    overhead = run_overhead(repeats, args.smoke)
    schema = run_trace_schema()

    overheads = {
        name: row["disabled_overhead"]  # type: ignore[index]
        for name, row in overhead.items()
    }
    overhead_ok = all(v <= OVERHEAD_CEILING for v in overheads.values())
    acceptance_pass = (
        overhead_ok and bool(schema["schema_ok"]) and bool(schema["conservation_ok"])
    )

    payload = {
        "smoke": args.smoke,
        "repeats": repeats,
        "overhead": overhead,
        "trace_schema": schema,
        "acceptance": {
            "overhead_ceiling": OVERHEAD_CEILING,
            "disabled_overheads": overheads,
            "overhead_ok": overhead_ok,
            "schema_ok": schema["schema_ok"],
            "conservation_ok": schema["conservation_ok"],
            "pass": acceptance_pass,
        },
    }
    _merge_out(args.out, payload)
    print(f"\nwrote obs section to {args.out}")
    worst = max(overheads, key=lambda k: overheads[k])
    status = "pass" if acceptance_pass else "FAIL"
    print(
        f"acceptance [{status}]: worst disabled overhead "
        f"{worst}={overheads[worst]:+.1%} (ceiling {OVERHEAD_CEILING:.0%}), "
        f"schema_ok={schema['schema_ok']} "
        f"conservation_ok={schema['conservation_ok']}"
    )
    return 0 if acceptance_pass else 1


if __name__ == "__main__":
    sys.exit(main())
