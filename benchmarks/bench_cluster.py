#!/usr/bin/env python
"""Cluster-tier benchmark: snapshot codec cost and migrate-and-resume
throughput.

    PYTHONPATH=src python benchmarks/bench_cluster.py           # full run
    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke   # CI mode
    PYTHONPATH=src python benchmarks/bench_cluster.py --out x.json

Three measurements:

* **Codec cost** — snapshot blob size and encode/decode wall time for
  three session shapes (fresh prelude; warm with user state; suspended
  mid-``pcall`` with a parked future), per engine.  Idle shapes must
  re-snapshot to the *identical bytes* after a restore; the suspended
  shape carries a live handle whose wall-clock age is rebased on every
  encode, so its gate is deterministic *resume* — two independent
  restores drained on the same schedule must produce identical output
  and machine stats.
* **Round-trip overhead** — a batch of requests served by an inline
  single shard (``workers=0``) versus the same requests with a
  **snapshot + restore forced between every request** (evict after
  each).  The ratio isolates what session mobility costs on top of
  evaluation; the gate is a ceiling on that multiplier.
* **Migration churn** — sessions bounced between two live worker
  processes every request (snapshot out, rehydrate on the other
  shard), measuring end-to-end requests/s and verifying every reply.

Results merge into ``BENCH_results.json`` under the ``"cluster"`` key,
preserving whatever ``run_all.py`` and the other drivers already wrote.
``--smoke`` (CI) shrinks the workloads, runs single-repeat, and gates
only correctness (byte-identity, verified replies) — never timing, on
shared runners.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(_ROOT, "src")):
    sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.cluster import Cluster  # noqa: E402
from repro.host import Session  # noqa: E402
from repro.machine.scheduler import ENGINES  # noqa: E402

#: Forced snapshot+restore per request must cost less than this
#: multiple of straight serving (full run only; smoke reports).
ROUNDTRIP_CEILING = 8.0

WARM_PROGRAM = (
    "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))"
    "(define table (list (fib 10) (fib 12) (fib 14)))"
    '(define-syntax swap! (syntax-rules () ((_ a b) (let ((t a)) (set! a b) (set! b t)))))'
)

SUSPEND_PROGRAM = (
    "(define (loop n acc) (if (= n 0) acc (loop (- n 1) (+ acc 1))))"
    "(define parked (future (lambda () (loop 100000 0))))"
    "(display (pcall + (loop 3000 0) (loop 5000 0) (loop 4000 0)))"
)

REQUEST = "(display (fib 11))"


def _session_shapes(engine: str):
    fresh = Session(engine=engine)

    warm = Session(engine=engine)
    warm.drive(warm.submit(WARM_PROGRAM))

    suspended = Session(engine=engine, quantum=64)
    suspended.drive(suspended.submit(WARM_PROGRAM))
    suspended.submit(SUSPEND_PROGRAM)
    suspended.pump(200)  # mid-pcall, future tree in flight
    return {"fresh": fresh, "warm": warm, "suspended": suspended}


def _drain(session: Session) -> None:
    for _ in range(10_000):
        if session.idle:
            return
        session.pump(512)


def run_codec(repeats: int) -> dict[str, object]:
    out: dict[str, object] = {}
    faithful = True
    for engine in ENGINES:
        per_engine: dict[str, object] = {}
        for shape, session in _session_shapes(engine).items():
            blob = session.snapshot()
            encode_s = min(
                _timed(lambda: session.snapshot())[0] for _ in range(repeats)
            )
            decode_s, restored = min(
                (_timed(lambda: Session.restore(blob)) for _ in range(repeats)),
                key=lambda pair: pair[0],
            )
            entry: dict[str, object] = {
                "bytes": len(blob),
                "encode_ms": round(encode_s * 1e3, 3),
                "decode_ms": round(decode_s * 1e3, 3),
            }
            if shape == "suspended":
                # A live handle carries a wall-clock age rebased on
                # every encode, so bytes cannot be time-stable; the
                # guarantee here is deterministic resume.
                twin = Session.restore(blob)
                _drain(restored)
                _drain(twin)
                ok = (
                    restored.output_text() == twin.output_text()
                    and restored.machine.stats == twin.machine.stats
                )
                entry["resume_deterministic"] = ok
            else:
                ok = restored.snapshot() == blob
                entry["restored_snapshot_identical"] = ok
            faithful = faithful and ok
            per_engine[shape] = entry
        out[engine] = per_engine
    out["all_shapes_faithful"] = faithful
    return out


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def run_roundtrip_overhead(requests: int, repeats: int) -> dict[str, object]:
    def straight() -> None:
        with Cluster(workers=0) as c:
            c.submit("s", WARM_PROGRAM)
            for _ in range(requests):
                assert c.submit("s", REQUEST).ok

    def bounced() -> None:
        with Cluster(workers=0) as c:
            c.submit("s", WARM_PROGRAM)
            c.evict("s")
            for _ in range(requests):
                assert c.submit("s", REQUEST).ok  # rehydrates from the store
                c.evict("s")  # forces the next request to restore

    straight_s = min(_timed(straight)[0] for _ in range(repeats))
    bounced_s = min(_timed(bounced)[0] for _ in range(repeats))
    ratio = bounced_s / straight_s if straight_s else float("inf")
    return {
        "requests": requests,
        "straight_s": round(straight_s, 4),
        "bounced_s": round(bounced_s, 4),
        "bounce_over_straight": round(ratio, 2),
    }


def run_migration_churn(requests: int) -> dict[str, object]:
    verified = 0
    t0 = time.perf_counter()
    with Cluster(workers=2) as c:
        first = c.submit("churner", WARM_PROGRAM + "(define hits 0)")
        shard = first.shard
        for i in range(requests):
            shard = (shard + 1) % 2
            c.migrate("churner", shard)
            r = c.submit("churner", "(set! hits (+ hits 1)) hits")
            if r.ok and r.value == str(i + 1) and r.shard == shard:
                verified += 1
        stats = c.stats
        hist = c.histograms()
    elapsed = time.perf_counter() - t0
    return {
        "requests": requests,
        "verified": verified,
        "all_verified": verified == requests,
        "elapsed_s": round(elapsed, 3),
        "requests_per_s": round(requests / elapsed, 2) if elapsed else None,
        "migrations": stats["cluster.migrations"],
        "restores": stats["cluster.restores"],
        "snapshot_bytes_max": hist["cluster.snapshot_bytes"]["max"],
    }


def _merge_out(path: str, payload: dict[str, object]) -> None:
    data: dict[str, object] = {}
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data["cluster"] = payload
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2)
        handle.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=os.path.join(_ROOT, "BENCH_results.json"),
        help="result JSON path; the cluster section merges into an "
        "existing file (default: BENCH_results.json)",
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: shrunk workloads, correctness gated, timing "
        "reported but never gated",
    )
    args = parser.parse_args(argv)
    repeats = 1 if args.smoke else max(1, args.repeats)
    requests = 5 if args.smoke else 30
    churn = 4 if args.smoke else 20

    codec = run_codec(repeats)
    roundtrip = run_roundtrip_overhead(requests, repeats)
    migration = run_migration_churn(churn)

    codec_ok = bool(codec["all_shapes_faithful"])
    churn_ok = bool(migration["all_verified"])
    ratio = float(roundtrip["bounce_over_straight"])  # type: ignore[arg-type]
    ratio_ok = ratio <= ROUNDTRIP_CEILING
    if args.smoke:
        acceptance_pass = codec_ok and churn_ok
    else:
        acceptance_pass = codec_ok and churn_ok and ratio_ok

    payload = {
        "smoke": args.smoke,
        "repeats": repeats,
        "codec": codec,
        "roundtrip_overhead": roundtrip,
        "migration_churn": migration,
        "acceptance": {
            "roundtrip_ceiling": ROUNDTRIP_CEILING,
            "codec_identity_ok": codec_ok,
            "migration_verified_ok": churn_ok,
            "roundtrip_ratio": ratio,
            "roundtrip_ok": ratio_ok,
            "pass": acceptance_pass,
        },
    }
    _merge_out(args.out, payload)
    print(f"\nwrote cluster section to {args.out}")
    status = "pass" if acceptance_pass else "FAIL"
    print(
        f"acceptance [{status}]: codec_identity_ok={codec_ok} "
        f"migration_verified_ok={churn_ok} "
        f"bounce/straight={ratio:.2f}x (ceiling {ROUNDTRIP_CEILING}x"
        + (", not gated in --smoke" if args.smoke else "")
        + ")"
    )
    return 0 if acceptance_pass else 1


if __name__ == "__main__":
    sys.exit(main())
