"""E6 — Section 5's first-true / parallel-or.

Claims reproduced:

* the answer arrives in ~min(branch costs), not the sum: the loser is
  abandoned the moment the winner exits;
* symmetric: whichever side is fast wins at the same cost;
* with both branches false, cost is ~the sum (nothing to abort early).
"""

from __future__ import annotations

import pytest

from repro import Interpreter


def fresh() -> Interpreter:
    interp = Interpreter(quantum=4)
    interp.load_paper_example("parallel-or")
    interp.run(
        """
        (define (work n v) (if (= n 0) v (work (- n 1) v)))
        """
    )
    return interp


def steps(expr: str) -> int:
    interp = fresh()
    before = interp.machine.steps_total
    interp.eval(expr)
    return interp.machine.steps_total - before


FAST, SLOW = 20, 2000


def test_e6_shape_winner_abandons_loser():
    fast_first = steps(f"(parallel-or (work {FAST} 'yes) (work {SLOW} 'also))")
    fast_second = steps(f"(parallel-or (work {SLOW} 'also) (work {FAST} 'yes))")
    both_false = steps(f"(parallel-or (work {SLOW} #f) (work {SLOW} #f))")
    slow_alone = steps(f"(work {SLOW} 'x)")
    print("\nE6  parallel-or (machine steps; fast =", FAST, ", slow =", SLOW, ")")
    print(f"  fast branch first:   {fast_first}")
    print(f"  fast branch second:  {fast_second}")
    print(f"  both false:          {both_false}")
    print(f"  slow branch alone:   {slow_alone}")
    # Winner time ~ min: far below one slow traversal.
    assert fast_first < 0.5 * slow_alone
    assert fast_second < 0.5 * slow_alone
    # Position symmetry (within scheduling skew).
    assert abs(fast_first - fast_second) < 0.25 * max(fast_first, fast_second)
    # Both-false pays for both branches.
    assert both_false > 1.5 * slow_alone


def test_e6_result_correctness_under_asymmetry():
    interp = fresh()
    assert interp.eval(f"(parallel-or (work {SLOW} #f) (work {FAST} 7))") == 7
    assert interp.eval(f"(parallel-or (work {FAST} 8) (work {SLOW} #f))") == 8
    assert interp.eval(f"(parallel-or (work {FAST} #f) (work {FAST} #f))") is False


@pytest.mark.parametrize(
    "scenario",
    ["fast-wins-left", "fast-wins-right", "both-false"],
)
def test_e6_parallel_or_timing(benchmark, scenario):
    interp = fresh()
    if scenario == "fast-wins-left":
        source = f"(parallel-or (work {FAST} 'v) (work {SLOW} 'w))"
    elif scenario == "fast-wins-right":
        source = f"(parallel-or (work {SLOW} 'w) (work {FAST} 'v))"
    else:
        source = f"(parallel-or (work {SLOW} #f) (work {SLOW} #f))"

    benchmark(lambda: interp.eval(source))
