#!/usr/bin/env python
"""Host-runtime benchmark: multi-session throughput, fairness and the
deadline-enforcement divergence gate.

    PYTHONPATH=src python benchmarks/bench_host.py           # full run
    PYTHONPATH=src python benchmarks/bench_host.py --smoke   # CI mode
    PYTHONPATH=src python benchmarks/bench_host.py --out x.json

Three measurements:

* **Throughput** — the same batch of capture-heavy requests (the E1
  product workload and ``sum-of-products``) served two ways: one
  serial :class:`Interpreter` evaluating them back to back, and a
  :class:`Host` multiplexing them across 8 sessions tick by tick.
  Multiplexing costs context rotation, so the gate is an *overhead
  ceiling*: host throughput must stay within 15% of serial
  (``host_over_serial ≥ 0.85``).  CPU time (``process_time``),
  best-of-N, for runner stability.
* **Fairness** — 8 identical sessions under each host policy; reports
  the per-session served-steps spread (max/min) and each session's
  completion tick.  Round-robin must finish identical workloads on the
  same tick.
* **Deadline divergence** — the acceptance gate CI keys on: a doomed
  request with a per-request step budget must fail with
  :class:`StepBudgetExceeded` at *exactly* the budget — same step
  count, same exception — across every engine × task policy × machine
  quantum, and a wall-clock deadline of 0 must run *zero* steps in
  every configuration.  Any spread between configurations is a
  divergence and fails the run.

``--smoke`` (CI) runs the divergence matrix plus a single-repeat
throughput pass whose ratio is reported but not gated (shared runners);
the full run gates the 0.85× floor too.  Results merge into
``BENCH_results.json`` under the ``"host"`` key, preserving whatever
``run_all.py`` already wrote.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(_ROOT, "src")):
    sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.api import Interpreter  # noqa: E402
from repro.errors import StepBudgetExceeded  # noqa: E402
from repro.host import Host, Session  # noqa: E402
from repro.machine.scheduler import ENGINES  # noqa: E402

#: Host throughput must stay within 15% of the serial baseline.
THROUGHPUT_FLOOR = 0.85

HOST_POLICIES = ("round-robin", "deficit")
DIVERGENCE_POLICIES = ("serial", "round-robin")
DIVERGENCE_QUANTA = (1, 16, 4096)
DOOMED_BUDGET = 2_000

N_SESSIONS = 8
REQUESTS_PER_SESSION = 4

_PRODUCT = "(" + " ".join("2" for _ in range(120)) + ")"

#: (paper example to preload, request expression) — capture-heavy on
#: purpose: suspended trees with captures are what the host suspends
#: and resumes between ticks.
WORKLOADS = [
    ("product-callcc", f"(product '{_PRODUCT})"),
    ("sum-of-products", "(sum-of-products '(1 2 3 4) '(5 6 7 8))"),
]

LOOP = "(define (loop n) (loop (+ n 1)))"


def _requests() -> list[tuple[str, str]]:
    reqs = []
    for i in range(N_SESSIONS * REQUESTS_PER_SESSION):
        reqs.append(WORKLOADS[i % len(WORKLOADS)])
    return reqs


def _time_serial(engine: str, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        interp = Interpreter(engine=engine)
        for example in {w[0] for w in WORKLOADS}:
            interp.load_paper_example(example)
        reqs = _requests()
        start = time.process_time()
        for _, expr in reqs:
            interp.eval(expr)
        best = min(best, time.process_time() - start)
    return best


def _time_host(engine: str, policy: str, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        host = Host(policy=policy, quantum=512)
        sessions = []
        for k in range(N_SESSIONS):
            sess = host.session(f"s{k}", engine=engine)
            for example in {w[0] for w in WORKLOADS}:
                sess.load_paper_example(example)
            sessions.append(sess)
        reqs = _requests()
        start = time.process_time()
        handles = [
            host.submit(sessions[i % N_SESSIONS], expr)
            for i, (_, expr) in enumerate(reqs)
        ]
        host.run_until_idle()
        elapsed = time.process_time() - start
        assert all(h.exception() is None for h in handles)
        best = min(best, elapsed)
    return best


def run_throughput(repeats: int) -> dict[str, object]:
    print("\n=== host throughput vs serial (8 sessions, capture-heavy) ===")
    out: dict[str, object] = {}
    for engine in ENGINES:
        serial_s = _time_serial(engine, repeats)
        row: dict[str, object] = {"serial_s": serial_s}
        for policy in HOST_POLICIES:
            host_s = _time_host(engine, policy, repeats)
            ratio = serial_s / host_s if host_s else float("inf")
            row[f"host_{policy}_s"] = host_s
            row[f"host_over_serial_{policy}"] = round(ratio, 3)
            print(
                f"  {engine:9s} {policy:12s} serial={serial_s * 1e3:8.2f}ms  "
                f"host={host_s * 1e3:8.2f}ms  host/serial={ratio:5.2f}x"
            )
        out[engine] = row
    return out


def run_fairness() -> dict[str, object]:
    print("\n=== fairness (8 identical sessions) ===")
    out: dict[str, object] = {}
    for policy in HOST_POLICIES:
        host = Host(policy=policy, quantum=256)
        handles = []
        for k in range(N_SESSIONS):
            sess = host.session(f"s{k}", prelude=False)
            handles.append(
                host.submit(
                    sess, "(let loop ([i 0]) (if (= i 4000) i (loop (+ i 1))))"
                )
            )
        finish_tick: dict[int, int] = {}
        tick = 0
        while not host.idle:
            host.tick()
            tick += 1
            for k, handle in enumerate(handles):
                if handle.done() and k not in finish_tick:
                    finish_tick[k] = tick
        served = [sess.metrics.steps_served for sess in host]
        spread = max(served) / min(served) if min(served) else float("inf")
        same_tick = len(set(finish_tick.values())) == 1
        out[policy] = {
            "ticks": tick,
            "steps_spread": round(spread, 4),
            "finish_ticks": sorted(set(finish_tick.values())),
            "identical_finish_tick": same_tick,
        }
        print(
            f"  {policy:12s} ticks={tick:4d} spread={spread:.3f}x "
            f"finish-ticks={sorted(set(finish_tick.values()))}"
        )
    return out


def run_divergence() -> dict[str, object]:
    """The gate: budget enforcement must be bit-identical across the
    engine × policy × quantum matrix."""
    print("\n=== deadline-enforcement divergence (engines × policies × quanta) ===")
    budget_cells: dict[str, object] = {}
    zero_cells: dict[str, object] = {}
    for engine in ENGINES:
        for policy in DIVERGENCE_POLICIES:
            for quantum in DIVERGENCE_QUANTA:
                label = f"{engine}/{policy}/q{quantum}"
                session = Session(engine=engine, policy=policy, quantum=quantum)
                session.run(LOOP)
                doomed = session.submit("(loop 0)", max_steps=DOOMED_BUDGET)
                while not doomed.done():
                    session.pump(777)  # deliberately misaligned chunks
                exc = doomed.exception()
                budget_cells[label] = (
                    f"{type(exc).__name__}@{doomed.steps}"
                    if isinstance(exc, StepBudgetExceeded)
                    else f"UNEXPECTED:{exc!r}"
                )
                instant = session.submit("(loop 0)", deadline=0.0)
                session.pump(1 << 20)
                zero_cells[label] = f"{type(instant.exception()).__name__}@{instant.steps}"
                # The session must survive both misses intact:
                if session.eval("(+ 40 2)") != 42:
                    budget_cells[label] = "SESSION CORRUPTED"
    budget_agree = len(set(budget_cells.values())) == 1 and all(
        v == f"StepBudgetExceeded@{DOOMED_BUDGET}" for v in budget_cells.values()
    )
    zero_agree = len(set(zero_cells.values())) == 1 and all(
        v == "DeadlineExceeded@0" for v in zero_cells.values()
    )
    print(f"  step-budget cells : {sorted(set(budget_cells.values()))}")
    print(f"  zero-deadline cells: {sorted(set(zero_cells.values()))}")
    marker = "ok " if budget_agree and zero_agree else "DIVERGED"
    print(f"  [{marker}] {len(budget_cells)} configurations each")
    return {
        "budget": budget_cells,
        "zero_deadline": zero_cells,
        "budget_agree": budget_agree,
        "zero_deadline_agree": zero_agree,
        "agree": budget_agree and zero_agree,
    }


def _merge_out(path: str, host_payload: dict[str, object]) -> None:
    data: dict[str, object] = {}
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data["host"] = host_payload
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2)
        handle.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=os.path.join(_ROOT, "BENCH_results.json"),
        help="result JSON path; the host section merges into an "
        "existing run_all.py file (default: BENCH_results.json)",
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: divergence gated, single-repeat throughput "
        "reported but not gated (shared runners)",
    )
    args = parser.parse_args(argv)
    repeats = 1 if args.smoke else max(1, args.repeats)

    divergence = run_divergence()
    throughput = run_throughput(repeats)
    fairness = run_fairness()

    ratios = {
        f"{engine}/{policy}": throughput[engine][f"host_over_serial_{policy}"]  # type: ignore[index]
        for engine in ENGINES
        for policy in HOST_POLICIES
    }
    throughput_ok = all(r >= THROUGHPUT_FLOOR for r in ratios.values())
    fairness_ok = bool(fairness["round-robin"]["identical_finish_tick"])  # type: ignore[index]
    if args.smoke:
        acceptance_pass = bool(divergence["agree"]) and fairness_ok
    else:
        acceptance_pass = bool(divergence["agree"]) and fairness_ok and throughput_ok

    payload = {
        "sessions": N_SESSIONS,
        "requests_per_session": REQUESTS_PER_SESSION,
        "repeats": repeats,
        "smoke": args.smoke,
        "throughput": throughput,
        "fairness": fairness,
        "divergence": divergence,
        "acceptance": {
            "throughput_floor": THROUGHPUT_FLOOR,
            "host_over_serial": ratios,
            "throughput_ok": throughput_ok,
            "fairness_ok": fairness_ok,
            "divergence_ok": divergence["agree"],
            "pass": acceptance_pass,
        },
    }
    _merge_out(args.out, payload)
    print(f"\nwrote host section to {args.out}")
    status = "pass" if acceptance_pass else "FAIL"
    worst = min(ratios, key=lambda k: ratios[k])
    print(
        f"acceptance [{status}]: divergence_ok={divergence['agree']} "
        f"fairness_ok={fairness_ok} worst host/serial {worst}={ratios[worst]:.2f}x "
        f"(floor {THROUGHPUT_FLOOR}x"
        + (", not gated in --smoke" if args.smoke else "")
        + ")"
    )
    return 0 if acceptance_pass else 1


if __name__ == "__main__":
    sys.exit(main())
