#!/usr/bin/env python
"""One-shot benchmark driver: every experiment plus the engine A/B.

    PYTHONPATH=src python benchmarks/run_all.py            # full run
    PYTHONPATH=src python benchmarks/run_all.py --fast     # 1 repeat
    PYTHONPATH=src python benchmarks/run_all.py --smoke    # CI smoke
    PYTHONPATH=src python benchmarks/run_all.py --out x.json

Runs the E1–E10 experiment suite (shape assertions, timed), then the
four-way engine A/B: each workload under ``engine="dict"`` (the
original dict-chain interpreter), ``engine="resolved"`` (lexical
addressing, slot ribs, interned global cells) and ``engine="compiled"``
(resolved IR closure-compiled to code thunks) — all three driven by
the unbatched per-step loop for cost fidelity to the pre-batching
engines — plus ``batched`` (the compiled pipeline under the
quantum-batched register run loop, the default engine), best-of-N
CPU time each, plus the speedup ratios.  Every A/B workload and a
set of control-operator probes are also cross-checked for divergence
across engines × scheduler policies × batch quanta: every
configuration must produce identical values.  Everything lands
machine-readable in ``BENCH_results.json`` at the repo root, stamped
with the engine list and the git SHA.

Exit status is non-zero when an experiment shape assertion fails, any
configuration diverges on any probe, a gated speedup ratio
(resolved-over-dict and compiled-over-resolved on the variable-heavy
E1/E9 workloads) falls below the 1.3× acceptance floor, or the
run-loop ratio (batched-over-compiled on the call-heavy loop
workloads) falls below its 1.25× floor.

``--smoke`` is the CI mode: best-of-3, no experiment suite, and the
exit status reflects divergence plus the run-loop floor (timing is CPU
time, so the batched-over-compiled ratio is stable even on shared
runners; the cross-engine r/d and c/r ratios are reported ungated).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(_ROOT, "src")):
    sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro import experiments  # noqa: E402
from repro.api import Interpreter  # noqa: E402
from repro.machine.scheduler import ENGINES  # noqa: E402

RATIO_FLOOR = 1.3

#: The run-loop A/B (PR 3): the quantum-batched register loop vs the
#: unbatched per-step driver, same compiled pipeline.  Gated on the
#: call-heavy loop workloads; the capture-heavy pair must not regress
#: (batched within 5% of unbatched).
BATCH_RATIO_FLOOR = 1.25
BATCH_GATED = ("fib-18", "tak-12-8-4", "mutual-recursion")
BATCH_NO_REGRESS = ("e1-product", "e9-deep-capture")
BATCH_REGRESS_FLOOR = 0.95

#: Divergence-check matrix: batching must be unobservable at every
#: batch size.
DIVERGENCE_QUANTA = (1, 16, 4096)
DIVERGENCE_POLICIES = ("serial", "round-robin", "random")

_SSIZE = 400  # E1 product list length


def _product_list() -> str:
    return "(" + " ".join("2" for _ in range(_SSIZE)) + ")"


#: A/B workloads: name -> (setup-source | "@example:<name>", timed expression).
#: ``e1-product`` and ``e9-deep-capture`` are the acceptance-gated
#: variable-heavy pair; the rest are context.
AB_WORKLOADS: dict[str, tuple[str, str]] = {
    "e1-product": ("@example:product-callcc", f"(product '{_product_list()})"),
    "e9-deep-capture": (
        """
        (define (build n)
          (if (= n 0)
              (call/cc (lambda (k) 0))
              (+ 1 (build (- n 1)))))
        """,
        "(build 2000)",
    ),
    "fib-18": (
        "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
        "(fib 18)",
    ),
    "tak-12-8-4": (
        """
        (define (tak x y z)
          (if (not (< y x))
              z
              (tak (tak (- x 1) y z)
                   (tak (- y 1) z x)
                   (tak (- z 1) x y))))
        """,
        "(tak 12 8 4)",
    ),
    "mutual-recursion": (
        """
        (define (even2? n) (if (= n 0) #t (odd2? (- n 1))))
        (define (odd2? n) (if (= n 0) #f (even2? (- n 1))))
        """,
        "(even2? 20000)",
    ),
    "list-ops": (
        "",
        "(length (reverse (append (iota 300) (map add1 (iota 300)))))",
    ),
}

#: Workloads whose ratios are gated by the acceptance floor.
GATED = ("e1-product", "e9-deep-capture")

#: Control-operator probes for the engine-divergence check (values must
#: be identical under all three engines; these exercise capture,
#: reinstatement, forks, delimited control and futures — the paths a
#: compiler bug would most plausibly corrupt).
DIVERGENCE_PROBES: dict[str, tuple[str, str]] = {
    "callcc-exit": (
        "@example:product-callcc",
        "(product '(1 2 3 0 5 6))",
    ),
    "spawn-compose": (
        "",
        "(+ 1 (spawn (lambda (c) (+ 2 (c (lambda (k) (+ 10 (k 100))))))))",
    ),
    "spawn-multi-shot": (
        """
        (define saved #f)
        (define (grab c) (c (lambda (k) (set! saved k) 0)))
        """,
        "(let ((r1 (spawn (lambda (c) (+ 1 (grab c)))))) (list r1 (saved 10) (saved 20)))",
    ),
    "pcall-fork": ("", "(pcall + (pcall * 2 3) (pcall - 10 4) 100)"),
    "prompt-F": (
        "",
        "(+ 1 (prompt (+ 10 (F (lambda (k) (k (k 100)))))))",
    ),
    "futures": (
        "",
        "(let ((p (future (lambda () (* 6 7))))) (+ (touch p) 1))",
    ),
    "set-through-capture": (
        """
        (define counter 0)
        (define k2 #f)
        """,
        """
        (begin
          (prompt (begin (F (lambda (k) (set! k2 k) 0))
                         (set! counter (+ counter 1))
                         counter))
          (k2 0)
          (k2 0)
          counter)
        """,
    ),
}


def _fresh(
    engine: str,
    name: str,
    workloads: dict[str, tuple[str, str]],
    *,
    batched: bool = True,
    policy: str = "serial",
    quantum: int = 16,
    seed: int | None = None,
) -> Interpreter:
    setup, _ = workloads[name]
    interp = Interpreter(
        policy=policy, engine=engine, batched=batched, quantum=quantum, seed=seed
    )
    if setup.startswith("@example:"):
        interp.load_paper_example(setup[len("@example:") :])
    elif setup:
        interp.run(setup)
    return interp


def _time_workload(name: str, engine: str, repeats: int, batched: bool) -> float:
    # CPU time, not wall clock: the workloads are single-threaded and
    # allocation-bound, and on a shared box wall-clock best-of-N still
    # swings by 30-40% run to run, which is far larger than the effects
    # the A/B gates measure.  process_time is stable to a few percent.
    _, expr = AB_WORKLOADS[name]
    best = float("inf")
    for _ in range(repeats):
        interp = _fresh(engine, name, AB_WORKLOADS, batched=batched)
        start = time.process_time()
        interp.eval(expr)
        best = min(best, time.process_time() - start)
    return best


def run_ab(repeats: int) -> dict[str, dict[str, float]]:
    """The engine A/B.

    The ``dict``/``resolved``/``compiled`` columns run the unbatched
    per-step driver (``batched=False``), keeping them cost-faithful to
    the pre-batching engines so the resolver and compiler ratios stay
    comparable across PRs; the ``batched`` column is the default
    quantum-batched register loop on the compiled pipeline (PR 3's
    run-loop A/B is ``batched`` vs ``compiled``).  The ``codegen``
    column is engine #4 — emitted Python source through the ir-hash
    code cache — on the same batched loop, reported as g/b against the
    batched baseline (its gated floor lives in ``bench_codegen.py``).
    """
    print(
        "\n=== A/B  dict chains vs resolved (slot ribs) vs compiled (code "
        "thunks) vs batched (register run loop) vs codegen (emitted "
        "Python) ==="
    )
    results: dict[str, dict[str, float]] = {}
    for name in AB_WORKLOADS:
        times = {
            engine: _time_workload(name, engine, repeats, batched=False)
            for engine in ENGINES
            if engine != "codegen"  # codegen's column is the batched loop
        }
        times["batched"] = _time_workload(name, "compiled", repeats, batched=True)
        times["codegen"] = _time_workload(name, "codegen", repeats, batched=True)
        resolved_vs_dict = (
            times["dict"] / times["resolved"] if times["resolved"] else float("inf")
        )
        compiled_vs_resolved = (
            times["resolved"] / times["compiled"] if times["compiled"] else float("inf")
        )
        batched_vs_compiled = (
            times["compiled"] / times["batched"] if times["batched"] else float("inf")
        )
        codegen_vs_batched = (
            times["batched"] / times["codegen"] if times["codegen"] else float("inf")
        )
        gate = "  [gated ≥%.1fx]" % RATIO_FLOOR if name in GATED else ""
        if name in BATCH_GATED:
            gate += "  [b/c gated ≥%.2fx]" % BATCH_RATIO_FLOOR
        print(
            f"  {name:18s} dict={times['dict'] * 1e3:8.2f}ms  "
            f"resolved={times['resolved'] * 1e3:8.2f}ms  "
            f"compiled={times['compiled'] * 1e3:8.2f}ms  "
            f"batched={times['batched'] * 1e3:8.2f}ms  "
            f"codegen={times['codegen'] * 1e3:8.2f}ms  "
            f"r/d={resolved_vs_dict:5.2f}x  c/r={compiled_vs_resolved:5.2f}x  "
            f"b/c={batched_vs_compiled:5.2f}x  "
            f"g/b={codegen_vs_batched:5.2f}x{gate}"
        )
        results[name] = {
            "dict_s": times["dict"],
            "resolved_s": times["resolved"],
            "compiled_s": times["compiled"],
            "batched_s": times["batched"],
            "codegen_s": times["codegen"],
            "resolved_over_dict": round(resolved_vs_dict, 3),
            "compiled_over_resolved": round(compiled_vs_resolved, 3),
            "batched_over_compiled": round(batched_vs_compiled, 3),
            "codegen_over_batched": round(codegen_vs_batched, 3),
        }
    return results


def run_divergence() -> dict[str, dict[str, object]]:
    """Evaluate every A/B workload and control probe across the full
    configuration matrix — engine × policy × quantum (batched), plus
    the unbatched driver on every engine — and record the values and
    whether they all agree.  Batching must be unobservable: the same
    value at every batch size, with and without the register loop."""
    print("\n=== engine divergence check (engines × policies × quanta) ===")
    results: dict[str, dict[str, object]] = {}
    configs: list[tuple[str, dict[str, object]]] = []
    for engine in ENGINES:
        for policy in DIVERGENCE_POLICIES:
            for quantum in DIVERGENCE_QUANTA:
                configs.append(
                    (
                        f"{engine}/{policy}/q{quantum}",
                        dict(engine=engine, policy=policy, quantum=quantum,
                             batched=True),
                    )
                )
        configs.append(
            (
                f"{engine}/round-robin/q16/unbatched",
                dict(engine=engine, policy="round-robin", quantum=16,
                     batched=False),
            )
        )
    # The timed workloads are big; give them the per-engine sweep with
    # and without batching.  The control probes are small: they get the
    # full engine × policy × quantum matrix.
    workload_configs = [
        (label, config)
        for label, config in configs
        if config["policy"] == "serial" and config["quantum"] == 16
        or not config["batched"]
    ]
    suites = (AB_WORKLOADS, DIVERGENCE_PROBES)
    for suite in suites:
        for name in suite:
            _, expr = suite[name]
            values: dict[str, str] = {}
            matrix = configs if suite is DIVERGENCE_PROBES else workload_configs
            for label, config in matrix:
                try:
                    interp = _fresh(
                        config["engine"],  # type: ignore[arg-type]
                        name,
                        suite,
                        batched=config["batched"],  # type: ignore[arg-type]
                        policy=config["policy"],  # type: ignore[arg-type]
                        quantum=config["quantum"],  # type: ignore[arg-type]
                        seed=11,
                    )
                    values[label] = interp.eval_to_string(expr)
                except Exception as exc:  # noqa: BLE001 - recorded, not hidden
                    values[label] = f"<{type(exc).__name__}: {exc}>"
            agree = len(set(values.values())) == 1
            marker = "ok " if agree else "DIVERGED"
            print(f"  [{marker}] {name:22s} {values['compiled/serial/q16']}")
            results[name] = {"values": values, "agree": agree}
    return results


def run_experiments() -> dict[str, dict[str, object]]:
    report = experiments.Report()
    timed: dict[str, dict[str, object]] = {}
    for runner in experiments.RUNNERS:
        failures_before = len(report.failures)
        start = time.perf_counter()
        runner(report)
        timed[runner.__name__] = {
            "seconds": round(time.perf_counter() - start, 4),
            "ok": len(report.failures) == failures_before,
        }
    if report.failures:
        print(f"\n{len(report.failures)} experiment shape assertion(s) FAILED")
    return timed


def run_vm_profile() -> dict[str, dict[str, int]]:
    """Run a loop workload and a capture workload on a profiling
    machine and record the VM run-loop counters — quanta executed,
    spill causes, and per-step write-backs the batching avoided."""
    print("\n=== VM run-loop profile (batched, serial) ===")
    out: dict[str, dict[str, int]] = {}
    for name in ("fib-18", "e9-deep-capture"):
        setup, expr = AB_WORKLOADS[name]
        interp = Interpreter(policy="serial", engine="compiled", profile=True)
        if setup.startswith("@example:"):
            interp.load_paper_example(setup[len("@example:") :])
        elif setup:
            interp.run(setup)
        interp.eval(expr)
        counters = dict(interp.machine.vm_stats)
        out[name] = counters
        spills = sum(v for k, v in counters.items() if k.startswith("vm_spill_"))
        print(
            f"  {name:18s} quanta={counters['vm_quanta']:<6d} "
            f"steps={counters['vm_quantum_steps']:<8d} spills={spills:<6d} "
            f"write-backs avoided={counters['vm_allocations_avoided']}"
        )
    return out


def _git_sha() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=_ROOT,
                capture_output=True,
                text=True,
                check=True,
                timeout=10,
            ).stdout.strip()
            or "unknown"
        )
    except Exception:  # noqa: BLE001 - best-effort stamp
        return "unknown"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=os.path.join(_ROOT, "BENCH_results.json"),
        help="result JSON path (default: BENCH_results.json at repo root)",
    )
    parser.add_argument("--repeats", type=int, default=3, help="A/B best-of-N")
    parser.add_argument(
        "--fast", action="store_true", help="single repeat (quick local run)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: best-of-3, skip the experiment suite, exit status "
        "keyed to engine divergence plus the batched-loop floor (the "
        "legacy r/d and c/r ratios are reported but not gated)",
    )
    args = parser.parse_args(argv)
    if args.fast:
        repeats = 1
    elif args.smoke:
        repeats = 3
    else:
        repeats = max(1, args.repeats)

    experiment_results = {} if args.smoke else run_experiments()
    ab_results = run_ab(repeats)
    divergence_results = run_divergence()

    gated = {
        name: {
            "resolved_over_dict": ab_results[name]["resolved_over_dict"],
            "compiled_over_resolved": ab_results[name]["compiled_over_resolved"],
        }
        for name in GATED
    }
    ratios_ok = all(
        ratio >= RATIO_FLOOR
        for ratios in gated.values()
        for ratio in ratios.values()
    )
    batched_gated = {
        name: ab_results[name]["batched_over_compiled"] for name in BATCH_GATED
    }
    batched_no_regress = {
        name: ab_results[name]["batched_over_compiled"] for name in BATCH_NO_REGRESS
    }
    batched_ok = all(
        ratio >= BATCH_RATIO_FLOOR for ratio in batched_gated.values()
    ) and all(
        ratio >= BATCH_REGRESS_FLOOR for ratio in batched_no_regress.values()
    )
    engines_agree = all(entry["agree"] for entry in divergence_results.values())
    experiments_ok = all(entry["ok"] for entry in experiment_results.values())
    if args.smoke:
        # CI gates divergence and the run-loop floor; the cross-engine
        # r/d and c/r ratios depend on the runner too much to gate.
        acceptance_pass = engines_agree and batched_ok
    else:
        acceptance_pass = ratios_ok and batched_ok and engines_agree and experiments_ok

    payload = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "repeats": repeats,
            "engines": list(ENGINES),
            "git_sha": _git_sha(),
            "smoke": args.smoke,
        },
        "experiments": experiment_results,
        "ab": ab_results,
        "divergence": divergence_results,
        "vm_profile": run_vm_profile(),
        "acceptance": {
            "ratio_floor": RATIO_FLOOR,
            "gated_ratios": gated,
            "batch_ratio_floor": BATCH_RATIO_FLOOR,
            "batch_regress_floor": BATCH_REGRESS_FLOOR,
            "batched_gated": batched_gated,
            "batched_no_regress": batched_no_regress,
            "engines_agree": engines_agree,
            "pass": acceptance_pass,
        },
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    print(f"\nwrote {args.out}")
    status = "pass" if acceptance_pass else "FAIL"
    print(
        f"acceptance [{status}]: "
        + "  ".join(
            f"{name} r/d={ratios['resolved_over_dict']:.2f}x "
            f"c/r={ratios['compiled_over_resolved']:.2f}x"
            for name, ratios in gated.items()
        )
        + "  "
        + "  ".join(
            f"{name} b/c={ratio:.2f}x" for name, ratio in batched_gated.items()
        )
        + f"  (floors {RATIO_FLOOR}x, b/c {BATCH_RATIO_FLOOR}x"
        + (", ratios not gated in --smoke" if args.smoke else "")
        + f")  engines_agree={engines_agree}"
    )
    return 0 if acceptance_pass else 1


if __name__ == "__main__":
    sys.exit(main())
