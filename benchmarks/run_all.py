#!/usr/bin/env python
"""One-shot benchmark driver: every experiment plus the resolver A/B.

    PYTHONPATH=src python benchmarks/run_all.py            # full run
    PYTHONPATH=src python benchmarks/run_all.py --fast     # 1 repeat
    PYTHONPATH=src python benchmarks/run_all.py --out x.json

Runs the E1–E10 experiment suite (shape assertions, timed), then the
interpreter A/B: each workload under ``resolve=True`` (lexical
addressing, slot ribs, interned global cells) and ``resolve=False``
(the original dict-chain interpreter), best-of-N wall time each, and
the speedup ratio.  Everything lands machine-readable in
``BENCH_results.json`` at the repo root.

Exit status is non-zero when an experiment shape assertion fails or
the resolver speedup on the variable-heavy E1/E9 workloads falls
below the 1.3× acceptance floor.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(_ROOT, "src")):
    sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro import experiments  # noqa: E402
from repro.api import Interpreter  # noqa: E402

RATIO_FLOOR = 1.3
_SSIZE = 400  # E1 product list length


def _product_list() -> str:
    return "(" + " ".join("2" for _ in range(_SSIZE)) + ")"


#: A/B workloads: name -> (setup-source | "@example:<name>", timed expression).
#: ``e1-product`` and ``e9-deep-capture`` are the acceptance-gated
#: variable-heavy pair; the rest are context.
AB_WORKLOADS: dict[str, tuple[str, str]] = {
    "e1-product": ("@example:product-callcc", f"(product '{_product_list()})"),
    "e9-deep-capture": (
        """
        (define (build n)
          (if (= n 0)
              (call/cc (lambda (k) 0))
              (+ 1 (build (- n 1)))))
        """,
        "(build 2000)",
    ),
    "fib-18": (
        "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
        "(fib 18)",
    ),
    "tak-12-8-4": (
        """
        (define (tak x y z)
          (if (not (< y x))
              z
              (tak (tak (- x 1) y z)
                   (tak (- y 1) z x)
                   (tak (- z 1) x y))))
        """,
        "(tak 12 8 4)",
    ),
    "mutual-recursion": (
        """
        (define (even2? n) (if (= n 0) #t (odd2? (- n 1))))
        (define (odd2? n) (if (= n 0) #f (even2? (- n 1))))
        """,
        "(even2? 20000)",
    ),
    "list-ops": (
        "",
        "(length (reverse (append (iota 300) (map add1 (iota 300)))))",
    ),
}

#: Workloads whose ratio is gated by the acceptance floor.
GATED = ("e1-product", "e9-deep-capture")


def _time_workload(name: str, resolve: bool, repeats: int) -> float:
    setup, expr = AB_WORKLOADS[name]
    best = float("inf")
    for _ in range(repeats):
        interp = Interpreter(policy="serial", resolve=resolve)
        if setup.startswith("@example:"):
            interp.load_paper_example(setup[len("@example:") :])
        elif setup:
            interp.run(setup)
        start = time.perf_counter()
        interp.eval(expr)
        best = min(best, time.perf_counter() - start)
    return best


def run_ab(repeats: int) -> dict[str, dict[str, float]]:
    print("\n=== A/B  resolved (slot ribs + global cells) vs dict chains ===")
    results: dict[str, dict[str, float]] = {}
    for name in AB_WORKLOADS:
        resolved = _time_workload(name, resolve=True, repeats=repeats)
        dict_chain = _time_workload(name, resolve=False, repeats=repeats)
        ratio = dict_chain / resolved if resolved else float("inf")
        gate = "  [gated ≥%.1fx]" % RATIO_FLOOR if name in GATED else ""
        print(
            f"  {name:18s} resolved={resolved * 1e3:8.2f}ms  "
            f"dict={dict_chain * 1e3:8.2f}ms  ratio={ratio:5.2f}x{gate}"
        )
        results[name] = {
            "resolved_s": resolved,
            "dict_s": dict_chain,
            "ratio": round(ratio, 3),
        }
    return results


def run_experiments() -> dict[str, dict[str, object]]:
    report = experiments.Report()
    timed: dict[str, dict[str, object]] = {}
    for runner in experiments.RUNNERS:
        failures_before = len(report.failures)
        start = time.perf_counter()
        runner(report)
        timed[runner.__name__] = {
            "seconds": round(time.perf_counter() - start, 4),
            "ok": len(report.failures) == failures_before,
        }
    if report.failures:
        print(f"\n{len(report.failures)} experiment shape assertion(s) FAILED")
    return timed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=os.path.join(_ROOT, "BENCH_results.json"),
        help="result JSON path (default: BENCH_results.json at repo root)",
    )
    parser.add_argument("--repeats", type=int, default=3, help="A/B best-of-N")
    parser.add_argument(
        "--fast", action="store_true", help="single repeat (smoke run)"
    )
    args = parser.parse_args(argv)
    repeats = 1 if args.fast else max(1, args.repeats)

    experiment_results = run_experiments()
    ab_results = run_ab(repeats)

    gated = {name: ab_results[name]["ratio"] for name in GATED}
    acceptance_ok = all(ratio >= RATIO_FLOOR for ratio in gated.values())
    experiments_ok = all(entry["ok"] for entry in experiment_results.values())

    payload = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "repeats": repeats,
        },
        "experiments": experiment_results,
        "ab": ab_results,
        "acceptance": {
            "ratio_floor": RATIO_FLOOR,
            "gated_ratios": gated,
            "pass": acceptance_ok and experiments_ok,
        },
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    print(f"\nwrote {args.out}")
    status = "pass" if payload["acceptance"]["pass"] else "FAIL"
    print(
        f"acceptance [{status}]: "
        + "  ".join(f"{k}={v:.2f}x" for k, v in gated.items())
        + f"  (floor {RATIO_FLOOR}x)"
    )
    return 0 if payload["acceptance"]["pass"] else 1


if __name__ == "__main__":
    sys.exit(main())
