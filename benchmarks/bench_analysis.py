#!/usr/bin/env python
"""Capture/effect analysis benchmark: overhead, payoff and the
zero-divergence gate for the ``analysis={on,off}`` axis.

    PYTHONPATH=src python benchmarks/bench_analysis.py           # full run
    PYTHONPATH=src python benchmarks/bench_analysis.py --smoke   # CI mode
    PYTHONPATH=src python benchmarks/bench_analysis.py --out x.json

Three measurements:

* **Compile-time overhead** — the analysis phase runs inside every
  ``Session.submit`` (read → expand → resolve → **analyze** → compile).
  Each pipeline stage is timed *directly* (best-of-N CPU time over the
  same corpus: the prelude, the derived libraries and the paper
  examples) and the gate is ``(front_end + analyze) / front_end`` ≤
  ``OVERHEAD_CEILING``.  Subtracting two whole-submit timings would
  put a ~4% signal inside the noise band of two ~60ms measurements
  taken under CPU frequency drift; per-stage best-of measures the
  phase itself.
* **Single-task payoff** — the point of the phase: a form proven
  capture- and spawn-free is granted a ``GRANT_QUANTUM`` batch,
  paying the spill→delegate→reload boundary once instead of every
  ``quantum`` steps.  The payoff is proportional to preemption
  frequency: at this interpreter's default quantum 16 the boundary is
  under 10% of runtime, so the microbench measures at quantum
  ``SPEEDUP_QUANTUM`` (4) — the fine-grained setting a
  responsiveness-tuned host would pick, which analysis makes free for
  proven-pure forms.  The fib and tak microbenches (compiled engine)
  must gain at least ``SPEEDUP_FLOOR`` as a geometric mean with
  analysis on; the mean gates the mechanism rather than one
  workload's spill-fraction ceiling.
* **Divergence** — the acceptance gate: analysis on vs off must be
  *byte-identical* — same printed output, same total step count, same
  machine stats — across engine × quantum × workload, including
  concurrency-heavy programs where the grant machinery must refuse to
  fire.  Any spread fails the run.

``--smoke`` (CI) runs the divergence matrix plus single-repeat timing
passes whose ratios are reported but not gated (shared runners); the
full run gates the overhead ceiling and the speedup floor too.
Results merge into ``BENCH_results.json`` under the ``"analysis"``
key, preserving whatever ``run_all.py`` already wrote.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(_ROOT, "src")):
    sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.host import Session  # noqa: E402
from repro.lib import paper_examples  # noqa: E402

#: Analysis may add at most 5% to the submit-path (front-end) time.
OVERHEAD_CEILING = 1.05
#: Capture-free microbenches must gain at least this much from grants.
SPEEDUP_FLOOR = 1.15
#: Scheduler quantum for the payoff microbench (see module docstring).
SPEEDUP_QUANTUM = 4

DIVERGENCE_ENGINES = ("resolved", "compiled")
DIVERGENCE_QUANTA = (1, 16, 4096)

FIB = (
    "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))"
    " (fib %d)"
)
TAK = (
    "(define (tak x y z)"
    "  (if (< y x)"
    "      (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))"
    "      z))"
    " (tak %d %d %d)"
)

#: Divergence workloads: a pure grant-eligible program, a
#: capture-heavy one, and schedule-sensitive concurrency where the
#: validator must refuse the grant.
DIVERGENCE_WORKLOADS = [
    ("pure-fib", FIB % 14),
    ("capture-product", "(define (p l) (call/cc (lambda (k) (let loop ([l l]) (if (null? l) 1 (if (= (car l) 0) (k 0) (* (car l) (loop (cdr l))))))))) (display (p '(1 2 3 0 5)))"),
    (
        "pcall-tree",
        "(define (loop n acc) (if (= n 0) acc (loop (- n 1) (+ acc 1))))"
        " (display (pcall + (loop 40 0) (pcall + (loop 9 1) (loop 17 0)) (loop 3 2)))",
    ),
    (
        "spawn-future-mix",
        "(display (spawn (lambda (c) (+ 1 (c (lambda (k) (k 10)))))))"
        " (display (touch (future (lambda () 32))))",
    ),
]


def _corpus() -> str:
    """The front-end workload: the prelude, every derived library and
    every paper example, twice (the second copy re-resolves against
    already-bound globals, the steady-state case)."""
    from repro.lib.derived import LIBRARIES
    from repro.lib.prelude import PRELUDE

    sources = (
        [PRELUDE]
        + [source for source in LIBRARIES.values()]
        + [source for source, _ in paper_examples.ALL.values()]
    )
    return "\n".join(sources + sources)


def bench_overhead(repeats: int) -> dict[str, object]:
    # Per-stage, best-of-N: each round times every front-end stage once
    # (the rounds interleave the stages, so CPU frequency drift cannot
    # systematically favour one), and the per-stage minimum estimates
    # its true cost.  The gate compares the pipeline with and without
    # the analyze stage from the *same* measurements.
    from repro.analysis.effects import AnalysisStats, annotate_program
    from repro.expander import ExpandEnv, expand_program
    from repro.ir.compile import compile_program
    from repro.ir.resolve import resolve_program
    from repro.reader import read_all

    corpus = _corpus()
    session = Session(engine="compiled", analysis=False)
    env = ExpandEnv()
    env.macros.update(session.expand_env.macros)

    stages = ("read", "expand", "resolve", "compile", "analyze")
    best = {stage: float("inf") for stage in stages}
    # Rounds are cheap (~60ms each); a high floor keeps the per-stage
    # minima stable against scheduler jitter even at --repeats 1.
    for _ in range(max(repeats, 10)):
        t0 = time.process_time()
        datums = read_all(corpus)
        best["read"] = min(best["read"], time.process_time() - t0)
        t0 = time.process_time()
        nodes = expand_program(datums, env)
        best["expand"] = min(best["expand"], time.process_time() - t0)
        t0 = time.process_time()
        resolved = resolve_program(nodes, session.globals)
        best["resolve"] = min(best["resolve"], time.process_time() - t0)
        t0 = time.process_time()
        compile_program(resolved)
        best["compile"] = min(best["compile"], time.process_time() - t0)
        t0 = time.process_time()
        annotate_program(resolved, session.globals, AnalysisStats())
        best["analyze"] = min(best["analyze"], time.process_time() - t0)
    front = sum(best[stage] for stage in stages if stage != "analyze")
    ratio = (front + best["analyze"]) / front if front else 1.0
    return {
        "corpus_forms": corpus.count("(define"),
        "stage_s": dict(best),
        "front_end_s": front,
        "analyze_s": best["analyze"],
        "overhead_ratio": ratio,
    }


def bench_speedup(repeats: int, smoke: bool) -> dict[str, object]:
    workloads = {
        "fib": FIB % (16 if smoke else 20),
        "tak": TAK % ((12, 6, 3) if smoke else (18, 12, 6)),
    }
    out: dict[str, object] = {"quantum": SPEEDUP_QUANTUM}
    for name, source in workloads.items():
        timings = {True: float("inf"), False: float("inf")}
        for _ in range(max(repeats, 3) if not smoke else repeats):
            for analysis in (True, False):  # interleaved on/off samples
                session = Session(
                    engine="compiled", quantum=SPEEDUP_QUANTUM, analysis=analysis
                )
                t0 = time.process_time()
                session.run(source)
                timings[analysis] = min(timings[analysis], time.process_time() - t0)
        out[name] = {
            "run_s_analysis_on": timings[True],
            "run_s_analysis_off": timings[False],
            "speedup": timings[False] / timings[True] if timings[True] else 1.0,
        }
    return out


def run_divergence() -> dict[str, object]:
    failures: list[str] = []
    probes = 0
    for engine in DIVERGENCE_ENGINES:
        for quantum in DIVERGENCE_QUANTA:
            for name, source in DIVERGENCE_WORKLOADS:
                probes += 1
                runs = {}
                for analysis in (True, False):
                    session = Session(
                        engine=engine, quantum=quantum, seed=5, analysis=analysis
                    )
                    session.run(source)
                    runs[analysis] = (
                        session.output_text(),
                        session.machine.steps_total,
                        dict(session.machine.stats),
                    )
                if runs[True] != runs[False]:
                    failures.append(f"{engine}/q{quantum}/{name}")
    return {
        "engines": list(DIVERGENCE_ENGINES),
        "quanta": list(DIVERGENCE_QUANTA),
        "workloads": [name for name, _ in DIVERGENCE_WORKLOADS],
        "probes": probes,
        "failures": failures,
        "agree": not failures,
    }


def _merge_out(path: str, payload: dict[str, object]) -> None:
    data: dict[str, object] = {}
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data["analysis"] = payload
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2)
        handle.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=os.path.join(_ROOT, "BENCH_results.json"),
        help="result JSON path; the analysis section merges into an "
        "existing run_all.py file (default: BENCH_results.json)",
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: divergence gated, single-repeat timings "
        "reported but not gated (shared runners)",
    )
    args = parser.parse_args(argv)
    repeats = 1 if args.smoke else max(1, args.repeats)

    divergence = run_divergence()
    overhead = bench_overhead(repeats)
    speedup = bench_speedup(repeats, args.smoke)

    overhead_ok = overhead["overhead_ratio"] <= OVERHEAD_CEILING  # type: ignore[operator]
    speedups = {
        name: timing["speedup"]
        for name, timing in speedup.items()
        if isinstance(timing, dict)
    }
    geomean = 1.0
    for s in speedups.values():
        geomean *= s
    geomean **= 1.0 / max(1, len(speedups))
    speedup_ok = geomean >= SPEEDUP_FLOOR
    if args.smoke:
        acceptance_pass = bool(divergence["agree"])
    else:
        acceptance_pass = bool(divergence["agree"]) and overhead_ok and speedup_ok

    payload = {
        "repeats": repeats,
        "smoke": args.smoke,
        "overhead": overhead,
        "speedup": speedup,
        "divergence": divergence,
        "acceptance": {
            "overhead_ceiling": OVERHEAD_CEILING,
            "overhead_ratio": overhead["overhead_ratio"],
            "overhead_ok": overhead_ok,
            "speedup_floor": SPEEDUP_FLOOR,
            "speedups": speedups,
            "speedup_geomean": geomean,
            "speedup_ok": speedup_ok,
            "divergence_ok": divergence["agree"],
            "pass": acceptance_pass,
        },
    }
    _merge_out(args.out, payload)
    print(f"\nwrote analysis section to {args.out}")
    status = "pass" if acceptance_pass else "FAIL"
    detail = " ".join(f"{name}={s:.2f}x" for name, s in speedups.items())
    print(
        f"acceptance [{status}]: divergence_ok={divergence['agree']} "
        f"({divergence['probes']} probes) "
        f"front-end overhead {overhead['overhead_ratio']:.3f}x "
        f"(ceiling {OVERHEAD_CEILING}x) "
        f"speedup geomean {geomean:.2f}x [{detail}] (floor {SPEEDUP_FLOOR}x"
        + (", timings not gated in --smoke" if args.smoke else "")
        + ")"
    )
    return 0 if acceptance_pass else 1


if __name__ == "__main__":
    sys.exit(main())
