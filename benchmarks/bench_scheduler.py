"""Supplementary — scheduler scaling (supports every E-experiment's
validity: the interleaving substrate itself must scale sanely).

Rows: total machine steps and wall time for a fixed amount of work
split across 1..64 pcall branches.  Expected shape: steps ≈ constant
(the work is the work), wall time grows mildly with branch count
(queue overhead only) — i.e. the scheduler adds O(1) per quantum.
"""

from __future__ import annotations

import pytest

from repro import Interpreter

TOTAL_WORK = 2048


def fan_out_source(nbranches: int) -> str:
    per_branch = TOTAL_WORK // nbranches
    branch = f"(work {per_branch})"
    return f"(pcall + {' '.join(branch for _ in range(nbranches))})"


def fresh() -> Interpreter:
    interp = Interpreter(quantum=8)
    interp.run("(define (work n) (if (= n 0) 0 (work (- n 1))))")
    return interp


def test_scheduler_steps_constant_across_fanout():
    print("\nScheduler  steps vs fan-out (total work fixed)")
    rows = []
    for nbranches in (1, 4, 16, 64):
        interp = fresh()
        before = interp.machine.steps_total
        interp.eval(fan_out_source(nbranches))
        steps = interp.machine.steps_total - before
        rows.append((nbranches, steps))
        print(f"  branches={nbranches:3d}: steps={steps}")
    # The work is conserved: fan-out adds only per-branch setup.
    base = rows[0][1]
    assert rows[-1][1] < base * 1.5


@pytest.mark.parametrize("nbranches", [1, 4, 16, 64])
def test_scheduler_fanout_timing(benchmark, nbranches):
    interp = fresh()
    source = fan_out_source(nbranches)
    benchmark(lambda: interp.eval(source))


@pytest.mark.parametrize("policy", ["round-robin", "random", "serial"])
def test_scheduler_policy_timing(benchmark, policy):
    interp = Interpreter(policy=policy, seed=7, quantum=8)
    interp.run("(define (work n) (if (= n 0) 0 (work (- n 1))))")
    source = "(pcall + (work 300) (work 300) (work 300))"
    assert interp.eval(source) == 0
    benchmark(lambda: interp.eval(source))


def test_deep_vs_wide_trees():
    """A degenerate chain of nested pcalls versus a flat fan-out: both
    shapes must complete with comparable per-unit cost."""
    interp = fresh()
    interp.run(
        """
        (define (chain n)
          (if (= n 0) 0 (pcall + 1 (chain (- n 1)))))
        """
    )
    before = interp.machine.steps_total
    assert interp.eval("(chain 100)") == 100
    chain_steps = interp.machine.steps_total - before
    interp2 = fresh()
    before = interp2.machine.steps_total
    interp2.eval(fan_out_source(64))
    wide_steps = interp2.machine.steps_total - before
    print(f"\nScheduler  deep chain (100 joins): {chain_steps} steps; "
          f"wide (64 branches): {wide_steps} steps")
    assert chain_steps > 0 and wide_steps > 0
